#!/usr/bin/env python
"""Network-utilization analysis on a P2P overlay (the paper's GNU scenario).

A network administrator records, per monitoring interval, the traffic each
overlay session pushed across the links it used — one graph record per
session.  This example loads a scaled GNU corpus and answers utilization
questions: hot link combinations, per-route traffic totals, and the effect
of Zipf-skewed dashboards (the same few route queries, refreshed over and
over) with and without materialized graph views.

Run:  python examples/p2p_traffic.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import GraphAnalyticsEngine, PathAggregationQuery
from repro.workloads import (
    as_aggregate_queries,
    build_dataset,
    corpus_statistics,
    sample_path_queries,
)


def main() -> None:
    print("generating GNU corpus (scaled-down Table 2 recipe)...")
    corpus = build_dataset("GNU", n_records=4000, seed=17)
    print("statistics:", corpus_statistics(corpus))

    engine = GraphAnalyticsEngine()
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())

    # -- top routes by total traffic ---------------------------------------
    routes = sample_path_queries(corpus, 12, n_edges=4, seed=5)
    print("\ntraffic per monitored route (SUM of link measures):")
    totals = []
    for query in routes:
        agg = engine.aggregate(PathAggregationQuery(query, "sum"))
        route_total = sum(float(v.sum()) for v in agg.path_values.values())
        totals.append((route_total, len(agg), query))
    totals.sort(reverse=True, key=lambda t: t[0])
    for total, sessions, query in totals[:5]:
        nodes = sorted(query.nodes())
        print(f"  {total:12,.1f} units over {sessions:4d} sessions "
              f"(route through {len(nodes)} hosts)")

    # -- peak per-session load on the hottest route -------------------------
    _, __, hottest = totals[0]
    peak = engine.aggregate(PathAggregationQuery(hottest, "max"))
    peaks = next(iter(peak.path_values.values()))
    print(f"\npeak single-link load on hottest route: {peaks.max():.2f} "
          f"(mean peak {peaks.mean():.2f})")

    # -- Zipf dashboard workload with and without views ---------------------
    dashboard = as_aggregate_queries(
        sample_path_queries(corpus, 100, n_edges=6, distribution="zipf",
                            zipf_s=1.4, seed=11),
        "sum",
    )

    engine.reset_stats()
    t0 = time.perf_counter()
    for query in dashboard:
        engine.aggregate(query)
    plain_time = time.perf_counter() - t0
    plain_cols = engine.stats.total_columns_fetched()

    report = engine.materialize_aggregate_views(dashboard, budget=60)
    engine.reset_stats()
    t0 = time.perf_counter()
    for query in dashboard:
        engine.aggregate(query)
    view_time = time.perf_counter() - t0
    view_cols = engine.stats.total_columns_fetched()

    print(f"\nZipf dashboard (100 refreshes): "
          f"{plain_time * 1000:.0f} ms / {plain_cols} columns without views; "
          f"{view_time * 1000:.0f} ms / {view_cols} columns with "
          f"{len(report.selected)} aggregate views "
          f"({100 * (1 - view_cols / plain_cols):.0f}% fewer columns)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Adaptive view management under a shifting dashboard workload.

A BI dashboard fires the same handful of DSL queries over and over —
until an analyst pivots to a different slice.  This example drives the
:class:`~repro.advisor.AdaptiveViewAdvisor` through such a shift and shows
the view set following the workload: the advisor materializes views for
the hot queries, then drops and replaces them when the hot set changes,
all without ever changing an answer.

Run:  python examples/adaptive_dashboard.py
"""

from __future__ import annotations

import numpy as np

from repro import AdaptiveViewAdvisor, GraphAnalyticsEngine, parse_query
from repro.workloads import build_dataset, sample_path_queries


def main() -> None:
    corpus = build_dataset("NY", n_records=2000, seed=29)
    engine = GraphAnalyticsEngine()
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
    advisor = AdaptiveViewAdvisor(engine, budget=6, window=60)

    phase_a = sample_path_queries(corpus, 6, 7, seed=41)
    phase_b = sample_path_queries(corpus, 6, 7, seed=97)
    rng = np.random.default_rng(3)

    def run_phase(name, hot_queries, n_executions=60):
        baseline = {q: tuple(engine.query(q, fetch_measures=False).record_ids)
                    for q in hot_queries}
        engine.reset_stats()
        for _ in range(n_executions):
            advisor.execute(rng.choice(hot_queries), fetch_measures=False)
        cost = engine.stats.structural_columns_fetched()
        summary = advisor.refresh()
        engine.reset_stats()
        for _ in range(n_executions):
            advisor.execute(rng.choice(hot_queries), fetch_measures=False)
        tuned = engine.stats.structural_columns_fetched()
        for q, expected in baseline.items():
            assert tuple(engine.query(q, fetch_measures=False).record_ids) == expected
        print(f"{name}: {cost} -> {tuned} structural columns per {n_executions} "
              f"queries after refresh "
              f"(+{len(summary['added'])} views, -{len(summary['dropped'])}, "
              f"kept {len(summary['kept'])}); answers unchanged")

    print(f"corpus: {engine.n_records} records, "
          f"{engine.relation.n_element_columns} elements; view budget 6\n")
    run_phase("phase A (dashboard 1)", phase_a)
    run_phase("phase A again (views warm)", phase_a)
    run_phase("phase B (analyst pivots)", phase_b)
    print(f"\nmanaged views now: {sorted(advisor.managed_views)}")

    # DSL round-trip on the same engine.
    edge = corpus.universe[int(corpus.record_edges[0][0])]
    text = f"'{edge[0]}' -> '{edge[1]}'"
    print(f"\nDSL check — {text!r}: "
          f"{len(engine.query(parse_query(text), fetch_measures=False))} matches")
    print("\nEXPLAIN for a hot query:")
    print(engine.explain(phase_b[0]))


if __name__ == "__main__":
    main()

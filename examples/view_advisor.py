#!/usr/bin/env python
"""View advisor walkthrough: candidate generation, selection, rewriting.

Shows the Section 5 machinery as a DBA would use it: take a query
workload, inspect the candidate graph views the intersection-closure and
a-priori methods produce at different minimum supports, pick a budget,
materialize, and inspect the rewritten plans (including the generated SQL)
plus the space overhead.

Run:  python examples/view_advisor.py
"""

from __future__ import annotations

from repro import GraphAnalyticsEngine
from repro.core import (
    closed_candidates,
    intersection_closure_candidates,
    render_graph_query,
)
from repro.workloads import build_dataset, sample_path_queries


def main() -> None:
    corpus = build_dataset("NY", n_records=3000, seed=23)
    engine = GraphAnalyticsEngine()
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())

    workload = sample_path_queries(
        corpus, 40, n_edges=8, distribution="zipf", zipf_s=1.3, seed=9
    )
    print(f"workload: {len(workload)} queries, "
          f"{len(set(workload))} distinct, 8 edges each")

    # -- candidate generation at varying minimum support --------------------
    print("\ncandidate graph views vs minimum support (Figure 9's sweep):")
    for min_support in (1, 2, 4, 8):
        candidates = closed_candidates(workload, min_support=min_support)
        print(f"  minSup={min_support}: {len(candidates)} candidates "
              f"(largest {max((len(c) for c in candidates), default=0)} edges)")

    distinct = list(dict.fromkeys(workload))[:6]
    closure = intersection_closure_candidates(distinct)
    print(f"\nexact closure method on {len(distinct)} distinct queries: "
          f"{len(closure)} non-superseded candidates")

    # -- selection under a budget -------------------------------------------
    budget = 10
    report = engine.materialize_graph_views(workload, budget=budget, method="closed")
    print(f"\nselected {len(report.selected)} of {report.n_candidates} "
          f"candidates under budget {budget}"
          + (" (stopped: single-edge bitmap won a round)"
             if report.stopped_on_singleton else ""))
    overhead = engine.relation.views_size_bytes() / engine.relation.base_size_bytes()
    print(f"space overhead: {100 * overhead:.2f}% of the base relation")

    # -- rewritten plans -------------------------------------------------------
    print("\nplans for the three hottest queries:")
    for query in distinct[:3]:
        plan = engine.plan_query(query)
        saved = len(query.elements) - plan.n_structural_columns()
        print(f"  views={plan.view_names} residual={len(plan.residual_elements)} "
              f"-> {saved} fewer bitmap fetches")
    print("\nSQL for the hottest query:")
    print(render_graph_query(engine.plan_query(distinct[0]), engine.catalog))

    # -- verify: identical answers, cheaper execution ---------------------------
    engine.reset_stats()
    with_views = [tuple(engine.query(q, fetch_measures=False).record_ids)
                  for q in workload]
    cost_with = engine.stats.structural_columns_fetched()
    engine.drop_all_views()
    engine.reset_stats()
    without = [tuple(engine.query(q, fetch_measures=False).record_ids)
               for q in workload]
    cost_without = engine.stats.structural_columns_fetched()
    assert with_views == without, "views must not change answers"
    print(f"\nstructural columns fetched: {cost_without} -> {cost_with} "
          f"({100 * (1 - cost_with / cost_without):.0f}% reduction), "
          f"answers identical on all {len(workload)} queries")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: the paper's running example (Figure 2 / Table 1), end to end.

Loads the three sample graph records, runs graph queries, boolean
combinations, path aggregation, and materializes both view species —
printing the master-relation content exactly as Table 1 lays it out.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    PathAggregationQuery,
)
from repro.core import render_aggregation, render_graph_query

# Figure 2's edge universe: e1..e7 (see the paper; decoded in tests/conftest).
EDGES = {
    1: ("A", "B"),
    2: ("A", "C"),
    3: ("C", "E"),
    4: ("A", "D"),
    5: ("D", "E"),
    6: ("E", "F"),
    7: ("F", "G"),
}

RECORDS = [
    GraphRecord("r1", {EDGES[1]: 3, EDGES[2]: 4, EDGES[3]: 2, EDGES[4]: 1, EDGES[5]: 2}),
    GraphRecord(
        "r2",
        {EDGES[2]: 1, EDGES[3]: 2, EDGES[4]: 2, EDGES[5]: 1, EDGES[6]: 4, EDGES[7]: 1},
    ),
    GraphRecord("r3", {EDGES[4]: 5, EDGES[5]: 4, EDGES[6]: 3, EDGES[7]: 1}),
]


def print_master_relation(engine: GraphAnalyticsEngine) -> None:
    """Render the master relation in the layout of Table 1."""
    ids = [engine.catalog.id_of(EDGES[i]) for i in sorted(EDGES)]
    header = ["rid"] + [f"m{i}" for i in sorted(EDGES)] + [f"b{i}" for i in sorted(EDGES)]
    rows = []
    for row, rid in enumerate(["r1", "r2", "r3"]):
        cells = [rid]
        for edge_id in ids:
            value = engine.relation.measures(edge_id)[row]
            cells.append("NULL" if np.isnan(value) else f"{value:g}")
        for edge_id in ids:
            cells.append(str(int(engine.relation.bitmap(edge_id)[row])))
        rows.append(cells)
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(header)]
    for line in [header] + rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(line, widths)))


def main() -> None:
    engine = GraphAnalyticsEngine()
    engine.load_records(RECORDS)

    print("=== Master relation (Table 1, measures + bitmaps) ===")
    print_master_relation(engine)

    print("\n=== Graph query: records containing path A->D->E ===")
    query = GraphQuery.from_node_chain("A", "D", "E")
    result = engine.query(query)
    print("matches:", result.record_ids)
    print("SQL:", render_graph_query(engine.plan_query(query), engine.catalog))

    print("\n=== Boolean combination: via (E,F) but NOT via (A,B) ===")
    combo = GraphQuery([EDGES[6]]) - GraphQuery([EDGES[1]])
    print("matches:", engine.query(combo).record_ids)

    print("\n=== Path aggregation: SUM over (A,C,E,F) — the §3.4 example ===")
    agg = PathAggregationQuery(GraphQuery.from_node_chain("A", "C", "E", "F"), "sum")
    agg_result = engine.aggregate(agg)
    for path, values in agg_result.path_values.items():
        for rid, value in zip(agg_result.record_ids, values):
            print(f"record {rid}, path {path}: {value:g}")

    print("\n=== Materialize: graph view over {e1..e4}, aggregate view [E,F,G] ===")
    engine.add_graph_view([EDGES[i] for i in (1, 2, 3, 4)], name="bv1")
    report = engine.materialize_aggregate_views(
        [PathAggregationQuery(GraphQuery.from_node_chain("E", "F", "G"), "sum")],
        budget=1,
    )
    name = report.selected[0]
    print("bv1 bitmap:", engine.relation.view_bitmap("bv1").to_bools().astype(int))
    mp = engine.relation.aggregate_view_measures(f"{name}:sum")
    print(f"mp1 ({name}):", ["NULL" if np.isnan(v) else f"{v:g}" for v in mp])

    print("\n=== Rewritten aggregation over the view ===")
    efg = PathAggregationQuery(GraphQuery.from_node_chain("E", "F", "G"), "sum")
    plan = engine.plan_aggregation(efg)
    print("SQL:", render_aggregation(plan, engine.catalog))
    out = engine.aggregate(efg)
    for path, values in out.path_values.items():
        print("values:", dict(zip(out.record_ids, values.tolist())))

    print("\nI/O stats for this session:", engine.stats)


if __name__ == "__main__":
    main()

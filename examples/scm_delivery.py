#!/usr/bin/env python
"""Supply-chain scenario: the paper's Section 2 running example.

Models the Figure 1 delivery network — production lines {A,B,C}, hubs
{D,E,F,H} (+ region 2 = {D,E,F,G}), customer endpoints {I,J,K} — generates
a few thousand delivery records over it, and answers the paper's three
motivating queries:

* Q1: delivery time along path [A,D,E,G,I];
* Q2: delivery cost over the leased legs [C,H] and [F,J,K];
* Q3: longest delay from region-1 production lines to endpoint I via
  region-2 hubs.

Then it materializes graph views for the hot paths and shows the rewrite.

Run:  python examples/scm_delivery.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    Or,
    PathAggregationQuery,
)

# Figure 1's delivery network (edges as drawn, including the F->J leased leg).
NETWORK = [
    ("A", "D"), ("A", "B"), ("B", "F"), ("C", "B"), ("C", "H"),
    ("D", "E"), ("E", "G"), ("F", "E"), ("F", "J"), ("G", "I"),
    ("G", "K"), ("H", "K"), ("J", "K"),
]
REGION_1 = {"A", "B", "C"}
REGION_2 = {"D", "E", "F", "G"}
LEASED = [("C", "H"), ("F", "J"), ("J", "K")]

# Delivery routes customers' orders actually take (paths in the network).
ROUTES = [
    ["A", "D", "E", "G", "I"],
    ["A", "D", "E", "G", "K"],
    ["A", "B", "F", "E", "G", "I"],
    ["A", "B", "F", "J", "K"],
    ["C", "B", "F", "E", "G", "I"],
    ["C", "H", "K"],
    ["C", "B", "F", "J", "K"],
]


def generate_orders(n_orders: int, seed: int = 0) -> list[GraphRecord]:
    """Each order follows 1-3 routes (multi-drop deliveries) with measured
    shipping times per leg."""
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n_orders):
        n_routes = int(rng.integers(1, 4))
        measures: dict[tuple, float] = {}
        for route_index in rng.choice(len(ROUTES), size=n_routes, replace=False):
            route = ROUTES[route_index]
            for u, v in zip(route, route[1:]):
                # Shipping time per leg: 1-9 hours, heavier on leased legs.
                base = 4.0 if (u, v) in LEASED else 2.0
                measures[(u, v)] = round(float(rng.gamma(2.0, base)), 2)
        records.append(GraphRecord(f"order-{i}", measures))
    return records


def main() -> None:
    engine = GraphAnalyticsEngine()
    n_loaded = engine.load_records(generate_orders(5000))
    print(f"loaded {n_loaded} delivery records "
          f"({engine.relation.n_element_columns} distinct legs)")

    # -- Q1: delivery time along [A,D,E,G,I] ------------------------------
    q1 = PathAggregationQuery(
        GraphQuery.from_node_chain("A", "D", "E", "G", "I"), "sum"
    )
    r1 = engine.aggregate(q1)
    values = next(iter(r1.path_values.values()))
    print(f"\nQ1: {len(r1)} orders shipped via [A,D,E,G,I]; "
          f"mean delivery time {values.mean():.2f}h, max {values.max():.2f}h")

    # -- Q2: cost on leased legs [C,H] and [F,J,K] -------------------------
    leased_ch = PathAggregationQuery(GraphQuery([("C", "H")]), "sum")
    leased_fjk = PathAggregationQuery(GraphQuery.from_node_chain("F", "J", "K"), "sum")
    total_cost = 0.0
    for q in (leased_ch, leased_fjk):
        out = engine.aggregate(q)
        total_cost += sum(v.sum() for v in out.path_values.values())
    print(f"Q2: total leased-carrier exposure {total_cost:,.0f} "
          f"(leg [C,H] + route [F,J,K])")

    # -- Q3: longest delay region 1 -> I via region-2 hubs -----------------
    # Region-aware composition: paths from region-1 sources through region
    # 2 ending at I, i.e. the expression of Section 3.3.
    region_paths = [
        route for route in ROUTES
        if route[0] in REGION_1 and route[-1] == "I"
        and any(n in REGION_2 for n in route[1:-1])
    ]
    worst = None
    for route in region_paths:
        q3 = PathAggregationQuery(GraphQuery.from_node_chain(*route), "sum")
        out = engine.aggregate(q3)
        for path, vals in out.path_values.items():
            if vals.size and (worst is None or vals.max() > worst[1]):
                worst = (path, float(vals.max()))
    print(f"Q3: longest region1->I delay via region 2: "
          f"{worst[1]:.2f}h on path {worst[0]}")

    # -- OR-combination: orders using either leased route ------------------
    either_leased = engine.query(
        Or(GraphQuery([("C", "H")]), GraphQuery.from_node_chain("F", "J", "K")),
        fetch_measures=False,
    )
    print(f"\norders touching leased infrastructure: {len(either_leased)}")

    # -- Region-aware querying (Section 3.3's composite expression) --------
    from repro.core import Region, queries_through_region

    region2 = Region("region2", REGION_2, host_edges=NETWORK)
    region_queries = queries_through_region(NETWORK, region2)
    touched = set()
    for q in region_queries:
        touched.update(engine.query(q, fetch_measures=False).record_ids)
    print(f"\norders routed through region 2 "
          f"({len(region_queries)} region paths): {len(touched)}")

    # -- Views for the hot paths -------------------------------------------
    workload = [PathAggregationQuery(GraphQuery.from_node_chain(*r), "sum")
                for r in ROUTES]
    engine.reset_stats()
    for q in workload:
        engine.aggregate(q)
    cost_before = engine.stats.total_columns_fetched()

    report = engine.materialize_aggregate_views(workload, budget=8)
    engine.reset_stats()
    for q in workload:
        engine.aggregate(q)
    cost_after = engine.stats.total_columns_fetched()
    print(f"\nmaterialized {len(report.selected)} aggregate views "
          f"(of {report.n_candidates} candidates): "
          f"workload column fetches {cost_before} -> {cost_after} "
          f"({100 * (1 - cost_after / cost_before):.0f}% fewer)")


if __name__ == "__main__":
    main()

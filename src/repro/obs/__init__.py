"""Observability: per-query traces, EXPLAIN plans, and a metrics registry.

The measurement substrate for every performance claim in this repo.  The
:class:`Tracer` attributes each query's latency to the rewrite,
bitmap-conjunction, measure-materialization, and aggregation stages (the
same breakdown the paper's Figures 6–8 argue from); :func:`explain`
renders the chosen rewrite plan without executing it; and
:class:`MetricsRegistry` aggregates counters/gauges/histograms published
by :class:`~repro.columnstore.iostats.IOStatsCollector`,
:class:`~repro.exec.BitmapCache`, and :class:`~repro.exec.QueryExecutor`
into one JSON-dumpable document (``repro metrics``).
"""

from .explain import explain, explain_dict, render_plan_text
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .trace import QueryTrace, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "Tracer",
    "explain",
    "explain_dict",
    "get_registry",
    "render_plan_text",
    "set_registry",
]

"""Structured per-query tracing.

The paper's evaluation argues entirely from *where time goes* — bitmap
ANDs vs joins, view hits vs base-column fallbacks, measure fetches vs the
rest of the query (Figures 3–8).  This module provides the measurement
substrate for those breakdowns: a :class:`Tracer` produces one
:class:`QueryTrace` per executed query, a tree of :class:`Span` objects
covering the rewrite, bitmap-conjunction, measure-materialization, and
aggregation stages, each carrying monotonic timings and counters (bitmaps
ANDed, bytes touched, rows matched, cache hits/misses per conjunction
part).

Tracing is strictly observational: span bodies run the exact same code
with or without a tracer installed, so enabling it can never change a
query answer (asserted by the hypothesis suite in
``tests/test_trace.py``).  Spans nest via a thread-local stack, so the
concurrent executor's worker threads each build their own well-formed
trace trees against one shared tracer.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "QueryTrace", "Tracer"]


@dataclass
class Span:
    """One timed stage of a query, with counters and nested children.

    ``counters`` holds numeric tallies (``rows_matched``, ``bytes_touched``
    …); ``meta`` holds identifying strings (the conjunction part's kind and
    token, the view name).  Timings are monotonic nanoseconds from the
    tracer's clock.
    """

    name: str
    start_ns: int
    end_ns: int | None = None
    counters: dict[str, float] = field(default_factory=dict)
    meta: dict[str, str] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        """Span duration; 0 while the span is still open."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def add(self, counter: str, n: float = 1) -> None:
        """Increment one counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """JSON-ready representation (deterministically key-ordered)."""
        out: dict = {"name": self.name}
        if self.meta:
            out["meta"] = {k: self.meta[k] for k in sorted(self.meta)}
        if self.counters:
            out["counters"] = {k: self.counters[k] for k in sorted(self.counters)}
        out["start_ns"] = self.start_ns
        out["duration_ns"] = self.duration_ns
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def render(self, indent: int = 0, include_timings: bool = True) -> str:
        """Human-readable tree, one line per span."""
        parts = [f"{'  ' * indent}{self.name}"]
        for key in sorted(self.meta):
            parts.append(f"{key}={self.meta[key]}")
        for key in sorted(self.counters):
            value = self.counters[key]
            shown = int(value) if float(value).is_integer() else value
            parts.append(f"{key}={shown}")
        if include_timings:
            parts.append(f"[{self.duration_ns / 1e6:.3f} ms]")
        lines = [" ".join(parts)]
        for child in self.children:
            lines.append(child.render(indent + 1, include_timings))
        return "\n".join(lines)


@dataclass
class QueryTrace:
    """A completed root span plus the query it measured."""

    query: str
    root: Span
    epoch: int | None = None

    def to_dict(self) -> dict:
        return {"query": self.query, "epoch": self.epoch, "root": self.root.to_dict()}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self, include_timings: bool = True) -> str:
        head = f"TRACE {self.query}"
        if self.epoch is not None:
            head += f" (epoch {self.epoch})"
        return head + "\n" + self.root.render(1, include_timings)


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: list[Span] = []


class Tracer:
    """Collects per-query span trees.

    Install on an engine with :meth:`GraphAnalyticsEngine.use_tracer`;
    every subsequent :meth:`query`/:meth:`aggregate` call appends one
    :class:`QueryTrace` to :attr:`traces`.  Span stacks are thread-local
    (each executor worker nests its own spans); the finished-trace list is
    lock-protected so concurrent workers can publish into one tracer.

    ``clock`` is injectable for deterministic tests; it must be monotonic
    and return nanoseconds.
    """

    def __init__(self, clock=time.perf_counter_ns, max_traces: int = 10_000):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self._clock = clock
        self._max_traces = max_traces
        self._state = _ThreadState()
        self._lock = threading.Lock()
        self.traces: list[QueryTrace] = []

    # -- span construction ----------------------------------------------------

    @contextmanager
    def span(self, name: str, **meta: str) -> Iterator[Span]:
        """Open a nested span; a root span becomes a :class:`QueryTrace`.

        Root spans may carry ``query=...`` / ``epoch=...`` metadata, which
        is lifted onto the trace.
        """
        stack = self._state.stack
        span = Span(name=name, start_ns=self._clock())
        for key, value in meta.items():
            span.meta[key] = str(value)
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end_ns = self._clock()
            if not stack:
                self._publish(span)

    def add(self, counter: str, n: float = 1) -> None:
        """Increment a counter on the current (innermost open) span."""
        stack = self._state.stack
        if stack:
            stack[-1].add(counter, n)

    @property
    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._state.stack
        return stack[-1] if stack else None

    def _publish(self, root: Span) -> None:
        epoch_meta = root.meta.get("epoch")
        trace = QueryTrace(
            query=root.meta.get("query", root.name),
            root=root,
            epoch=int(epoch_meta) if epoch_meta is not None else None,
        )
        with self._lock:
            self.traces.append(trace)
            if len(self.traces) > self._max_traces:
                del self.traces[: len(self.traces) - self._max_traces]

    # -- access ---------------------------------------------------------------

    @property
    def last(self) -> QueryTrace | None:
        with self._lock:
            return self.traces[-1] if self.traces else None

    def drain(self) -> list[QueryTrace]:
        """Return all collected traces and clear the buffer."""
        with self._lock:
            out = self.traces
            self.traces = []
        return out

    def clear(self) -> None:
        with self._lock:
            self.traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.traces)

"""EXPLAIN plans: render the chosen rewrite without executing it.

``explain(engine, query)`` serializes the **same**
:class:`~repro.core.PhysicalPlan` object the operator layer executes —
``engine.physical_plan(query)`` is the single source of truth, and this
module only formats its IR dict (no independent re-derivation) — as
deterministic text or JSON: which materialized views the set-cover
rewriter chose, the residual base bitmaps, the canonical conjunction
order the cache keys on, the backend's shard count, and the estimated
partition-spanning joins (§6.1).  Nothing is fetched and no I/O counters
move, so the output is a stable, goldenable contract of the planner.

``explain(..., analyze=True)`` additionally executes the query under a
temporary :class:`~repro.obs.trace.Tracer` and attaches the measured
span tree plus actual counters (rows matched, cache hits/misses,
partitions joined) — the EXPLAIN ANALYZE counterpart.
"""

from __future__ import annotations

import json

from ..core.query import GraphQuery, PathAggregationQuery
from .trace import Tracer

__all__ = ["explain", "explain_dict", "render_plan_text"]


def explain_dict(engine, query, analyze: bool = False) -> dict:
    """Structured plan for ``query``: the executed physical plan's own IR
    (``engine.physical_plan(query).to_dict()``); with ``analyze`` the query
    is also executed under a temporary tracer and the measured counters +
    span tree are attached under ``"execution"``."""
    if not isinstance(query, (GraphQuery, PathAggregationQuery)):
        raise TypeError(f"cannot explain {type(query).__name__}")
    plan = engine.physical_plan(query).to_dict()
    if analyze:
        plan["execution"] = _analyze(engine, query)
    return plan


def _analyze(engine, query) -> dict:
    tracer = Tracer()
    previous = engine.tracer
    engine.use_tracer(tracer)
    try:
        if isinstance(query, PathAggregationQuery):
            result = engine.aggregate(query)
        else:
            result = engine.query(query)
    finally:
        engine.use_tracer(previous)
    trace = tracer.last
    root = trace.root if trace is not None else None
    counters: dict[str, float] = {}
    if root is not None:
        for span in root.walk():
            for key, value in span.counters.items():
                counters[key] = counters.get(key, 0) + value
        # rows_matched appears on both the root and the conjunction span;
        # report the root's authoritative result-set size, not the sum.
        if "rows_matched" in root.counters:
            counters["rows_matched"] = root.counters["rows_matched"]
    return {
        "result_records": len(result),
        "epoch": result.epoch,
        "counters": {k: counters[k] for k in sorted(counters)},
        "trace": trace.to_dict() if trace is not None else None,
    }


def render_plan_text(plan: dict) -> str:
    """Deterministic text rendering of an :func:`explain_dict` plan."""
    lines: list[str] = []
    if plan["type"] == "graph-query":
        lines.append(f"GraphQuery |elements|={len(plan['elements'])}")
    else:
        lines.append(f"PathAggregationQuery function={plan['function']}")
        lines.append(f"  maximal paths: {len(plan['paths'])}")
        agg_names = [v["name"] for v in plan["aggregate_views"]]
        lines.append(f"  aggregate views used: {agg_names or '-'}")
    view_names = [v["name"] for v in plan["views"]]
    lines.append(f"  graph views used: {view_names or '-'}")
    lines.append(f"  residual element bitmaps: {len(plan['residual_elements'])}")
    if plan["type"] == "graph-query":
        lines.append(
            f"  structural columns: {plan['structural_columns']} "
            f"(saves {plan['saved_columns']})"
        )
    else:
        lines.append(f"  structural columns: {plan['structural_columns']}")
    lines.append(f"  measure columns: {plan['measure_columns']}")
    if not plan["answerable"]:
        lines.append("  conjunction: (unindexed element -> empty answer)")
    elif plan["conjunction"]:
        lines.append("  conjunction order:")
        for i, part in enumerate(plan["conjunction"], 1):
            covers = ", ".join(part["covers"])
            lines.append(
                f"    {i}. {part['kind']} {part['token']} covers {{{covers}}}"
            )
    if plan["type"] == "path-aggregation" and plan["paths"]:
        lines.append("  path tiling:")
        for path in plan["paths"]:
            rendered = []
            for segment in path["segments"]:
                if segment["kind"] == "view":
                    rendered.append(f"[{segment['name']}]")
                else:
                    rendered.append(segment["element"])
            lines.append(f"    {path['path']}: " + " + ".join(rendered))
    partitions = plan["partitions"]
    lines.append(
        f"  partitions: {partitions['spanned']} "
        f"(estimated joins: {partitions['estimated_joins']})"
    )
    # Sharding only changes *where* the conjunction runs, never the answer;
    # keep unsharded plan text byte-stable and annotate only when it's on.
    if plan.get("shards", 1) > 1:
        lines.append(f"  shards: {plan['shards']} (record-range parallel)")
    execution = plan.get("execution")
    if execution is not None:
        lines.append(
            f"  actual: {execution['result_records']} records "
            f"(epoch {execution['epoch']})"
        )
        for key, value in execution["counters"].items():
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"    {key}: {shown}")
    lines.append("SQL:")
    lines.append(plan["sql"])
    return "\n".join(lines)


def explain(engine, query, analyze: bool = False, fmt: str = "text") -> str:
    """EXPLAIN (or EXPLAIN ANALYZE with ``analyze=True``) for ``query``.

    ``fmt`` is ``"text"`` or ``"json"``; both renderings are deterministic
    for a fixed engine state (the analyze trace adds wall-clock timings,
    which of course vary run to run).

    Both renderings lead with the query's **canonical text** (the
    :func:`repro.lang.unparse` spelling, which re-parses to the same
    query) when the query has one — text output as a ``query:`` first
    line, JSON output as a ``"query_text"`` key.  The plan dict itself
    stays exactly ``engine.physical_plan(query).to_dict()``.
    """
    from ..lang import try_unparse

    plan = explain_dict(engine, query, analyze=analyze)
    canonical = try_unparse(query)
    if fmt == "json":
        if canonical is not None:
            plan = dict(plan, query_text=canonical)
        return json.dumps(plan, indent=2, sort_keys=True)
    if fmt == "text":
        text = render_plan_text(plan)
        if canonical is not None:
            text = f"query: {canonical}\n{text}"
        return text
    raise ValueError(f"unknown explain format {fmt!r}")

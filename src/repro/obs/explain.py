"""EXPLAIN plans: render the chosen rewrite without executing it.

``explain(engine, query)`` describes how the engine *would* answer a
query — which materialized views the set-cover rewriter chose, the
residual base bitmaps, the canonical conjunction order the cache keys on,
and the estimated partition-spanning joins (§6.1) — as deterministic text
or JSON.  Nothing is fetched and no I/O counters move, so the output is a
stable, goldenable contract of the planner.

``explain(..., analyze=True)`` additionally executes the query under a
temporary :class:`~repro.obs.trace.Tracer` and attaches the measured
span tree plus actual counters (rows matched, cache hits/misses,
partitions joined) — the EXPLAIN ANALYZE counterpart.
"""

from __future__ import annotations

import json

from ..core.query import GraphQuery, PathAggregationQuery
from ..core.sqlgen import render_aggregation, render_graph_query
from .trace import Tracer

__all__ = ["explain", "explain_dict", "render_plan_text"]


def _edge_str(edge) -> str:
    try:
        u, v = edge
        return f"{u}->{v}"
    except (TypeError, ValueError):
        return repr(edge)


def _edges(elements) -> list[str]:
    return sorted(_edge_str(e) for e in elements)


def _token_str(part) -> str:
    return part.token if isinstance(part.token, str) else _edge_str(part.token)


def _conjunction_dicts(parts) -> list[dict]:
    out = []
    for part in parts or []:
        out.append(
            {
                "kind": part.kind,
                "token": _token_str(part),
                "covers": _edges(part.covered),
            }
        )
    return out


def _partition_estimate(engine, elements) -> dict:
    """Partitions the query's element columns span, per the §6.1 layout.

    Unknown elements (no column) occupy no partition; a query spanning k
    partitions pays k-1 recid re-joins at measure-fetch time.
    """
    known_ids = []
    for element in elements:
        edge_id = engine.catalog.get_id(element)
        if edge_id is not None and engine.relation.has_element(edge_id):
            known_ids.append(edge_id)
    spanned = len(engine.relation.partitions_for(known_ids)) if known_ids else 0
    return {"spanned": spanned, "estimated_joins": max(spanned - 1, 0)}


def _graph_plan_dict(engine, query: GraphQuery) -> dict:
    plan = engine.plan_query(query)
    _, parts, _ = engine.conjunction_inputs(query)
    views = engine.graph_views
    return {
        "type": "graph-query",
        "query": " & ".join(_edges(query.elements)),
        "elements": _edges(query.elements),
        "views": [
            {"name": name, "covers": _edges(views[name].elements)}
            for name in sorted(plan.view_names)
        ],
        "residual_elements": _edges(plan.residual_elements),
        "conjunction": _conjunction_dicts(parts),
        "answerable": parts is not None,
        "structural_columns": plan.n_structural_columns(),
        "saved_columns": plan.saved_columns(),
        "measure_columns": len(plan.fetch_elements),
        "partitions": _partition_estimate(engine, plan.fetch_elements),
        "sql": render_graph_query(plan, engine.catalog),
    }


def _aggregation_plan_dict(engine, query: PathAggregationQuery) -> dict:
    plan = engine.plan_aggregation(query)
    _, parts, _ = engine.conjunction_inputs(query)
    measured = engine.measured_nodes
    agg_views = engine.aggregate_views
    graph_views = engine.graph_views
    path_dicts = []
    for path_plan in plan.path_plans:
        segments = []
        for segment in path_plan.segments:
            if segment.kind == "view":
                view = agg_views[segment.view_name]
                segments.append(
                    {
                        "kind": "view",
                        "name": segment.view_name,
                        "covers": _edges(view.elements(measured)),
                    }
                )
            else:
                segments.append(
                    {"kind": "raw", "element": _edge_str(segment.element)}
                )
        path_dicts.append({"path": str(path_plan.path), "segments": segments})
    return {
        "type": "path-aggregation",
        "query": " & ".join(_edges(query.query.elements)),
        "function": query.function,
        "elements": _edges(query.query.elements),
        "aggregate_views": [
            {
                "name": name,
                "columns": list(agg_views[name].column_names()),
                "covers": _edges(agg_views[name].elements(measured)),
            }
            for name in sorted(plan.structural_agg_view_names)
        ],
        "views": [
            {"name": name, "covers": _edges(graph_views[name].elements)}
            for name in sorted(plan.structural_view_names)
        ],
        "residual_elements": _edges(plan.residual_elements),
        "conjunction": _conjunction_dicts(parts),
        "answerable": parts is not None,
        "paths": path_dicts,
        "structural_columns": plan.n_structural_columns(),
        "measure_columns": plan.n_measure_columns(),
        "segments": dict(
            zip(("view", "raw"), plan.segment_counts(), strict=True)
        ),
        "partitions": _partition_estimate(engine, query.query.elements),
        "sql": render_aggregation(plan, engine.catalog),
    }


def explain_dict(engine, query, analyze: bool = False) -> dict:
    """Structured plan for ``query``; with ``analyze`` the query is also
    executed under a temporary tracer and the measured counters + span tree
    are attached under ``"execution"``."""
    if isinstance(query, PathAggregationQuery):
        plan = _aggregation_plan_dict(engine, query)
    elif isinstance(query, GraphQuery):
        plan = _graph_plan_dict(engine, query)
    else:
        raise TypeError(f"cannot explain {type(query).__name__}")
    if analyze:
        plan["execution"] = _analyze(engine, query)
    return plan


def _analyze(engine, query) -> dict:
    tracer = Tracer()
    previous = engine.tracer
    engine.use_tracer(tracer)
    try:
        if isinstance(query, PathAggregationQuery):
            result = engine.aggregate(query)
        else:
            result = engine.query(query)
    finally:
        engine.use_tracer(previous)
    trace = tracer.last
    root = trace.root if trace is not None else None
    counters: dict[str, float] = {}
    if root is not None:
        for span in root.walk():
            for key, value in span.counters.items():
                counters[key] = counters.get(key, 0) + value
        # rows_matched appears on both the root and the conjunction span;
        # report the root's authoritative result-set size, not the sum.
        if "rows_matched" in root.counters:
            counters["rows_matched"] = root.counters["rows_matched"]
    return {
        "result_records": len(result),
        "epoch": result.epoch,
        "counters": {k: counters[k] for k in sorted(counters)},
        "trace": trace.to_dict() if trace is not None else None,
    }


def render_plan_text(plan: dict) -> str:
    """Deterministic text rendering of an :func:`explain_dict` plan."""
    lines: list[str] = []
    if plan["type"] == "graph-query":
        lines.append(f"GraphQuery |elements|={len(plan['elements'])}")
    else:
        lines.append(f"PathAggregationQuery function={plan['function']}")
        lines.append(f"  maximal paths: {len(plan['paths'])}")
        agg_names = [v["name"] for v in plan["aggregate_views"]]
        lines.append(f"  aggregate views used: {agg_names or '-'}")
    view_names = [v["name"] for v in plan["views"]]
    lines.append(f"  graph views used: {view_names or '-'}")
    lines.append(f"  residual element bitmaps: {len(plan['residual_elements'])}")
    if plan["type"] == "graph-query":
        lines.append(
            f"  structural columns: {plan['structural_columns']} "
            f"(saves {plan['saved_columns']})"
        )
    else:
        lines.append(f"  structural columns: {plan['structural_columns']}")
    lines.append(f"  measure columns: {plan['measure_columns']}")
    if not plan["answerable"]:
        lines.append("  conjunction: (unindexed element -> empty answer)")
    elif plan["conjunction"]:
        lines.append("  conjunction order:")
        for i, part in enumerate(plan["conjunction"], 1):
            covers = ", ".join(part["covers"])
            lines.append(
                f"    {i}. {part['kind']} {part['token']} covers {{{covers}}}"
            )
    if plan["type"] == "path-aggregation" and plan["paths"]:
        lines.append("  path tiling:")
        for path in plan["paths"]:
            rendered = []
            for segment in path["segments"]:
                if segment["kind"] == "view":
                    rendered.append(f"[{segment['name']}]")
                else:
                    rendered.append(segment["element"])
            lines.append(f"    {path['path']}: " + " + ".join(rendered))
    partitions = plan["partitions"]
    lines.append(
        f"  partitions: {partitions['spanned']} "
        f"(estimated joins: {partitions['estimated_joins']})"
    )
    execution = plan.get("execution")
    if execution is not None:
        lines.append(
            f"  actual: {execution['result_records']} records "
            f"(epoch {execution['epoch']})"
        )
        for key, value in execution["counters"].items():
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"    {key}: {shown}")
    lines.append("SQL:")
    lines.append(plan["sql"])
    return "\n".join(lines)


def explain(engine, query, analyze: bool = False, fmt: str = "text") -> str:
    """EXPLAIN (or EXPLAIN ANALYZE with ``analyze=True``) for ``query``.

    ``fmt`` is ``"text"`` or ``"json"``; both renderings are deterministic
    for a fixed engine state (the analyze trace adds wall-clock timings,
    which of course vary run to run).
    """
    plan = explain_dict(engine, query, analyze=analyze)
    if fmt == "json":
        return json.dumps(plan, indent=2, sort_keys=True)
    if fmt == "text":
        return render_plan_text(plan)
    raise ValueError(f"unknown explain format {fmt!r}")

"""Process-wide metrics: counters, gauges, and histograms.

One :class:`MetricsRegistry` aggregates what the storage and serving
layers publish — :class:`~repro.columnstore.iostats.IOStatsCollector`
mirrors its per-column fetch counts, :class:`~repro.exec.BitmapCache`
its hit/miss/eviction traffic, and :class:`~repro.exec.QueryExecutor`
per-query latency histograms — so a benchmark run (or the ``repro
metrics`` CLI) can dump one JSON document covering every stage the
paper's figures break down.

All metric types are thread-safe (the executor publishes from worker
threads) and the registry's exports are deterministic: names are sorted
and histogram summaries are computed from the retained samples, so two
identical runs serialize identically.
"""

from __future__ import annotations

import json
import threading
from bisect import insort

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """A monotonically increasing tally."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that can move both ways (bytes held, entries, epochs)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_dict(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Sampled distribution with percentile summaries.

    Retains up to ``max_samples`` observations (beyond that, new samples
    deterministically overwrite old ones round-robin, keeping summaries
    representative of the recent window while ``count``/``sum`` stay
    exact).  Percentiles use the nearest-rank method over the sorted
    retained samples.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", max_samples: int = 8192):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self.help = help
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._next_slot = 0
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self._samples[self._next_slot] = value
                self._next_slot = (self._next_slot + 1) % self.max_samples

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the retained samples (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            if not self._samples:
                return float("nan")
            ordered = sorted(self._samples)
        rank = max(1, -(-len(ordered) * p // 100)) if p else 1  # ceil
        return ordered[int(rank) - 1]

    def to_dict(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
            ordered = sorted(self._samples)
        if not count:
            return {"type": self.kind, "count": 0}

        def rank(p: float) -> float:
            r = max(1, -(-len(ordered) * p // 100)) if p else 1
            return ordered[int(r) - 1]

        return {
            "type": self.kind,
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "max": hi,
            "p50": rank(50),
            "p90": rank(90),
            "p99": rank(99),
        }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name → metric map with get-or-create accessors.

    Re-requesting a name returns the existing metric; requesting an
    existing name as a different type raises — a registry-wide schema
    conflict is a programming error, not a runtime condition.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._names: list[str] = []  # kept sorted for deterministic export

    def _get_or_create(self, name: str, kind: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = _METRIC_TYPES[kind](name, help, **kwargs)
                self._metrics[name] = metric
                insort(self._names, name)
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, requested {kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, "gauge", help)

    def histogram(
        self, name: str, help: str = "", max_samples: int = 8192
    ) -> Histogram:
        return self._get_or_create(
            name, "histogram", help, max_samples=max_samples
        )

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._names)

    def reset(self) -> None:
        """Drop every registered metric (tests and benchmark phases)."""
        with self._lock:
            self._metrics.clear()
            self._names.clear()

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic JSON-ready dump: ``{name: {type, ...}}`` sorted."""
        with self._lock:
            items = [(name, self._metrics[name]) for name in self._names]
        return {name: metric.to_dict() for name, metric in items}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """One aligned text line per metric, sorted by name."""
        dump = self.to_dict()
        if not dump:
            return "(no metrics recorded)"
        width = max(len(name) for name in dump)
        lines = []
        for name, payload in dump.items():
            kind = payload["type"]
            if kind == "histogram":
                if payload["count"] == 0:
                    detail = "count=0"
                else:
                    detail = (
                        f"count={payload['count']} mean={payload['mean']:.6g} "
                        f"p50={payload['p50']:.6g} p90={payload['p90']:.6g} "
                        f"p99={payload['p99']:.6g} max={payload['max']:.6g}"
                    )
            else:
                value = payload["value"]
                detail = f"{int(value)}" if float(value).is_integer() else f"{value:.6g}"
            lines.append(f"{name:<{width}}  {kind:<9}  {detail}")
        return "\n".join(lines)


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous

"""Typed error hierarchy for the whole stack.

Every failure the library can surface to a caller derives from
:class:`ReproError`, so applications (and the CLI) can catch one base class
instead of fishing ``KeyError``/``ValueError`` out of internals:

* :class:`PersistenceError` — anything wrong with an on-disk relation
  directory;

  * :class:`ManifestError` — the manifest (or another metadata file) is
    missing required fields, has an unsupported format version, or is not
    valid JSON;
  * :class:`CorruptionError` — a data file failed an integrity check:
    wrong size (torn write), CRC32 mismatch (bit rot), unreadable ``.npy``
    payload, or internally inconsistent arrays;

* :class:`IngestError` — a record source (JSONL / CSV / checkpointed bulk
  load) contains data that cannot be ingested under the active error
  policy;
* :class:`QuerySyntaxError` — the DSL parser rejected a query string
  (defined here, re-exported by :mod:`repro.dsl`);
* :class:`PathJoinError` — two paths cannot be joined (defined here,
  re-exported by :mod:`repro.core.paths`);
* :class:`ResilienceError` — the serving-resilience layer refused, cut
  short, or degraded a query (:mod:`repro.resilience`);

  * :class:`QueryTimeoutError` — the query's deadline expired before it
    finished (raised cooperatively at operator boundaries);
  * :class:`QueryCancelledError` — the query's cancel token fired;
  * :class:`AdmissionRejectedError` — the admission controller refused the
    query (inflight/rate/byte budget exhausted within the bounded wait);
    carries ``retry_after`` as a backoff hint;
  * :class:`ShardExecutionError` — one record-range shard kept failing
    after retries (carries ``shard`` and the ``start``/``stop`` record
    range it would have answered for);

    * :class:`CircuitOpenError` — the shard was not even attempted because
      its circuit breaker is open from earlier failures.

``IngestError``, ``QuerySyntaxError`` and ``PathJoinError`` also subclass
``ValueError`` so existing ``except ValueError`` callers keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PersistenceError",
    "ManifestError",
    "CorruptionError",
    "IngestError",
    "QuerySyntaxError",
    "PathJoinError",
    "ResilienceError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "AdmissionRejectedError",
    "ShardExecutionError",
    "CircuitOpenError",
    "EXIT_ERROR",
    "EXIT_TIMEOUT",
    "EXIT_ADMISSION",
    "EXIT_SHARD",
    "exit_code_for",
]

# Exit codes: 0 ok, 2 usage/data error (argparse convention), then one code
# per resilience failure class so scripts can branch without parsing stderr.
# Shared by the CLI and the HTTP daemon (error bodies carry ``exit_code``),
# so the two surfaces stay in lockstep.
EXIT_ERROR = 2
EXIT_TIMEOUT = 3
EXIT_ADMISSION = 4
EXIT_SHARD = 5


def exit_code_for(exc: Exception) -> int:
    """The process exit code for a failure, per the table above.

    Cancellation shares the timeout code: both mean "the deadline/caller
    cut this query short", and clients retry them identically.
    """
    if isinstance(exc, (QueryTimeoutError, QueryCancelledError)):
        return EXIT_TIMEOUT
    if isinstance(exc, AdmissionRejectedError):
        return EXIT_ADMISSION
    if isinstance(exc, ShardExecutionError):
        return EXIT_SHARD
    return EXIT_ERROR


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class PersistenceError(ReproError):
    """A persisted relation directory cannot be written or read."""


class ManifestError(PersistenceError):
    """A manifest / metadata file is missing, malformed, or unsupported."""


class CorruptionError(PersistenceError):
    """A data file failed an integrity check (size, CRC32, or contents)."""


class IngestError(ReproError, ValueError):
    """A record source contains data that cannot be ingested."""


class QuerySyntaxError(ReproError, ValueError):
    """A query string could not be parsed (or lowered to a query object).

    Raised by the :mod:`repro.lang` front-end.  ``position`` is the
    0-based character offset of the offending token in the source text
    (None when the error has no single location); ``source`` is the text
    being parsed, kept so renderers can point a caret at the offset; and
    ``line`` is an optional 1-based workload-file line number attached by
    batch consumers.  :func:`repro.lang.render_syntax_error` turns all of
    that into the caret-annotated message the CLI prints.
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        source: str | None = None,
        line: int | None = None,
    ):
        super().__init__(message)
        self.position = position
        self.source = source
        self.line = line


class PathJoinError(ReproError, ValueError):
    """Two paths cannot be path-joined (no shared endpoint)."""


class ResilienceError(ReproError):
    """The serving-resilience layer refused, cut short, or degraded a
    query (deadline, cancellation, admission, or shard failure)."""


class QueryTimeoutError(ResilienceError):
    """The query's deadline expired before it finished.

    Raised cooperatively: operators check the deadline at every
    conjunction-fold step and shard boundary, so a query with a deadline
    of D seconds stops within one operator step past D.
    """

    def __init__(self, message: str = "query deadline exceeded", budget: float | None = None):
        super().__init__(message)
        #: The deadline's original time budget in seconds, when known.
        self.budget = budget


class QueryCancelledError(ResilienceError):
    """The query's cancel token fired before it finished."""


class AdmissionRejectedError(ResilienceError):
    """The admission controller refused the query.

    The inflight-query, token-bucket, or byte budget stayed exhausted for
    the whole bounded wait.  ``retry_after`` (seconds, possibly 0.0) is the
    controller's backoff hint — :func:`repro.resilience.retry_with_backoff`
    honours it automatically.
    """

    def __init__(self, message: str = "admission rejected", retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class ShardExecutionError(ResilienceError):
    """One record-range shard failed (after any configured retries).

    ``shard`` is the shard index; ``start``/``stop`` delimit the global
    record range the shard would have answered for — the range a
    ``partial_ok`` query reports as skipped instead of raising this.
    """

    def __init__(
        self,
        message: str,
        shard: int = -1,
        start: int = 0,
        stop: int = 0,
    ):
        super().__init__(message)
        self.shard = shard
        self.start = start
        self.stop = stop


class CircuitOpenError(ShardExecutionError):
    """A shard was skipped without an attempt: its circuit breaker is open
    from earlier failures and the cooldown has not elapsed."""

"""Typed error hierarchy for the whole stack.

Every failure the library can surface to a caller derives from
:class:`ReproError`, so applications (and the CLI) can catch one base class
instead of fishing ``KeyError``/``ValueError`` out of internals:

* :class:`PersistenceError` — anything wrong with an on-disk relation
  directory;

  * :class:`ManifestError` — the manifest (or another metadata file) is
    missing required fields, has an unsupported format version, or is not
    valid JSON;
  * :class:`CorruptionError` — a data file failed an integrity check:
    wrong size (torn write), CRC32 mismatch (bit rot), unreadable ``.npy``
    payload, or internally inconsistent arrays;

* :class:`IngestError` — a record source (JSONL / CSV / checkpointed bulk
  load) contains data that cannot be ingested under the active error
  policy;
* :class:`QuerySyntaxError` — the DSL parser rejected a query string
  (defined here, re-exported by :mod:`repro.dsl`);
* :class:`PathJoinError` — two paths cannot be joined (defined here,
  re-exported by :mod:`repro.core.paths`).

``IngestError``, ``QuerySyntaxError`` and ``PathJoinError`` also subclass
``ValueError`` so existing ``except ValueError`` callers keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PersistenceError",
    "ManifestError",
    "CorruptionError",
    "IngestError",
    "QuerySyntaxError",
    "PathJoinError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class PersistenceError(ReproError):
    """A persisted relation directory cannot be written or read."""


class ManifestError(PersistenceError):
    """A manifest / metadata file is missing, malformed, or unsupported."""


class CorruptionError(PersistenceError):
    """A data file failed an integrity check (size, CRC32, or contents)."""


class IngestError(ReproError, ValueError):
    """A record source contains data that cannot be ingested."""


class QuerySyntaxError(ReproError, ValueError):
    """A DSL query string could not be parsed."""


class PathJoinError(ReproError, ValueError):
    """Two paths cannot be path-joined (no shared endpoint)."""

"""repro — graph analytics on massive collections of small graphs.

A production-quality reproduction of Bleco & Kotidis, *Graph Analytics on
Massive Collections of Small Graphs* (EDBT 2014): a columnar storage model
for collections of small, named-node graph records; bitmap-index query
evaluation; and a materialized graph-view framework (selection + rewriting)
that expedites graph and path-aggregation queries.

Quickstart::

    from repro import GraphAnalyticsEngine, GraphRecord, GraphQuery

    engine = GraphAnalyticsEngine()
    engine.load_records([
        GraphRecord("r1", {("A", "D"): 3.0, ("D", "E"): 1.5}),
        GraphRecord("r2", {("A", "D"): 2.0, ("D", "F"): 4.0}),
    ])
    result = engine.query(GraphQuery.from_node_chain("A", "D", "E"))
    assert result.record_ids == ["r1"]
"""

from .core import (
    AggregateGraphView,
    And,
    AndNot,
    EdgeCatalog,
    GraphAnalyticsEngine,
    GraphQuery,
    GraphQueryResult,
    GraphRecord,
    GraphView,
    MaterializationReport,
    Or,
    Path,
    PathAggregationQuery,
    PathAggregationResult,
    PathJoinError,
    get_function,
    register_function,
)
from .columnstore import Bitmap, IOStats, MasterRelation
from .exec import BitmapCache, CacheStats, QueryExecutor
from .adaptive import ViewMaintainer, WorkloadWindow
from .advisor import AdaptiveViewAdvisor
from .lang import (
    QuerySyntaxError,
    canonical,
    parse_aggregation,
    parse_query,
    parse_statement,
    try_unparse,
    unparse,
)
from .errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    CorruptionError,
    IngestError,
    ManifestError,
    PersistenceError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ResilienceError,
    ShardExecutionError,
)
from .resilience import (
    AdmissionController,
    CancelToken,
    CircuitBreaker,
    Deadline,
    DegradedReport,
    QueryContext,
    ResiliencePolicy,
    SkippedShard,
    retry_with_backoff,
)
from .io import (
    QuarantineEntry,
    QuarantineReport,
    read_csv_triplets,
    read_jsonl,
    write_csv_triplets,
    write_jsonl,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateGraphView",
    "And",
    "AndNot",
    "AdaptiveViewAdvisor",
    "Bitmap",
    "ViewMaintainer",
    "WorkloadWindow",
    "BitmapCache",
    "CacheStats",
    "QueryExecutor",
    "AdmissionController",
    "AdmissionRejectedError",
    "CancelToken",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DegradedReport",
    "QueryCancelledError",
    "QueryContext",
    "QueryTimeoutError",
    "ResilienceError",
    "ResiliencePolicy",
    "ShardExecutionError",
    "SkippedShard",
    "retry_with_backoff",
    "CorruptionError",
    "IngestError",
    "ManifestError",
    "PersistenceError",
    "QuarantineEntry",
    "QuarantineReport",
    "QuerySyntaxError",
    "ReproError",
    "canonical",
    "parse_aggregation",
    "parse_query",
    "parse_statement",
    "try_unparse",
    "unparse",
    "read_csv_triplets",
    "read_jsonl",
    "write_csv_triplets",
    "write_jsonl",
    "EdgeCatalog",
    "GraphAnalyticsEngine",
    "GraphQuery",
    "GraphQueryResult",
    "GraphRecord",
    "GraphView",
    "IOStats",
    "MasterRelation",
    "MaterializationReport",
    "Or",
    "Path",
    "PathAggregationQuery",
    "PathAggregationResult",
    "PathJoinError",
    "get_function",
    "register_function",
    "__version__",
]

"""Record interchange formats: JSON-lines and CSV triplets.

Real deployments ingest graph records from application logs; two common
encodings are supported:

* **JSONL** — one record per line:
  ``{"id": "r1", "measures": [["A","D",3.0], ["D","D",1.5]], "metadata": {...}}``
  (a two-element self pair ``["D","D",…]`` is node D's own measure);
* **CSV triplets** — the row-store's natural dump, one measure per row:
  ``recid,source,target,value`` with an optional header.

Both directions round-trip exactly (modulo float formatting in CSV).

Ingestion is **fault tolerant**: both readers take an error ``policy`` —

* ``"strict"`` (default) — raise :class:`~repro.errors.IngestError` on the
  first bad line, with the file name and line number in the message;
* ``"skip"`` — silently drop bad lines and keep streaming good records;
* ``"collect"`` — drop bad lines but record each one (location, reason,
  snippet) into a :class:`QuarantineReport`, so a bulk load over a dirty
  log finishes and reports exactly what it left behind.

Measure values must be finite; NaN/inf are rejected as ingest errors
(NaN is the storage layer's NULL marker, so letting one in would silently
corrupt containment semantics).
"""

from __future__ import annotations

import csv
import json
import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path as FsPath

from .core.record import GraphRecord
from .errors import IngestError

__all__ = [
    "POLICIES",
    "QuarantineEntry",
    "QuarantineReport",
    "ingest_records",
    "write_jsonl",
    "read_jsonl",
    "write_csv_triplets",
    "read_csv_triplets",
]

POLICIES = ("strict", "skip", "collect")


@dataclass(frozen=True)
class QuarantineEntry:
    """One rejected input line: where it was, why, and what it looked like."""

    source: str
    line_no: int
    reason: str
    snippet: str

    def __str__(self) -> str:
        return f"{self.source}:{self.line_no}: {self.reason}"


@dataclass
class QuarantineReport:
    """Accumulates the lines an ingest run rejected under ``collect``."""

    entries: list[QuarantineEntry] = field(default_factory=list)

    def add(self, source: str, line_no: int, reason: str, snippet: str = "") -> None:
        self.entries.append(QuarantineEntry(source, line_no, reason, snippet[:200]))

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[QuarantineEntry]:
        return iter(self.entries)

    def summary(self) -> str:
        if not self.entries:
            return "no lines quarantined"
        lines = [f"{len(self.entries)} line(s) quarantined:"]
        lines.extend(f"  {entry}" for entry in self.entries)
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "source": e.source,
                    "line": e.line_no,
                    "reason": e.reason,
                    "snippet": e.snippet,
                }
                for e in self.entries
            ],
            indent=2,
        )


class _ErrorPolicy:
    """Shared strict/skip/collect dispatch for the streaming readers."""

    def __init__(self, policy: str, report: QuarantineReport | None, source: str):
        if policy not in POLICIES:
            raise ValueError(f"unknown error policy {policy!r}; choose from {POLICIES}")
        self.policy = policy
        self.source = source
        self.report = report if report is not None else QuarantineReport()

    def reject(self, line_no: int, reason: str, snippet: str = "") -> None:
        """Handle one bad line: raise under strict, else quarantine/skip."""
        if self.policy == "strict":
            raise IngestError(f"{self.source}:{line_no}: {reason}")
        if self.policy == "collect":
            self.report.add(self.source, line_no, reason, snippet)


def _checked_value(raw: object) -> float:
    try:
        value = float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise IngestError(f"measure value is not a number: {raw!r}") from None
    if not math.isfinite(value):
        raise IngestError(f"measure value must be finite, got {value!r}")
    return value


def _record_to_dict(record: GraphRecord) -> dict:
    measures = [[u, v, value] for (u, v), value in sorted(
        record.measures().items(), key=lambda kv: (repr(kv[0][0]), repr(kv[0][1]))
    )]
    out = {"id": record.record_id, "measures": measures}
    if record.metadata:
        out["metadata"] = record.metadata
    return out


def _record_from_dict(payload: object) -> GraphRecord:
    if not isinstance(payload, dict):
        raise IngestError(f"record must be a JSON object, got {type(payload).__name__}")
    try:
        record_id = payload["id"]
        raw = payload["measures"]
    except KeyError as exc:
        raise IngestError(f"record object missing field {exc}") from None
    if not isinstance(raw, list):
        raise IngestError(f"measures must be a list, got {type(raw).__name__}")
    metadata = payload.get("metadata")
    if metadata is not None and not isinstance(metadata, dict):
        raise IngestError(f"metadata must be an object, got {type(metadata).__name__}")
    measures = {}
    for entry in raw:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise IngestError(
                f"measure entry must have 3 elements [u, v, value]: {entry!r}"
            )
        u, v, value = entry
        measures[(u, v)] = _checked_value(value)
    if not measures:
        raise IngestError("record has no measures")
    return GraphRecord(record_id, measures, metadata)


def ingest_records(engine, records: Iterable[GraphRecord], jobs: int | None = None) -> int:
    """Load a record stream into ``engine``, shard-parallel when possible.

    The storage-backend seam's ingest entry point: an *empty* sharded
    engine routes contiguous record chunks to their shards on a thread
    pool (:meth:`GraphAnalyticsEngine.load_records_parallel`); everything
    else — unsharded engines, non-empty engines — takes the serial
    :meth:`load_records` path.  Record order, and therefore every query
    answer, is identical either way.  Returns the number of records
    loaded.
    """
    if getattr(engine, "n_shards", 1) > 1 and engine.n_records == 0:
        return engine.load_records_parallel(records, jobs=jobs)
    return engine.load_records(records)


def write_jsonl(records: Iterable[GraphRecord], path: str | FsPath) -> int:
    """Write records as JSON-lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")
            count += 1
    return count


def read_jsonl(
    path: str | FsPath,
    policy: str = "strict",
    report: QuarantineReport | None = None,
) -> Iterator[GraphRecord]:
    """Stream records from a JSON-lines file.

    ``policy`` selects the error behavior (see the module docstring); with
    ``"collect"``, pass a :class:`QuarantineReport` to receive one entry
    per rejected line.
    """
    handler = _ErrorPolicy(policy, report, str(path))
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                handler.reject(line_no, f"invalid JSON: {exc}", line)
                continue
            try:
                yield _record_from_dict(payload)
            except IngestError as exc:
                handler.reject(line_no, str(exc), line)


def write_csv_triplets(
    records: Iterable[GraphRecord], path: str | FsPath, header: bool = True
) -> int:
    """Write records as (recid, source, target, value) rows."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["recid", "source", "target", "value"])
        for record in records:
            for (u, v), value in sorted(
                record.measures().items(),
                key=lambda kv: (repr(kv[0][0]), repr(kv[0][1])),
            ):
                writer.writerow([record.record_id, u, v, value])
            count += 1
    return count


def read_csv_triplets(
    path: str | FsPath,
    policy: str = "strict",
    report: QuarantineReport | None = None,
) -> Iterator[GraphRecord]:
    """Stream records from a triplet CSV.

    Rows for one record must be contiguous (as :func:`write_csv_triplets`
    produces them); an optional ``recid,source,target,value`` header is
    skipped automatically.  ``policy`` selects the per-row error behavior;
    a record whose rows were all rejected is dropped entirely.
    """
    handler = _ErrorPolicy(policy, report, str(path))
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        current_id = None
        measures: dict = {}

        def _flush() -> GraphRecord | None:
            nonlocal measures
            done, measures = (current_id, measures), {}
            if done[0] is not None and done[1]:
                return GraphRecord(done[0], done[1])
            return None

        for row_no, row in enumerate(reader, start=1):
            if not row:
                continue
            if row_no == 1 and row[:4] == ["recid", "source", "target", "value"]:
                continue
            if len(row) != 4:
                handler.reject(
                    row_no, f"expected 4 columns, got {len(row)}", ",".join(row)
                )
                continue
            recid, u, v, raw_value = row
            try:
                value = _checked_value(raw_value)
            except IngestError as exc:
                handler.reject(row_no, str(exc), ",".join(row))
                continue
            if recid != current_id:
                record = _flush()
                if record is not None:
                    yield record
                current_id = recid
            measures[(u, v)] = value
        record = _flush()
        if record is not None:
            yield record

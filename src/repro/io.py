"""Record interchange formats: JSON-lines and CSV triplets.

Real deployments ingest graph records from application logs; two common
encodings are supported:

* **JSONL** — one record per line:
  ``{"id": "r1", "measures": [["A","D",3.0], ["D","D",1.5]], "metadata": {...}}``
  (a two-element self pair ``["D","D",…]`` is node D's own measure);
* **CSV triplets** — the row-store's natural dump, one measure per row:
  ``recid,source,target,value`` with an optional header.

Both directions round-trip exactly (modulo float formatting in CSV).
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable, Iterator
from pathlib import Path as FsPath

from .core.record import GraphRecord

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "write_csv_triplets",
    "read_csv_triplets",
]


def _record_to_dict(record: GraphRecord) -> dict:
    measures = [[u, v, value] for (u, v), value in sorted(
        record.measures().items(), key=lambda kv: (repr(kv[0][0]), repr(kv[0][1]))
    )]
    out = {"id": record.record_id, "measures": measures}
    if record.metadata:
        out["metadata"] = record.metadata
    return out


def _record_from_dict(payload: dict) -> GraphRecord:
    try:
        record_id = payload["id"]
        raw = payload["measures"]
    except KeyError as exc:
        raise ValueError(f"record object missing field {exc}") from None
    measures = {}
    for entry in raw:
        if len(entry) != 3:
            raise ValueError(f"measure entry must be [u, v, value]: {entry!r}")
        u, v, value = entry
        measures[(u, v)] = float(value)
    return GraphRecord(record_id, measures, payload.get("metadata"))


def write_jsonl(records: Iterable[GraphRecord], path: str | FsPath) -> int:
    """Write records as JSON-lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")
            count += 1
    return count


def read_jsonl(path: str | FsPath) -> Iterator[GraphRecord]:
    """Stream records from a JSON-lines file."""
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON: {exc}") from None
            yield _record_from_dict(payload)


def write_csv_triplets(
    records: Iterable[GraphRecord], path: str | FsPath, header: bool = True
) -> int:
    """Write records as (recid, source, target, value) rows."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["recid", "source", "target", "value"])
        for record in records:
            for (u, v), value in sorted(
                record.measures().items(),
                key=lambda kv: (repr(kv[0][0]), repr(kv[0][1])),
            ):
                writer.writerow([record.record_id, u, v, value])
            count += 1
    return count


def read_csv_triplets(path: str | FsPath) -> Iterator[GraphRecord]:
    """Stream records from a triplet CSV.

    Rows for one record must be contiguous (as :func:`write_csv_triplets`
    produces them); an optional ``recid,source,target,value`` header is
    skipped automatically.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        current_id = None
        measures: dict = {}
        for row_no, row in enumerate(reader, start=1):
            if not row:
                continue
            if row_no == 1 and row[:4] == ["recid", "source", "target", "value"]:
                continue
            if len(row) != 4:
                raise ValueError(f"{path}:{row_no}: expected 4 columns, got {len(row)}")
            recid, u, v, value = row
            if recid != current_id:
                if current_id is not None:
                    yield GraphRecord(current_id, measures)
                current_id = recid
                measures = {}
            measures[(u, v)] = float(value)
        if current_id is not None:
            yield GraphRecord(current_id, measures)

"""Workload-adaptive view management.

The paper's selection algorithm takes a *known* workload (Section 5.2);
its citation [6] (Kotidis & Roussopoulos, "A Case for Dynamic View
Management") argues views should instead track the observed query stream.
:class:`AdaptiveViewAdvisor` closes that loop for graph views:

* every executed query is recorded in a sliding window;
* :meth:`refresh` re-runs candidate generation + greedy selection on the
  window and reconciles the engine's materialized views — dropping views
  the current window no longer wants and materializing the newly chosen
  ones, under a fixed budget;
* hysteresis (``keep_fraction``) avoids thrashing: a view already
  materialized is kept if it still covers any window query, until the
  budget forces it out.

The advisor only manages views it created (named ``adv*``), so manually
materialized views and gIndex fragment columns are left alone.
"""

from __future__ import annotations

from collections import deque

from .core.candidates import closed_candidates
from .core.engine import GraphAnalyticsEngine
from .core.query import GraphQuery
from .core.record import Edge
from .core.setcover import greedy_select_views

__all__ = ["AdaptiveViewAdvisor"]


class AdaptiveViewAdvisor:
    """Observe queries, keep the view set tuned to the recent workload."""

    def __init__(
        self,
        engine: GraphAnalyticsEngine,
        budget: int,
        window: int = 200,
        min_support: int = 1,
        refresh_every: int | None = None,
    ):
        if budget < 0:
            raise ValueError("budget must be >= 0")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.engine = engine
        self.budget = budget
        self.window: deque[GraphQuery] = deque(maxlen=window)
        self.min_support = min_support
        self.refresh_every = refresh_every
        self._since_refresh = 0
        self._managed: dict[str, frozenset[Edge]] = {}
        self.refreshes = 0

    # -- observation -------------------------------------------------------------

    def observe(self, query: GraphQuery) -> None:
        """Record one executed query; auto-refresh if configured."""
        self.window.append(query)
        self._since_refresh += 1
        if (
            self.refresh_every is not None
            and self._since_refresh >= self.refresh_every
        ):
            self.refresh()

    def execute(self, query: GraphQuery, **kwargs):
        """Convenience: run the query on the engine and observe it."""
        self.observe(query)
        return self.engine.query(query, **kwargs)

    # -- reconciliation -------------------------------------------------------------

    def desired_views(self) -> list[frozenset[Edge]]:
        """What the greedy selector wants for the current window."""
        workload = list(self.window)
        if not workload:
            return []
        candidates = closed_candidates(workload, min_support=self.min_support)
        keyed = {i: elems for i, elems in enumerate(candidates)}
        selection = greedy_select_views(
            [q.elements for q in workload], keyed, budget=self.budget
        )
        return [keyed[k] for k in selection.selected]

    def refresh(self) -> dict:
        """Reconcile materialized views with the current window's wishes.

        Returns a summary: ``{"kept": [...], "added": [...], "dropped": [...]}``.
        """
        self._since_refresh = 0
        self.refreshes += 1
        desired = self.desired_views()
        desired_set = set(desired)

        kept: list[str] = []
        dropped: list[str] = []
        # Keep managed views still wanted; also keep (within budget) those
        # that still help some window query, to damp oscillation.
        still_useful = {
            name: elems
            for name, elems in self._managed.items()
            if elems in desired_set
            or any(elems <= q.elements for q in self.window)
        }
        survivors = dict(list(still_useful.items())[: self.budget])
        for name, elems in list(self._managed.items()):
            if name in survivors:
                kept.append(name)
            else:
                dropped.append(name)

        # Per-view drop: survivors and unmanaged views stay materialized.
        if dropped:
            self.engine.drop_decayed(dropped)

        added: list[str] = []
        survivor_sets = set(survivors.values())
        for elems in desired:
            if len(survivors) + len(added) >= self.budget:
                break
            if elems in survivor_sets:
                continue
            name = f"adv{self.refreshes}_{len(added)}"
            self.engine.add_graph_view(elems, name=name)
            survivor_sets.add(elems)
            added.append(name)

        self._managed = {
            **survivors,
            **{
                name: self.engine.graph_views[name].elements
                for name in added
            },
        }
        return {"kept": kept, "added": added, "dropped": dropped}

    @property
    def managed_views(self) -> dict[str, frozenset[Edge]]:
        return dict(self._managed)

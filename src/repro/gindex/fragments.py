"""Discriminative fragment selection, after gIndex (Yan, Yu & Han 2004).

gIndex does not index every frequent fragment: a fragment earns an index
feature only when it is *discriminative* — when the records containing it
cannot already be pinned down by intersecting the records of its indexed
subfragments.  Formally, with ``D_f`` the support set of fragment ``f``
and ``F(f)`` its indexed subfragments, ``f`` is discriminative when::

    |∩_{f' ∈ F(f)} D_{f'}|  /  |D_f|   >=   gamma_min

(the paper's default γ_min = 2).  Size-1 fragments are always indexed —
they are our framework's plain edge bitmaps.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.record import Edge
from .mining import Fragment

__all__ = ["select_discriminative_fragments"]

DEFAULT_GAMMA_MIN = 2.0


def select_discriminative_fragments(
    fragments: Sequence[Fragment],
    record_elements: Sequence[frozenset],
    gamma_min: float = DEFAULT_GAMMA_MIN,
    max_selected: int | None = None,
) -> list[Fragment]:
    """The discriminative fragments among ``fragments``.

    ``record_elements`` is the mining sample's element sets (used to
    recompute support sets exactly).  Returns multi-edge fragments in
    selection order (ascending size, then descending support), capped at
    ``max_selected`` if given.
    """
    if gamma_min < 1.0:
        raise ValueError("gamma_min must be >= 1")
    # Support sets for every fragment on the sample.
    support_sets: dict[frozenset[Edge], set[int]] = {}
    for fragment in fragments:
        rows = {
            tid
            for tid, elements in enumerate(record_elements)
            if fragment.elements <= elements
        }
        support_sets[fragment.elements] = rows

    # Size-1 fragments are implicitly indexed (the b_i columns).
    indexed: list[frozenset[Edge]] = [
        f.elements for f in fragments if len(f.elements) == 1
    ]
    selected: list[Fragment] = []
    multi = sorted(
        (f for f in fragments if len(f.elements) >= 2),
        key=lambda f: (len(f.elements), -f.support, sorted(map(repr, f.elements))),
    )
    all_rows = set(range(len(record_elements)))
    for fragment in multi:
        if max_selected is not None and len(selected) >= max_selected:
            break
        ancestors = [
            support_sets[idx] for idx in indexed if idx < fragment.elements
        ]
        projected = set(all_rows)
        for rows in ancestors:
            projected &= rows
        own = support_sets[fragment.elements]
        if not own:
            continue
        if len(projected) / len(own) >= gamma_min:
            selected.append(fragment)
            indexed.append(fragment.elements)
    return selected

"""gIndex-style fragment indexing (Section 6.3): frequent connected
edge-set mining (the gSpan reduction for identified-node graphs),
discriminative fragment selection, and engine integration."""

from .fragments import select_discriminative_fragments
from .integration import index_fragments, mine_and_index
from .mining import Fragment, mine_frequent_fragments

__all__ = [
    "Fragment",
    "mine_frequent_fragments",
    "select_discriminative_fragments",
    "index_fragments",
    "mine_and_index",
]

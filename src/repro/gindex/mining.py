"""Frequent subgraph mining over graph-record collections (gSpan stand-in).

Section 7.3 mines frequent subgraphs with gSpan [16] and then selects
gIndex's discriminative fragments [5] as extra index features.  In the
paper's domain, nodes carry *globally unique business identifiers*
(Section 1), so subgraph containment is plain edge-set containment — no
isomorphism search, no canonical DFS codes.  gSpan therefore reduces to
**frequent connected edge-set mining**, which we implement Eclat-style:
level-wise growth of connected edge sets, with each set carrying its
TID-list (the set of records containing it) so support counting is an
intersection, exactly like the bitmap algebra the engine itself uses.

The miner is still expensive relative to view selection (it walks the
record collection's pattern lattice), reproducing the paper's observation
that fragment selection took 1.5h on a 1% sample while view selection ran
in under a second.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Hashable

from ..core.record import Edge, GraphRecord

__all__ = ["Fragment", "mine_frequent_fragments"]


@dataclass(frozen=True)
class Fragment:
    """A frequent connected edge set with its support."""

    elements: frozenset[Edge]
    support: int

    def __len__(self) -> int:
        return len(self.elements)


def _nodes_of(elements: Iterable[Edge]) -> frozenset[Hashable]:
    out: set[Hashable] = set()
    for u, v in elements:
        out.add(u)
        out.add(v)
    return frozenset(out)


def _is_connected_extension(elements: frozenset[Edge], edge: Edge) -> bool:
    nodes = _nodes_of(elements)
    return edge[0] in nodes or edge[1] in nodes


def mine_frequent_fragments(
    records: Sequence[GraphRecord] | Sequence[frozenset],
    min_support: int,
    max_size: int = 4,
    max_fragments: int = 10_000,
) -> list[Fragment]:
    """Frequent connected edge sets of size 1..``max_size``.

    ``records`` may be :class:`GraphRecord` objects or plain element sets
    (e.g. a corpus sample).  ``min_support`` is an absolute record count.
    ``max_fragments`` caps the exploration as a safety valve.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    element_sets: list[frozenset[Edge]] = [
        r.elements() if isinstance(r, GraphRecord) else frozenset(r) for r in records
    ]
    # TID-lists per single edge.
    tids: dict[Edge, set[int]] = {}
    for tid, elements in enumerate(element_sets):
        for edge in elements:
            tids.setdefault(edge, set()).add(tid)
    frequent_edges = {
        edge: rows for edge, rows in tids.items() if len(rows) >= min_support
    }
    level: dict[frozenset[Edge], set[int]] = {
        frozenset([edge]): rows for edge, rows in frequent_edges.items()
    }
    fragments: list[Fragment] = [
        Fragment(elements, len(rows)) for elements, rows in level.items()
    ]
    size = 1
    while level and size < max_size and len(fragments) < max_fragments:
        size += 1
        next_level: dict[frozenset[Edge], set[int]] = {}
        for elements, rows in level.items():
            for edge, edge_rows in frequent_edges.items():
                if edge in elements:
                    continue
                if not _is_connected_extension(elements, edge):
                    continue
                extended = elements | {edge}
                if extended in next_level:
                    continue
                support_rows = rows & edge_rows
                if len(support_rows) >= min_support:
                    next_level[extended] = support_rows
                if len(fragments) + len(next_level) >= max_fragments:
                    break
            if len(fragments) + len(next_level) >= max_fragments:
                break
        fragments.extend(
            Fragment(elements, len(rows)) for elements, rows in next_level.items()
        )
        level = next_level
    fragments.sort(key=lambda f: (-f.support, -len(f.elements), sorted(map(repr, f.elements))))
    return fragments

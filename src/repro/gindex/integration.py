"""Hooking gIndex fragments into the engine (Section 6.3).

The framework accommodates specialized graph indexes by giving each index
feature a bitmap column: a fragment's column has 1s for the records that
contain it.  Registered this way, fragments participate in query planning
exactly like graph views (the greedy cover picks whichever bitmaps cover
the query cheapest) — which is what lets Figures 10–11 compare "same
number of fragments vs views" head-to-head.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.engine import GraphAnalyticsEngine
from .fragments import select_discriminative_fragments
from .mining import Fragment, mine_frequent_fragments

__all__ = ["index_fragments", "mine_and_index"]


def index_fragments(
    engine: GraphAnalyticsEngine,
    fragments: Sequence[Fragment],
    prefix: str = "frag",
) -> list[str]:
    """Add one bitmap column per fragment; returns the column names."""
    names: list[str] = []
    for i, fragment in enumerate(fragments):
        if len(fragment.elements) < 2:
            continue  # single edges already have b_i columns
        name = engine.add_graph_view(fragment.elements, name=f"{prefix}{i}")
        names.append(name)
    return names


def mine_and_index(
    engine: GraphAnalyticsEngine,
    sample_elements: Sequence[frozenset],
    min_support: int,
    max_fragments: int,
    gamma_min: float = 2.0,
    max_size: int = 4,
    prefix: str = "frag",
) -> list[str]:
    """Full gIndex pipeline: mine the sample, select discriminative
    fragments, register their bitmaps.  Returns the column names."""
    mined = mine_frequent_fragments(
        sample_elements, min_support=min_support, max_size=max_size
    )
    discriminative = select_discriminative_fragments(
        mined, sample_elements, gamma_min=gamma_min, max_selected=max_fragments
    )
    return index_fragments(engine, discriminative, prefix=prefix)

"""Workload generation: base networks, record corpora, query workloads,
and the paper's named dataset configurations (Table 2)."""

from .datasets import DATASETS, DatasetSpec, build_dataset, corpus_statistics
from .networks import gnutella_network, ny_road_network
from .queries import (
    as_aggregate_queries,
    path_pool,
    sample_dense_queries,
    sample_path_queries,
)
from .records import (
    RecordCorpus,
    generate_corpus,
    generate_dense_corpus,
    sample_edge_universe,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "build_dataset",
    "corpus_statistics",
    "gnutella_network",
    "ny_road_network",
    "as_aggregate_queries",
    "path_pool",
    "sample_dense_queries",
    "sample_path_queries",
    "RecordCorpus",
    "generate_corpus",
    "generate_dense_corpus",
    "sample_edge_universe",
]

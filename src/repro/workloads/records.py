"""Graph-record corpus generation (Section 7.1).

From an underlying network the paper synthesizes millions of graph records
"by invoking multiple random walk processes in the underlying graphs" and
assigning a random real measure to each edge.  This module reproduces
that pipeline at configurable scale:

1. restrict the network to an **edge universe** of a fixed size (the
   "distinct number of edge ids" knob of Table 2 — default 1000);
2. run self-avoiding random walks inside the universe to form records of
   ``min_edges``–``max_edges`` edges;
3. draw a uniform random measure per traversed edge.

The corpus keeps both the walks (the query-path pool of Section 7.1) and a
columnar layout for fast engine loading; :meth:`RecordCorpus.to_records`
yields :class:`~repro.core.record.GraphRecord` objects for the baselines.

For the density experiment (Figures 3(c), 4) records are instead random
edge *subsets* of the universe sized ``density × universe`` —
:func:`generate_dense_corpus` — since a fixed-size universe cannot host
arbitrarily long self-avoiding walks.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx
import numpy as np

from ..core.record import Edge, GraphRecord

__all__ = ["RecordCorpus", "generate_corpus", "generate_dense_corpus", "sample_edge_universe"]


@dataclass
class RecordCorpus:
    """A generated collection of graph records plus its provenance."""

    universe: list[Edge]
    # Per record: indices into ``universe`` and parallel measure values.
    record_edges: list[np.ndarray]
    record_values: list[np.ndarray]
    # Node sequences of the generating walks (empty for dense corpora);
    # the pool that query workloads sample paths from.
    walks: list[list[Hashable]] = field(default_factory=list)

    @property
    def n_records(self) -> int:
        return len(self.record_edges)

    def n_measures(self) -> int:
        """Total measure values across all records (Table 2's row)."""
        return int(sum(a.size for a in self.record_edges))

    def edges_per_record(self) -> tuple[int, int, float]:
        """(min, max, average) record sizes, as reported in Table 2."""
        sizes = np.array([a.size for a in self.record_edges])
        return int(sizes.min()), int(sizes.max()), float(sizes.mean())

    def record_ids(self) -> list[str]:
        return [f"r{i}" for i in range(self.n_records)]

    def to_columnar(self) -> dict[Edge, tuple[np.ndarray, np.ndarray]]:
        """Columnar layout: per universe edge, (row indices, values)."""
        rows_per_edge: dict[int, list[int]] = {}
        vals_per_edge: dict[int, list[float]] = {}
        for row, (edge_indices, values) in enumerate(
            zip(self.record_edges, self.record_values)
        ):
            for edge_index, value in zip(edge_indices.tolist(), values.tolist()):
                rows_per_edge.setdefault(edge_index, []).append(row)
                vals_per_edge.setdefault(edge_index, []).append(value)
        return {
            self.universe[edge_index]: (
                np.asarray(rows, dtype=np.int64),
                np.asarray(vals_per_edge[edge_index], dtype=np.float64),
            )
            for edge_index, rows in rows_per_edge.items()
        }

    def to_records(self) -> Iterator[GraphRecord]:
        """Materialize records one by one (baseline-loading path)."""
        for i, (edge_indices, values) in enumerate(
            zip(self.record_edges, self.record_values)
        ):
            measures = {
                self.universe[edge_index]: value
                for edge_index, value in zip(edge_indices.tolist(), values.tolist())
            }
            yield GraphRecord(f"r{i}", measures)


def sample_edge_universe(
    network: nx.DiGraph, universe_size: int, seed: int = 0
) -> list[Edge]:
    """A connected edge universe of ``universe_size`` edges.

    Breadth-first edge collection from a random start gives a compact,
    well-connected sub-network — walks inside it stay long, as record
    generation requires.
    """
    rng = np.random.default_rng(seed)
    nodes = list(network.nodes())
    if not nodes:
        raise ValueError("network has no nodes")
    start = nodes[int(rng.integers(len(nodes)))]
    chosen: list[Edge] = []
    seen_edges: set[Edge] = set()
    frontier = [start]
    visited = {start}
    while frontier and len(chosen) < universe_size:
        next_frontier: list = []
        for node in frontier:
            for successor in network.successors(node):
                edge = (node, successor)
                if edge not in seen_edges:
                    seen_edges.add(edge)
                    chosen.append(edge)
                    if len(chosen) >= universe_size:
                        return chosen
                if successor not in visited:
                    visited.add(successor)
                    next_frontier.append(successor)
        frontier = next_frontier
    if len(chosen) < universe_size:
        raise ValueError(
            f"network too small: reached only {len(chosen)} of "
            f"{universe_size} requested universe edges"
        )
    return chosen


def generate_corpus(
    network: nx.DiGraph,
    n_records: int,
    min_edges: int = 35,
    max_edges: int = 100,
    universe_size: int = 1000,
    seed: int = 0,
    measure_low: float = 0.0,
    measure_high: float = 10.0,
) -> RecordCorpus:
    """Random-walk record corpus, the Section 7.1 generation pipeline."""
    if min_edges < 1 or max_edges < min_edges:
        raise ValueError("need 1 <= min_edges <= max_edges")
    rng = np.random.default_rng(seed)
    universe = sample_edge_universe(network, universe_size, seed=seed)
    edge_index: dict[Edge, int] = {e: i for i, e in enumerate(universe)}
    adjacency: dict[Hashable, list[tuple[Hashable, int]]] = {}
    for (u, v), i in edge_index.items():
        adjacency.setdefault(u, []).append((v, i))
    start_nodes = sorted(adjacency, key=repr)

    record_edges: list[np.ndarray] = []
    record_values: list[np.ndarray] = []
    walks: list[list[Hashable]] = []
    max_walks_per_record = 40
    for _ in range(n_records):
        # One record = the union of multiple random-walk processes, each
        # self-avoiding, run until the record reaches its target size (the
        # paper's "invoking multiple random walk processes").
        target = int(rng.integers(min_edges, max_edges + 1))
        edges: dict[int, None] = {}
        for _ in range(max_walks_per_record):
            if len(edges) >= target:
                break
            node = start_nodes[int(rng.integers(len(start_nodes)))]
            walk = [node]
            visited = {node}
            while len(edges) < target:
                options = [
                    (succ, i)
                    for succ, i in adjacency.get(node, [])
                    if succ not in visited
                ]
                if not options:
                    break
                succ, i = options[int(rng.integers(len(options)))]
                walk.append(succ)
                edges.setdefault(i, None)
                visited.add(succ)
                node = succ
            if len(walk) >= 2:
                walks.append(walk)
        if not edges:
            continue
        edge_indices = np.fromiter(edges, dtype=np.int64)
        values = rng.uniform(measure_low, measure_high, size=edge_indices.size)
        record_edges.append(edge_indices)
        record_values.append(values)
    return RecordCorpus(
        universe=universe,
        record_edges=record_edges,
        record_values=record_values,
        walks=walks,
    )


def generate_dense_corpus(
    network: nx.DiGraph,
    n_records: int,
    density: float,
    universe_size: int = 1000,
    seed: int = 0,
    measure_low: float = 0.0,
    measure_high: float = 10.0,
) -> RecordCorpus:
    """Density-controlled corpus: each record uses ``density × universe``
    random universe edges (Figures 3(c) and 4)."""
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    universe = sample_edge_universe(network, universe_size, seed=seed)
    edges_per_record = max(1, round(density * len(universe)))
    record_edges: list[np.ndarray] = []
    record_values: list[np.ndarray] = []
    for _ in range(n_records):
        chosen = rng.choice(len(universe), size=edges_per_record, replace=False)
        chosen.sort()
        values = rng.uniform(measure_low, measure_high, size=edges_per_record)
        record_edges.append(chosen.astype(np.int64))
        record_values.append(values)
    return RecordCorpus(
        universe=universe,
        record_edges=record_edges,
        record_values=record_values,
        walks=[],
    )

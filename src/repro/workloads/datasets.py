"""Named dataset configurations mirroring Table 2, at configurable scale.

The paper's NY dataset has 320M records of 35–100 edges over a 1000-edge
universe; GNU has 100M records of 45–100 edges.  A commodity single-CPU
Python environment reproduces the same *generation process and statistics
shape* at a scale factor: ``build_dataset("NY", scale=...)`` returns the
corpus plus a Table-2-style statistics dict, so the Table 2 benchmark can
print paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .networks import gnutella_network, ny_road_network
from .records import RecordCorpus, generate_corpus

__all__ = ["DatasetSpec", "DATASETS", "build_dataset", "corpus_statistics"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one of the paper's datasets."""

    name: str
    paper_n_records: int
    base_n_records: int  # at scale=1.0 in this reproduction
    min_edges: int
    max_edges: int
    universe_size: int
    network_seed: int

    def network(self, n_nodes: int = 4000) -> nx.DiGraph:
        if self.name == "NY":
            return ny_road_network(n_nodes, seed=self.network_seed)
        if self.name == "GNU":
            return gnutella_network(n_nodes, seed=self.network_seed)
        raise ValueError(f"unknown dataset {self.name!r}")


DATASETS: dict[str, DatasetSpec] = {
    "NY": DatasetSpec(
        name="NY",
        paper_n_records=320_000_000,
        base_n_records=20_000,
        min_edges=35,
        max_edges=100,
        universe_size=1000,
        network_seed=7,
    ),
    "GNU": DatasetSpec(
        name="GNU",
        paper_n_records=100_000_000,
        base_n_records=8_000,
        min_edges=45,
        max_edges=100,
        universe_size=1000,
        network_seed=11,
    ),
}


def build_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    n_records: int | None = None,
) -> RecordCorpus:
    """Generate the named corpus at ``scale`` (or an explicit record count)."""
    spec = DATASETS[name]
    count = n_records if n_records is not None else max(1, int(spec.base_n_records * scale))
    return generate_corpus(
        spec.network(),
        n_records=count,
        min_edges=spec.min_edges,
        max_edges=spec.max_edges,
        universe_size=spec.universe_size,
        seed=seed,
    )


def corpus_statistics(corpus: RecordCorpus) -> dict:
    """Table-2-style statistics for a generated corpus."""
    lo, hi, avg = corpus.edges_per_record()
    return {
        "n_records": corpus.n_records,
        "n_measures": corpus.n_measures(),
        "distinct_edge_ids": len(corpus.universe),
        "min_edges_per_record": lo,
        "max_edges_per_record": hi,
        "avg_edges_per_record": round(avg, 1),
    }

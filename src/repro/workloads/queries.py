"""Query workload generation (Section 7.1).

The paper's workloads are sets of 100 query graphs "generated either with
uniform or with Zipf distribution from the set of paths resulting from the
random walk processes".  We reproduce that: a pool of candidate paths is
carved out of the corpus walks, and queries sample from the pool either
uniformly or with Zipf(s) rank weights — the skewed case shares subpaths
across queries, which is what makes materialized views shine in Figure 8.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Hashable

import numpy as np

from ..core.query import GraphQuery, PathAggregationQuery
from .records import RecordCorpus

__all__ = [
    "path_pool",
    "sample_path_queries",
    "sample_dense_queries",
    "as_aggregate_queries",
    "queries_to_text",
    "queries_from_text",
]


def path_pool(
    corpus: RecordCorpus,
    n_edges: int,
    pool_size: int = 1000,
    seed: int = 0,
) -> list[tuple[Hashable, ...]]:
    """A pool of distinct ``n_edges``-hop node sequences cut from the
    corpus walks (the sampling frame for query generation)."""
    if not corpus.walks:
        raise ValueError("corpus has no walks to draw paths from")
    rng = np.random.default_rng(seed)
    # Prefer walks long enough for exact n_edges-hop paths; fall back to
    # the full walk set (clipping) only when none are long enough.
    eligible = [w for w in corpus.walks if len(w) - 1 >= n_edges]
    frame = eligible if eligible else corpus.walks
    pool: list[tuple[Hashable, ...]] = []
    seen: set[tuple[Hashable, ...]] = set()
    attempts = 0
    max_attempts = pool_size * 50
    while len(pool) < pool_size and attempts < max_attempts:
        attempts += 1
        walk = frame[int(rng.integers(len(frame)))]
        max_hops = len(walk) - 1
        if max_hops < 1:
            continue
        hops = min(n_edges, max_hops)
        start = int(rng.integers(max_hops - hops + 1))
        nodes = tuple(walk[start : start + hops + 1])
        if nodes not in seen:
            seen.add(nodes)
            pool.append(nodes)
    if not pool:
        raise ValueError("could not build a query path pool")
    return pool


def sample_path_queries(
    corpus: RecordCorpus,
    n_queries: int,
    n_edges: int,
    distribution: str = "uniform",
    zipf_s: float = 1.2,
    seed: int = 0,
    pool_size: int | None = None,
) -> list[GraphQuery]:
    """``n_queries`` path queries of ``n_edges`` hops from the walk pool.

    ``distribution`` is ``"uniform"`` or ``"zipf"``; the Zipf case weights
    pool entries by ``1/rank^s``, concentrating the workload on a few hot
    paths (and their shared subpaths).  Queries may repeat under Zipf, as
    in a real skewed workload.
    """
    rng = np.random.default_rng(seed)
    pool = path_pool(
        corpus,
        n_edges,
        pool_size=pool_size if pool_size is not None else max(4 * n_queries, 100),
        seed=seed,
    )
    if distribution == "uniform":
        weights = np.ones(len(pool))
    elif distribution == "zipf":
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, zipf_s)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    weights /= weights.sum()
    chosen = rng.choice(len(pool), size=n_queries, p=weights)
    return [GraphQuery.from_node_chain(*pool[i]) for i in chosen]


def sample_dense_queries(
    corpus: RecordCorpus,
    n_queries: int,
    density: float,
    seed: int = 0,
) -> list[GraphQuery]:
    """Queries for the density experiment: each query takes the edge set
    of a random record scaled to ``density × universe`` edges, so query
    density tracks record density as in Figure 3(c)."""
    rng = np.random.default_rng(seed)
    n_edges = max(1, round(density * len(corpus.universe)))
    out: list[GraphQuery] = []
    for _ in range(n_queries):
        row = int(rng.integers(corpus.n_records))
        edge_indices = corpus.record_edges[row]
        if edge_indices.size > n_edges:
            picked = rng.choice(edge_indices, size=n_edges, replace=False)
        else:
            picked = edge_indices
        out.append(GraphQuery([corpus.universe[i] for i in picked.tolist()]))
    return out


def as_aggregate_queries(
    queries: Sequence[GraphQuery], function: str = "sum"
) -> list[PathAggregationQuery]:
    """Wrap graph queries into path-aggregation queries (SUM by default,
    the function used throughout the paper's experiments)."""
    return [PathAggregationQuery(q, function) for q in queries]


def queries_to_text(queries: Sequence) -> str:
    """Render a query pool as a workload file: one canonical DSL
    statement per line (the form ``repro batch`` and
    :func:`queries_from_text` read back).

    Generated pools use string node labels, so every query has a text
    form; :class:`~repro.lang.UnparseError` propagates for anything that
    does not (e.g. integer-labelled ad-hoc queries).
    """
    from ..lang import unparse

    return "".join(unparse(q) + "\n" for q in queries)


def queries_from_text(text: str) -> list:
    """Parse a workload file back into query objects, preserving order.

    Inverse of :func:`queries_to_text` up to query equality:
    ``queries_from_text(queries_to_text(pool)) == pool`` for any pool of
    string-labelled queries.
    """
    from ..lang import parse_workload

    return [stmt.query for stmt in parse_workload(text)]

"""Synthetic base networks standing in for the paper's datasets.

Section 7.1 uses two public graphs as the *underlying networks* from which
graph records are synthesized by random walks:

* **NY** — the New York road network (DIMACS challenge 9): near-planar,
  low and uniform degree.  We substitute a 2-D grid with both-direction
  edges and a sprinkle of removed edges, which matches road networks'
  structural character (degree ≈ 2–4, long shortest paths).
* **GNU** — the Gnutella P2P snapshot (SNAP p2p-Gnutella04): directed,
  heavy-tailed out-degree.  We substitute a preferential-attachment style
  directed graph with the same character.

The downloads are unavailable offline; record generation (random walks +
random measures) is what actually shapes the experiments, and it operates
identically on these substitutes.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

__all__ = ["ny_road_network", "gnutella_network"]


def ny_road_network(n_nodes: int = 4000, seed: int = 7, removal_rate: float = 0.05) -> nx.DiGraph:
    """A road-network-like directed graph with about ``n_nodes`` nodes.

    A √n × √n grid, each adjacency in both directions, with a small random
    fraction of directed edges removed to break the perfect regularity of
    the lattice (road grids have dead ends and one-way streets).
    """
    if n_nodes < 4:
        raise ValueError("need at least 4 nodes")
    side = max(int(math.sqrt(n_nodes)), 2)
    rng = np.random.default_rng(seed)
    grid = nx.grid_2d_graph(side, side)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(side * side))

    def node_id(cell: tuple[int, int]) -> int:
        return cell[0] * side + cell[1]

    for u, v in grid.edges():
        for a, b in ((u, v), (v, u)):
            if rng.random() >= removal_rate:
                graph.add_edge(node_id(a), node_id(b))
    return graph


def gnutella_network(
    n_nodes: int = 4000, avg_out_degree: float = 3.5, seed: int = 11
) -> nx.DiGraph:
    """A P2P-overlay-like directed graph with heavy-tailed out-degree.

    Nodes attach preferentially to already-popular targets (rich-get-richer
    host discovery), giving the skewed in-degree distribution of Gnutella
    snapshots while keeping the graph sparse.
    """
    if n_nodes < 4:
        raise ValueError("need at least 4 nodes")
    rng = np.random.default_rng(seed)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n_nodes))
    # Attractiveness grows with in-degree; +1 smooths the cold start.
    in_degree = np.ones(n_nodes, dtype=np.float64)
    for source in range(n_nodes):
        n_links = max(1, int(rng.poisson(avg_out_degree)))
        # Restrict attachment to a window of known peers for locality.
        probabilities = in_degree / in_degree.sum()
        targets = rng.choice(n_nodes, size=min(n_links, n_nodes - 1), replace=False, p=probabilities)
        for target in targets:
            if target != source:
                graph.add_edge(source, int(target))
                in_degree[target] += 1.0
    return graph

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``load`` — convert a JSONL/CSV record file into a persisted relation
  directory (the on-disk column store);
* ``query`` — run a DSL query against a persisted relation;
* ``aggregate`` — run a DSL path-aggregation query;
* ``batch`` — serve a file of DSL queries concurrently (``--jobs``) with a
  shared bitmap-conjunction cache (``--cache-mb``);
* ``explain`` — show the rewrite plan a query would use without running it
  (``--analyze`` also executes it and attaches measured counters + trace);
* ``metrics`` — serve a workload and dump the metrics registry;
* ``serve`` — run the HTTP daemon (``--adaptive`` adds the background
  view maintainer tracking the observed workload);
* ``views`` — list a persisted relation's materialized views;
* ``stats`` — show a persisted relation's shape and footprint;
* ``demo`` — build a small synthetic corpus and run a sample session.

Examples::

    python -m repro load records.jsonl ./db --shards 4
    python -m repro query ./db "A -> D -> E" --shards 4 --jobs 4
    python -m repro aggregate ./db "SUM A -> D -> E"
    python -m repro batch ./db queries.txt --jobs 4 --cache-mb 64
    python -m repro explain ./db "A -> D -> E" --analyze
    python -m repro metrics ./db --queries queries.txt --jobs 4 --cache-mb 64
    python -m repro stats ./db
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path as FsPath

from .columnstore import relation_disk_usage
from .core import GraphAnalyticsEngine
from .errors import (
    AdmissionRejectedError,
    QueryCancelledError,
    QuerySyntaxError,
    QueryTimeoutError,
    ReproError,
    ShardExecutionError,
)
from .lang import (
    diagnose,
    format_workload,
    parse_aggregation,
    parse_query,
    parse_statement,
    parse_statement_ast,
    parse_workload,
    render_syntax_error,
)
from .exec import QueryExecutor
from .io import QuarantineReport, ingest_records, read_csv_triplets, read_jsonl

__all__ = ["main"]

# Exit codes live in repro.errors (shared with the HTTP daemon's error
# bodies); re-exported here for existing importers.
from .errors import EXIT_ADMISSION, EXIT_SHARD, EXIT_TIMEOUT, exit_code_for  # noqa: E402


def _load_engine(
    directory: FsPath, args: argparse.Namespace | None = None
) -> GraphAnalyticsEngine:
    shards = getattr(args, "shards", None) if args is not None else None
    return GraphAnalyticsEngine.load(directory, shards=shards)


def _executor_for(args: argparse.Namespace, engine: GraphAnalyticsEngine) -> QueryExecutor:
    admission = None
    max_inflight = getattr(args, "max_inflight", None)
    if max_inflight:
        from .resilience import AdmissionController

        admission = AdmissionController(max_inflight=max_inflight)
    # Process mode attaches workers to the database directory in place
    # when its saved geometry still matches (no --shards re-partition);
    # otherwise the executor spools a matching save to a temp dir.
    return QueryExecutor(
        engine,
        jobs=getattr(args, "jobs", 1),
        cache_mb=getattr(args, "cache_mb", 0),
        admission=admission,
        default_timeout=getattr(args, "timeout", None),
        partial_ok=getattr(args, "partial_ok", False),
        exec_mode=getattr(args, "exec_mode", None),
        workers=getattr(args, "workers", None),
        storage_dir=getattr(args, "database", None),
    )


def _print_degraded(result) -> None:
    """Warn on stderr when a partial_ok answer skipped shards."""
    report = getattr(result, "degraded", None)
    if report is not None:
        print(f"warning: {report.summary()}", file=sys.stderr)


def _warn_unknown_nodes(engine: GraphAnalyticsEngine, text: str) -> None:
    """Did-you-mean warnings for node labels absent from the engine's
    catalog.  Unknown labels are legal (the answer is just empty), so
    these are stderr warnings, never errors."""
    try:
        ast = parse_statement_ast(text)
    except QuerySyntaxError:  # pragma: no cover - caller already parsed
        return
    for diag in diagnose(ast, engine.catalog.nodes()):
        print(f"warning: {diag.message}", file=sys.stderr)


def _cmd_load(args: argparse.Namespace) -> int:
    source = FsPath(args.source)
    if args.format == "auto":
        fmt = "csv" if source.suffix.lower() == ".csv" else "jsonl"
    else:
        fmt = args.format
    reader = read_csv_triplets if fmt == "csv" else read_jsonl
    directory = FsPath(args.database)
    report = QuarantineReport()
    records = reader(source, policy=args.on_error, report=report)
    if args.resume:
        if GraphAnalyticsEngine.is_saved_engine(directory):
            engine = GraphAnalyticsEngine.load(directory, shards=args.shards)
        else:
            engine = GraphAnalyticsEngine(shards=args.shards or 1)
        loaded = engine.load_records_resumable(
            records, directory, batch_size=args.batch_size
        )
    else:
        engine = GraphAnalyticsEngine(shards=args.shards or 1)
        loaded = ingest_records(engine, records, jobs=args.shards)
        engine.save(directory)
    print(f"loaded {loaded} records "
          f"({engine.relation.n_element_columns} distinct elements) "
          f"into {directory}")
    if report:
        print(report.summary(), file=sys.stderr)
    if args.quarantine:
        FsPath(args.quarantine).write_text(report.to_json())
        print(f"quarantine report written to {args.quarantine}", file=sys.stderr)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _load_engine(FsPath(args.database), args)
    expr = parse_query(args.query)
    _warn_unknown_nodes(engine, args.query)
    with _executor_for(args, engine) as executor:
        result = executor.run_one(expr, fetch_measures=not args.ids_only)
    _print_degraded(result)
    print(f"{len(result)} matching records")
    limit = args.limit if args.limit else len(result)
    for i, record_id in enumerate(result.record_ids[:limit]):
        if args.ids_only:
            print(record_id)
        else:
            measures = {
                f"{u}->{v}": result.measures[(u, v)][i]
                for (u, v) in sorted(result.measures, key=repr)
                if not _is_nan(result.measures[(u, v)][i])
            }
            print(f"{record_id}: {measures}")
    if len(result) > limit:
        print(f"... ({len(result) - limit} more)")
    return 0


def _cmd_aggregate(args: argparse.Namespace) -> int:
    engine = _load_engine(FsPath(args.database), args)
    query = parse_aggregation(args.query)
    _warn_unknown_nodes(engine, args.query)
    with _executor_for(args, engine) as executor:
        result = executor.run_one(query)
    _print_degraded(result)
    print(f"{len(result)} matching records")
    limit = args.limit if args.limit else len(result)
    for path, values in result.path_values.items():
        print(f"path {path}:")
        for record_id, value in list(zip(result.record_ids, values))[:limit]:
            print(f"  {record_id}: {value:g}")
    return 0


def _parse_workload_line(line: str):
    """One DSL line: a path-aggregation when it leads with a registered
    aggregate function name, a graph query otherwise."""
    return parse_statement(line)


def _cmd_batch(args: argparse.Namespace) -> int:
    """Serve a file of DSL queries (one per line, ``#`` comments) through
    the concurrent executor and report throughput + cache efficiency.

    A malformed line fails with its 1-based line number and a caret
    pointing at the offending column."""
    import time

    statements = parse_workload(FsPath(args.queries).read_text())
    workload = [stmt.query for stmt in statements]
    engine = _load_engine(FsPath(args.database), args)
    engine.reset_stats()
    with _executor_for(args, engine) as executor:
        started = time.perf_counter()
        results = list(
            executor.serve(
                workload,
                batch_size=args.batch_size,
                fetch_measures=False,
                return_errors=True,
            )
        )
        elapsed = time.perf_counter() - started
    failed = 0
    for stmt, result in zip(statements, results):
        if isinstance(result, Exception):
            failed += 1
            print(f" ERROR  {stmt.text}  [{_describe_error(result)}]")
        else:
            _print_degraded(result)
            print(f"{len(result):6d}  {stmt.text}")
    stats = engine.stats
    rate = len(results) / elapsed if elapsed else float("inf")
    print(
        f"served {len(results)} queries in {elapsed:.3f}s "
        f"({rate:.0f} q/s, jobs={args.jobs}"
        + (f", {failed} failed" if failed else "")
        + ")",
        file=sys.stderr,
    )
    if executor.cache is not None:
        print(
            f"conjunction cache: {stats.cache_hits} hits / "
            f"{stats.conjunctions_requested()} requests "
            f"({100 * stats.cache_hit_rate():.0f}%), "
            f"{stats.cache_evictions} evictions, "
            f"{executor.cache.current_bytes() / 1e6:.2f} MB held",
            file=sys.stderr,
        )
    if failed:
        first = next(r for r in results if isinstance(r, Exception))
        return _exit_code_for(first)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .obs import explain

    engine = _load_engine(FsPath(args.database), args)
    query = _parse_workload_line(args.query)
    _warn_unknown_nodes(engine, args.query)
    if args.cache_mb:
        from .exec import BitmapCache

        engine.use_bitmap_cache(BitmapCache(int(args.cache_mb * (1 << 20))))
    try:
        print(explain(engine, query, analyze=args.analyze, fmt=args.format))
    except TypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry

    engine = _load_engine(FsPath(args.database), args)
    registry = MetricsRegistry()
    if args.queries:
        statements = parse_workload(FsPath(args.queries).read_text())
        workload = [stmt.query for stmt in statements]
        with QueryExecutor(
            engine, jobs=args.jobs, cache_mb=args.cache_mb, registry=registry
        ) as executor:
            for _ in executor.serve(workload, fetch_measures=False):
                pass
    else:
        engine.use_metrics(registry)
    dump = registry.to_json() if args.json else registry.render()
    if args.output:
        FsPath(args.output).write_text(registry.to_json() + "\n")
        print(f"metrics written to {args.output}", file=sys.stderr)
    print(dump)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .obs import MetricsRegistry
    from .resilience import AdmissionController
    from .serve import ReproServer, ServeConfig, TenantGate, TenantPolicy

    engine = _load_engine(FsPath(args.database), args)
    # Admission belongs to the daemon's tenant gate, not the executor —
    # the gate admits tenant-first so one tenant can't starve the rest.
    shared = None
    if args.max_inflight or args.rate:
        shared = AdmissionController(
            max_inflight=args.max_inflight,
            rate=args.rate,
            max_wait_s=args.max_wait,
        )
    policy = TenantPolicy(
        max_inflight=args.tenant_max_inflight,
        rate=args.tenant_rate,
        max_wait_s=args.max_wait,
    )
    args.max_inflight = None  # keep _executor_for from double-gating
    registry = MetricsRegistry()
    config = ServeConfig(
        host=args.host, port=args.port, default_timeout_s=args.timeout
    )

    async def run() -> int:
        with _executor_for(args, engine) as executor:
            executor.registry = registry
            engine.use_metrics(registry)
            maintainer = None
            if args.adaptive:
                from .adaptive import ViewMaintainer, WorkloadWindow

                maintainer = ViewMaintainer(
                    executor,
                    window=WorkloadWindow(args.adaptive_window),
                    budget=args.adaptive_budget,
                    interval_s=args.adaptive_interval,
                    min_support=args.adaptive_min_support,
                    hit_rate_floor=args.adaptive_floor,
                    registry=registry,
                )
            server = ReproServer(
                executor,
                registry=registry,
                gate=TenantGate(shared=shared, policy=policy),
                config=config,
                maintainer=maintainer,
            )
            await server.start()
            adaptive_note = (
                f", adaptive views every {args.adaptive_interval:g}s"
                if maintainer is not None
                else ""
            )
            print(
                f"repro serve: listening on http://{args.host}:{server.port} "
                f"({engine.n_records} records, {getattr(engine, 'n_shards', 1)} "
                f"shard(s), exec_mode={executor.exec_mode}{adaptive_note})"
            )
            try:
                await asyncio.Event().wait()
            except (KeyboardInterrupt, asyncio.CancelledError):
                pass
            finally:
                print("repro serve: draining...", file=sys.stderr)
                await server.stop()
            return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_views(args: argparse.Namespace) -> int:
    import json

    engine = _load_engine(FsPath(args.database))

    def edge_str(edge) -> str:
        return "-".join(str(node) for node in edge)

    graph = sorted(engine.graph_views.items())
    agg = sorted(engine.aggregate_views.items())
    if args.json:
        payload = {
            "graph_views": [
                {
                    "name": name,
                    "elements": [list(e) for e in sorted(view.elements, key=repr)],
                    "rows": engine.relation.view_bitmap(name).count(),
                }
                for name, view in graph
            ],
            "aggregate_views": [
                {
                    "name": name,
                    "function": view.function,
                    "path": [list(e) for e in view.path.edges()],
                }
                for name, view in agg
            ],
        }
        print(json.dumps(payload, indent=2, default=str))
        return 0
    print(f"graph views ({len(graph)}):")
    for name, view in graph:
        elems = ", ".join(
            edge_str(e) for e in sorted(view.elements, key=repr)
        )
        rows = engine.relation.view_bitmap(name).count()
        print(f"  {name:<14} {rows:>8} rows  {{{elems}}}")
    print(f"aggregate views ({len(agg)}):")
    for name, view in agg:
        path = " -> ".join(
            edge_str(e) for e in view.path.edges()
        )
        print(f"  {name:<14} {view.function:<6} {path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    directory = FsPath(args.database)
    engine = _load_engine(directory)
    relation = engine.relation
    print(f"records:            {relation.n_records}")
    print(f"element columns:    {relation.n_element_columns}")
    print(f"shards:             {len(relation.shard_relations())}")
    print(f"partitions:         {relation.n_partitions} "
          f"(width {relation.partition_width})")
    print(f"graph views:        {len(relation.graph_view_names())}")
    print(f"aggregate views:    {len(relation.aggregate_view_names())}")
    print(f"size (model):       {relation.disk_size_bytes() / 1e6:.2f} MB")
    print(f"size (on disk):     {relation_disk_usage(directory) / 1e6:.2f} MB")
    return 0


def _cmd_fmt(args: argparse.Namespace) -> int:
    """Canonicalize DSL query/workload files in place (``repro fmt``).

    Every statement is rewritten to its canonical spelling (the one
    EXPLAIN prints and the unparser emits); comments and blank lines are
    preserved.  ``--check`` reports files that would change without
    touching them (exit 1), for CI.  ``--stdout`` prints the formatted
    text instead of rewriting (single file only).
    """
    if args.stdout and len(args.files) != 1:
        print("error: --stdout takes exactly one file", file=sys.stderr)
        return 2
    changed: list[str] = []
    for name in args.files:
        path = FsPath(name)
        original = path.read_text()
        try:
            formatted = format_workload(original)
        except QuerySyntaxError as exc:
            print(f"{name}: {render_syntax_error(exc)}", file=sys.stderr)
            return 2
        if args.stdout:
            sys.stdout.write(formatted)
            return 0
        if formatted != original:
            changed.append(name)
            if not args.check:
                path.write_text(formatted)
                print(f"formatted {name}", file=sys.stderr)
    if args.check and changed:
        for name in changed:
            print(f"would reformat {name}")
        return 1
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .workloads import build_dataset, sample_path_queries

    corpus = build_dataset("NY", n_records=args.records, seed=7)
    engine = GraphAnalyticsEngine()
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
    queries = sample_path_queries(corpus, 5, 5, seed=3)
    print(f"demo corpus: {engine.n_records} records, "
          f"{engine.relation.n_element_columns} elements")
    for query in queries:
        result = engine.query(query, fetch_measures=False)
        print(f"  {len(result):5d} records contain "
              f"{' -> '.join(str(n) for n in sorted(query.nodes()))[:60]}")
    return 0


def _is_nan(value: float) -> bool:
    return value != value


def _describe_error(exc: Exception) -> str:
    """One-line human rendering of a serving failure."""
    if isinstance(exc, QueryTimeoutError):
        return f"timed out: {exc}"
    if isinstance(exc, QueryCancelledError):
        return "cancelled"
    if isinstance(exc, AdmissionRejectedError):
        hint = getattr(exc, "retry_after", None)
        extra = f" (retry after {hint:.2f}s)" if hint else ""
        return f"rejected by admission control{extra}"
    if isinstance(exc, ShardExecutionError):
        return f"shard failure: {exc}"
    return f"{type(exc).__name__}: {exc}"


_exit_code_for = exit_code_for


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph analytics on massive collections of small graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_load = sub.add_parser("load", help="ingest records into a database directory")
    p_load.add_argument("source", help="records file (.jsonl or .csv)")
    p_load.add_argument("database", help="output database directory")
    p_load.add_argument("--format", choices=["auto", "jsonl", "csv"], default="auto")
    p_load.add_argument(
        "--on-error", choices=["strict", "skip", "collect"], default="strict",
        help="bad input lines: abort (strict), drop silently (skip), or "
             "drop and report (collect)",
    )
    p_load.add_argument(
        "--quarantine", metavar="FILE", default=None,
        help="write the quarantine report as JSON to FILE",
    )
    p_load.add_argument(
        "--resume", action="store_true",
        help="batched, checkpointed load; re-run the same command after a "
             "crash to continue where it left off",
    )
    p_load.add_argument(
        "--batch-size", type=int, default=1000,
        help="records per checkpointed batch with --resume (default 1000)",
    )
    p_load.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the relation into N record-range shards "
             "(parallel ingest + shard-parallel serving; default 1)",
    )
    p_load.set_defaults(func=_cmd_load)

    def add_serving_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker threads for query evaluation (default 1)",
        )
        p.add_argument(
            "--cache-mb", type=float, default=0, metavar="MB",
            help="bitmap-conjunction cache budget in MB (0 = off)",
        )
        p.add_argument(
            "--shards", type=int, default=None, metavar="N",
            help="re-partition the loaded engine into N record-range "
                 "shards (default: keep the saved layout)",
        )
        p.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-query deadline; an overrunning query is cancelled at "
                 "the next operator boundary (exit code 3)",
        )
        p.add_argument(
            "--max-inflight", type=int, default=None, metavar="N",
            help="admit at most N concurrent queries; excess queries queue "
                 "briefly then are rejected (exit code 4)",
        )
        p.add_argument(
            "--partial-ok", action="store_true",
            help="on persistent shard failure return the healthy-shard "
                 "answer plus a skipped-range warning instead of failing",
        )
        p.add_argument(
            "--exec-mode", choices=("serial", "thread", "process"), default=None,
            help="how per-shard conjunctions run: serial in the calling "
                 "thread, thread pool, or process pool over mmap'd storage "
                 "(default: threads when --jobs > 1 on a sharded engine)",
        )
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="shard-level workers for --exec-mode thread/process "
                 "(default: --jobs)",
        )

    p_query = sub.add_parser("query", help="run a DSL graph query")
    p_query.add_argument("database")
    p_query.add_argument("query", help="e.g. \"A -> D -> E\" or \"{(C,H)} OR {(F,J)}\"")
    p_query.add_argument("--limit", type=int, default=20)
    p_query.add_argument("--ids-only", action="store_true")
    add_serving_flags(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_agg = sub.add_parser("aggregate", help="run a DSL path-aggregation query")
    p_agg.add_argument("database")
    p_agg.add_argument("query", help='e.g. "SUM A -> D -> E"')
    p_agg.add_argument("--limit", type=int, default=20)
    add_serving_flags(p_agg)
    p_agg.set_defaults(func=_cmd_aggregate)

    p_batch = sub.add_parser(
        "batch", help="serve a file of DSL queries concurrently"
    )
    p_batch.add_argument("database")
    p_batch.add_argument(
        "queries",
        help="text file: one DSL query per line (graph or aggregation); "
             "# comments and blank lines are skipped",
    )
    p_batch.add_argument(
        "--batch-size", type=int, default=64,
        help="queries per scheduling batch (default 64)",
    )
    add_serving_flags(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_explain = sub.add_parser(
        "explain", help="show a query's rewrite plan without running it"
    )
    p_explain.add_argument("database")
    p_explain.add_argument(
        "query", help='graph or aggregation DSL, e.g. "A -> D -> E"'
    )
    p_explain.add_argument(
        "--analyze", action="store_true",
        help="also execute the query and attach measured counters + trace",
    )
    p_explain.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="plan rendering (default text)",
    )
    p_explain.add_argument(
        "--cache-mb", type=float, default=0, metavar="MB",
        help="bitmap-conjunction cache budget for --analyze (0 = off)",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_metrics = sub.add_parser(
        "metrics", help="serve a workload and dump the metrics registry"
    )
    p_metrics.add_argument("database")
    p_metrics.add_argument(
        "--queries", metavar="FILE", default=None,
        help="DSL workload file to serve before dumping (one query per line)",
    )
    p_metrics.add_argument(
        "--json", action="store_true", help="dump as JSON instead of text"
    )
    p_metrics.add_argument(
        "--output", metavar="FILE", default=None,
        help="also write the JSON dump to FILE",
    )
    add_serving_flags(p_metrics)
    p_metrics.set_defaults(func=_cmd_metrics)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP daemon over a database directory"
    )
    p_serve.add_argument("database")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8750,
        help="listen port (0 = pick an ephemeral port; default 8750)",
    )
    p_serve.add_argument(
        "--rate", type=float, default=None, metavar="QPS",
        help="shared token-bucket admission rate (default unlimited)",
    )
    p_serve.add_argument(
        "--max-wait", type=float, default=0.0, metavar="SECONDS",
        help="bounded admission wait before rejecting (default 0)",
    )
    p_serve.add_argument(
        "--tenant-max-inflight", type=int, default=None, metavar="N",
        help="per-tenant concurrent-query cap (default unlimited)",
    )
    p_serve.add_argument(
        "--tenant-rate", type=float, default=None, metavar="QPS",
        help="per-tenant token-bucket rate (default unlimited)",
    )
    p_serve.add_argument(
        "--adaptive", action="store_true",
        help="run the background view maintainer: observe served queries, "
             "materialize/drop views to track the workload",
    )
    p_serve.add_argument(
        "--adaptive-interval", type=float, default=5.0, metavar="SECONDS",
        help="seconds between maintenance refreshes (default 5)",
    )
    p_serve.add_argument(
        "--adaptive-budget", type=int, default=8, metavar="N",
        help="max maintainer-managed graph views (default 8)",
    )
    p_serve.add_argument(
        "--adaptive-window", type=int, default=512, metavar="N",
        help="observed-workload window size in queries (default 512)",
    )
    p_serve.add_argument(
        "--adaptive-min-support", type=int, default=2, metavar="N",
        help="min windowed occurrences for a view candidate (default 2)",
    )
    p_serve.add_argument(
        "--adaptive-floor", type=float, default=0.05, metavar="RATE",
        help="drop a decayed view once its windowed hit rate sinks below "
             "this (default 0.05)",
    )
    add_serving_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_views = sub.add_parser(
        "views", help="list a database's materialized views"
    )
    p_views.add_argument("database")
    p_views.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_views.set_defaults(func=_cmd_views)

    p_stats = sub.add_parser("stats", help="show a database's shape and size")
    p_stats.add_argument("database")
    p_stats.set_defaults(func=_cmd_stats)

    p_fmt = sub.add_parser(
        "fmt", help="canonicalize DSL query/workload files in place"
    )
    p_fmt.add_argument(
        "files", nargs="+", metavar="FILE",
        help="workload files (one statement per line, # comments kept)",
    )
    p_fmt.add_argument(
        "--check", action="store_true",
        help="don't rewrite; exit 1 listing files that would change",
    )
    p_fmt.add_argument(
        "--stdout", action="store_true",
        help="print the formatted text instead of rewriting (one file)",
    )
    p_fmt.set_defaults(func=_cmd_fmt)

    p_demo = sub.add_parser("demo", help="run a synthetic demo session")
    p_demo.add_argument("--records", type=int, default=500)
    p_demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe early.
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (QueryTimeoutError, QueryCancelledError, AdmissionRejectedError,
            ShardExecutionError) as exc:
        # Resilience failures before the generic ReproError catch-all:
        # distinct exit codes so callers can branch on the failure class.
        print(f"error: {_describe_error(exc)}", file=sys.stderr)
        return _exit_code_for(exc)
    except QuerySyntaxError as exc:
        # Caret-annotated rendering: message, offending line, ^ column.
        print(f"error: {render_syntax_error(exc)}", file=sys.stderr)
        return 2
    except (ReproError, ValueError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

"""Serving resilience: deadlines, cancellation, admission, degraded mode.

The governance layer between the executor and the storage backend, built
before (and reused by) the planned multiprocessing worker pool and
network daemon:

* :class:`Deadline` / :class:`CancelToken` / :class:`QueryContext` — the
  per-query execution context, checked cooperatively at operator
  boundaries (:mod:`repro.core.engine.operators`) and executor batch
  loops; expiry raises :class:`~repro.errors.QueryTimeoutError`, a fired
  token raises :class:`~repro.errors.QueryCancelledError`;
* :class:`AdmissionController` — token-bucket + inflight/byte-budget gate
  in front of :class:`repro.exec.QueryExecutor`, rejecting with
  :class:`~repro.errors.AdmissionRejectedError` after a bounded wait;
  :func:`retry_with_backoff` is the matching client-side helper;
* :class:`ResiliencePolicy` — per-shard retry with exponential backoff, a
  per-shard :class:`CircuitBreaker` (keyed on the engine generation), and
  ``partial_ok`` degraded execution that returns healthy-shard-exact
  answers plus a :class:`DegradedReport` of skipped record ranges.

All failure paths publish ``resilience.*`` counters into an attached
:class:`repro.obs.MetricsRegistry` and annotate trace spans.
"""

from .admission import AdmissionController, AdmissionStats
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .context import (
    CancelToken,
    Deadline,
    DegradedReport,
    QueryContext,
    SkippedShard,
)
from .policy import ResiliencePolicy
from .retry import retry_with_backoff

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CancelToken",
    "CircuitBreaker",
    "CLOSED",
    "Deadline",
    "DegradedReport",
    "HALF_OPEN",
    "OPEN",
    "QueryContext",
    "ResiliencePolicy",
    "SkippedShard",
    "retry_with_backoff",
]

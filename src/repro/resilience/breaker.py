"""Per-shard circuit breaker: stop hammering a shard that keeps failing.

A persistently corrupt shard fails every query that touches it; with
retries enabled, each of those queries would burn ``attempts`` tries plus
backoff sleeps before giving up.  The breaker caps that: after
``failure_threshold`` consecutive failures it *opens* and further
attempts are refused instantly (:class:`~repro.errors.CircuitOpenError`)
until ``reset_after`` seconds pass, at which point it goes *half-open*
and lets exactly one probe through — success closes it, failure re-opens
it for another cooldown.

The resilience policy keys breakers on ``(shard, generation)`` where the
generation is the engine's state epoch: any data mutation (an append, a
reload, a reshard) replaces the breaker, so a repaired shard is retried
immediately instead of waiting out a cooldown that no longer applies.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state breaker, thread-safe.

    ``allow()`` answers "may I attempt now?" and atomically claims the
    half-open probe slot; callers must report the outcome via
    ``record_success()`` / ``record_failure()``.
    """

    def __init__(self, failure_threshold: int = 3, reset_after: float = 30.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after < 0:
            raise ValueError("reset_after must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._lock = threading.Lock()
        self._failures = 0
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_claimed = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._sync_state(time.monotonic())

    def _sync_state(self, now: float) -> str:
        """Advance OPEN -> HALF_OPEN when the cooldown elapsed (call under
        the lock)."""
        if self._state == OPEN and now - self._opened_at >= self.reset_after:
            self._state = HALF_OPEN
            self._probe_claimed = False
        return self._state

    def allow(self) -> bool:
        """Whether an attempt may run now.

        In HALF_OPEN only the first caller gets True (the probe); everyone
        else is refused until the probe reports its outcome.
        """
        with self._lock:
            state = self._sync_state(time.monotonic())
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_claimed:
                self._probe_claimed = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = CLOSED
            self._probe_claimed = False

    def record_failure(self) -> None:
        with self._lock:
            now = time.monotonic()
            state = self._sync_state(now)
            self._failures += 1
            if state == HALF_OPEN or self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = now
                self._probe_claimed = False

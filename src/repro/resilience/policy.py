"""The shard-execution resilience policy: retry, breaker, degraded mode.

This is the supervision layer the engine facade consults for every shard
task when one is installed (``engine.use_resilience(policy)``; the
:class:`~repro.exec.QueryExecutor` installs a default one).  For each
per-shard conjunction it:

1. consults the shard's **circuit breaker** — open means the shard is not
   attempted at all (:class:`~repro.errors.CircuitOpenError`);
2. runs the computation, **retrying with exponential backoff** up to
   ``attempts`` times on storage-level failures (never on deadline /
   cancellation, which must propagate immediately, and never past the
   query's remaining deadline);
3. on persistent failure, either raises a typed
   :class:`~repro.errors.ShardExecutionError` naming the shard and its
   record range, or — when the query opted into ``partial_ok`` — records
   the skipped range on the :class:`~repro.resilience.QueryContext` and
   lets the caller substitute an empty segment, producing an exact answer
   over the healthy shards plus a
   :class:`~repro.resilience.DegradedReport`.

Breakers are keyed on ``(shard, generation)`` with the engine epoch as
the generation: any mutation (append, reload, reshard) discards the old
breaker, so a repaired shard is probed immediately.

Every decision publishes a ``resilience.*`` counter when a metrics
registry is attached (``engine.use_metrics`` wires it automatically).
The same policy object defines the supervision semantics the planned
multiprocessing worker pool and network daemon will reuse.
"""

from __future__ import annotations

import threading
import time

from ..errors import (
    CircuitOpenError,
    ResilienceError,
    ShardExecutionError,
)
from .breaker import CircuitBreaker
from .context import QueryContext

__all__ = ["ResiliencePolicy"]


class ResiliencePolicy:
    """Retry/breaker/degraded-mode configuration for shard execution.

    Parameters
    ----------
    attempts:
        Total tries per shard task per query (1 = no retries).
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff between retries, in seconds.  Sleeps are
        capped by the query's remaining deadline.
    breaker_threshold / breaker_reset_after:
        Consecutive failures that open a shard's circuit breaker, and the
        cooldown before a half-open probe.
    partial_ok_default:
        Degraded-mode default for queries whose context does not say
        (contexts normally do; this covers bare ``engine.query`` calls
        with no context).
    registry:
        Optional :class:`repro.obs.MetricsRegistry` for ``resilience.*``
        counters; installed automatically by ``engine.use_metrics``.
    """

    def __init__(
        self,
        attempts: int = 3,
        backoff_base: float = 0.02,
        backoff_factor: float = 2.0,
        backoff_max: float = 0.5,
        breaker_threshold: int = 3,
        breaker_reset_after: float = 30.0,
        partial_ok_default: bool = False,
        registry=None,
        sleep=time.sleep,
    ):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_after = breaker_reset_after
        self.partial_ok_default = partial_ok_default
        self.registry = registry
        self._sleep = sleep
        self._lock = threading.Lock()
        # shard index -> (generation, breaker); replaced when the engine
        # epoch moves past the stored generation.
        self._breakers: dict[int, tuple[int, CircuitBreaker]] = {}

    # -- metrics -------------------------------------------------------------

    def _count(self, name: str, n: float = 1) -> None:
        registry = self.registry
        if registry is not None:
            registry.counter(name).inc(n)

    # -- breakers ------------------------------------------------------------

    def breaker_for(self, shard: int, generation: int) -> CircuitBreaker:
        """The shard's breaker at this generation (fresh when the
        generation moved — a mutation may have repaired the shard)."""
        with self._lock:
            held = self._breakers.get(shard)
            if held is not None and held[0] == generation:
                return held[1]
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                reset_after=self.breaker_reset_after,
            )
            self._breakers[shard] = (generation, breaker)
            return breaker

    def breaker_states(self) -> dict[int, str]:
        """Current breaker state per shard (for introspection/tests)."""
        with self._lock:
            return {shard: b.state for shard, (_, b) in self._breakers.items()}

    # -- supervised shard execution ------------------------------------------

    def _wants_partial(self, ctx: QueryContext | None) -> bool:
        return ctx.partial_ok if ctx is not None else self.partial_ok_default

    def _give_up(
        self,
        error: ShardExecutionError,
        ctx: QueryContext | None,
        shard: int,
        start: int,
        stop: int,
    ):
        """Terminal failure: degrade (returning None) or raise."""
        if self._wants_partial(ctx) and ctx is not None:
            ctx.record_skip(shard, start, stop, error)
            self._count("resilience.shards_skipped")
            return None
        raise error

    def run_shard(
        self,
        shard: int,
        start: int,
        stop: int,
        compute,
        ctx: QueryContext | None,
        generation: int,
    ):
        """Run one shard task under the policy.

        Returns ``compute()``'s bitmap, or **None** when the shard was
        skipped under ``partial_ok`` (the caller substitutes an all-zero
        segment and must not cache the merged result).  Deadline and
        cancellation errors always propagate unchanged.
        """
        breaker = self.breaker_for(shard, generation)
        if not breaker.allow():
            self._count("resilience.breaker_refusals")
            return self._give_up(
                CircuitOpenError(
                    f"shard {shard} circuit breaker is open "
                    f"(records [{start}:{stop}) unavailable)",
                    shard=shard,
                    start=start,
                    stop=stop,
                ),
                ctx,
                shard,
                start,
                stop,
            )
        delay = self.backoff_base
        last: Exception | None = None
        for attempt in range(self.attempts):
            if ctx is not None:
                ctx.check()
            try:
                result = compute()
            except ResilienceError:
                # Deadline/cancellation (or a nested typed failure): not a
                # storage fault — never retried, never charged to the breaker.
                raise
            except Exception as exc:
                last = exc
                breaker.record_failure()
                self._count("resilience.shard_failures")
                if attempt + 1 == self.attempts or not breaker.allow():
                    break
                self._count("resilience.shard_retries")
                pause = min(delay, self.backoff_max)
                if ctx is not None and ctx.deadline is not None:
                    remaining = ctx.deadline.remaining()
                    if remaining <= 0:
                        ctx.check()
                    pause = min(pause, remaining)
                if pause > 0:
                    self._sleep(pause)
                delay *= self.backoff_factor
            else:
                breaker.record_success()
                return result
        return self._give_up(
            ShardExecutionError(
                f"shard {shard} failed after {self.attempts} attempt(s): {last} "
                f"(records [{start}:{stop}) unavailable)",
                shard=shard,
                start=start,
                stop=stop,
            ),
            ctx,
            shard,
            start,
            stop,
        )

"""Retry helpers for transient failures (admission rejections, flaky IO).

:func:`retry_with_backoff` is the client-side half of admission control:
the controller sheds load with a typed rejection plus a ``retry_after``
hint, and this helper turns that into a polite exponential-backoff retry
loop.  It is also what a caller wraps around a whole query when transient
shard faults are expected but ``partial_ok`` answers are not acceptable.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import TypeVar

from ..errors import AdmissionRejectedError

__all__ = ["retry_with_backoff"]

T = TypeVar("T")


def retry_with_backoff(
    fn: Callable[[], T],
    attempts: int = 4,
    base_delay: float = 0.05,
    factor: float = 2.0,
    max_delay: float = 1.0,
    retry_on: tuple[type[BaseException], ...] = (AdmissionRejectedError,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` up to ``attempts`` times with exponential backoff.

    Only exceptions matching ``retry_on`` are retried; anything else (and
    the final failing attempt) propagates.  When the exception carries a
    ``retry_after`` hint (admission rejections do), the pause is at least
    that long.  ``sleep`` is injectable for tests.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = base_delay
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt + 1 == attempts:
                raise
            pause = min(delay, max_delay)
            hint = getattr(exc, "retry_after", None)
            if hint:
                pause = max(pause, float(hint))
            sleep(pause)
            delay *= factor
    raise AssertionError("unreachable")  # pragma: no cover

"""Per-query execution context: deadlines, cancellation, degraded-mode state.

A :class:`QueryContext` rides along with one query through the executor,
the engine facade, and the operator layer.  It carries three things:

* a :class:`Deadline` — cooperative wall-clock budget, checked at operator
  boundaries (every conjunction-fold step, every shard task, every measure
  gather), raising :class:`~repro.errors.QueryTimeoutError` when expired;
* a :class:`CancelToken` — external cancellation, checked at the same
  boundaries, raising :class:`~repro.errors.QueryCancelledError`; one
  token may be shared by a whole batch so a single ``cancel()`` stops
  every in-flight and queued query;
* the **degraded-mode ledger** — when ``partial_ok`` is set and a shard
  keeps failing, the resilience policy records the skipped record range
  here instead of failing the query; results carry the resulting
  :class:`DegradedReport` so callers always know exactly which records
  the answer does *not* cover.

Checks are cooperative on purpose: the word-level numpy kernels cannot be
interrupted mid-call, so a deadline of D seconds is honoured within D plus
one operator step (the acceptance bound is 2·D for realistic shard sizes).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import QueryCancelledError, QueryTimeoutError

__all__ = [
    "Deadline",
    "CancelToken",
    "QueryContext",
    "SkippedShard",
    "DegradedReport",
]


@dataclass(frozen=True)
class Deadline:
    """A monotonic-clock expiry for one query.

    Build with :meth:`after`; ``check()`` raises
    :class:`~repro.errors.QueryTimeoutError` once the budget is spent.
    """

    expires_at: float
    budget: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        if seconds <= 0:
            raise ValueError("deadline budget must be > 0 seconds")
        return cls(expires_at=time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Seconds left (clamped at 0.0)."""
        return max(self.expires_at - time.monotonic(), 0.0)

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        if self.expired():
            raise QueryTimeoutError(
                f"query deadline of {self.budget:g}s exceeded", budget=self.budget
            )


class CancelToken:
    """Thread-safe cooperative cancellation flag.

    One token may be shared across a batch: the executor checks it before
    starting each queued query and the operators check it between fold
    steps, so ``cancel()`` stops both queued and in-flight work at the
    next boundary.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        if self._event.is_set():
            raise QueryCancelledError("query cancelled")


@dataclass(frozen=True)
class SkippedShard:
    """One record-range shard a degraded query did not answer for."""

    shard: int
    start: int
    stop: int
    error: str

    @property
    def n_records(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class DegradedReport:
    """What a ``partial_ok`` answer is missing: the skipped record ranges.

    The answer is *exact* on every record outside these ranges (the
    differential suite asserts it equals the healthy-shard oracle); the
    ranges themselves contributed nothing.
    """

    skipped: tuple[SkippedShard, ...]

    @property
    def n_records_skipped(self) -> int:
        return sum(s.n_records for s in self.skipped)

    def skipped_ranges(self) -> list[tuple[int, int]]:
        """Global ``[start, stop)`` record ranges the answer omits."""
        return [(s.start, s.stop) for s in self.skipped]

    def summary(self) -> str:
        ranges = ", ".join(
            f"shard {s.shard} [{s.start}:{s.stop}) ({s.error})" for s in self.skipped
        )
        return (
            f"degraded answer: {self.n_records_skipped} records in "
            f"{len(self.skipped)} shard(s) skipped — {ranges}"
        )


@dataclass
class QueryContext:
    """Everything one query carries through the stack.

    ``deadline`` / ``token`` may be None (no budget / not cancellable).
    ``partial_ok`` opts the query into degraded-mode shard execution:
    persistent shard failures are recorded via :meth:`record_skip` instead
    of raised, and the result carries the :class:`DegradedReport`.
    """

    deadline: Deadline | None = None
    token: CancelToken | None = None
    partial_ok: bool = False
    _skipped: list[SkippedShard] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @classmethod
    def start(
        cls,
        timeout: float | None = None,
        token: CancelToken | None = None,
        partial_ok: bool = False,
    ) -> "QueryContext":
        """Fresh context with the clock starting now."""
        deadline = Deadline.after(timeout) if timeout else None
        return cls(deadline=deadline, token=token, partial_ok=partial_ok)

    def check(self) -> None:
        """Raise the typed error if cancelled or past the deadline.

        Cancellation wins when both fired: it is the caller's explicit
        decision, so reporting it is more actionable than the timeout.
        """
        if self.token is not None:
            self.token.check()
        if self.deadline is not None:
            self.deadline.check()

    # -- degraded-mode ledger -------------------------------------------------

    def record_skip(self, shard: int, start: int, stop: int, error: Exception) -> None:
        """Note that ``shard`` (global records ``[start, stop)``) was
        skipped; shard workers run concurrently, hence the lock."""
        entry = SkippedShard(shard=shard, start=start, stop=stop, error=str(error))
        with self._lock:
            self._skipped.append(entry)

    @property
    def skipped(self) -> tuple[SkippedShard, ...]:
        with self._lock:
            return tuple(self._skipped)

    @property
    def degraded(self) -> bool:
        with self._lock:
            return bool(self._skipped)

    def report(self) -> DegradedReport | None:
        """The degraded report, or None for a complete answer."""
        skipped = self.skipped
        if not skipped:
            return None
        return DegradedReport(skipped=tuple(sorted(skipped, key=lambda s: s.start)))

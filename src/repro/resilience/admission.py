"""Admission control: the gate in front of the query executor.

Production serving needs to shed load *before* work starts, not after it
has stalled every other query.  :class:`AdmissionController` combines the
three classic gates behind one blocking-with-bounded-wait ``admit()``:

* **concurrent-query cap** (``max_inflight``) — at most N queries execute
  at once; excess callers queue;
* **token bucket** (``rate`` / ``burst``) — sustained throughput is capped
  at ``rate`` admissions/second with bursts up to ``burst``;
* **byte budget** (``max_bytes``) — callers declare an estimated working
  set (the executor estimates one bitmap width per conjunction) and the
  summed estimate of in-flight queries stays under the budget.

A caller waits at most ``max_wait_s`` for all three gates to open; past
that the query is *rejected* with a typed
:class:`~repro.errors.AdmissionRejectedError` carrying a ``retry_after``
hint, which :func:`repro.resilience.retry_with_backoff` knows how to obey.
Rejection is deliberate back-pressure: a bounded queue plus a typed error
beats an unbounded queue plus a timeout storm.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from ..errors import AdmissionRejectedError

__all__ = ["AdmissionController", "AdmissionStats"]


@dataclass
class AdmissionStats:
    """Point-in-time counters of one :class:`AdmissionController`."""

    admitted: int = 0
    rejected: int = 0
    inflight: int = 0
    bytes_inflight: int = 0


class AdmissionController:
    """Token-bucket + inflight/byte-budget admission gate.

    Parameters
    ----------
    max_inflight:
        Maximum concurrently admitted queries (None = unlimited).
    rate:
        Sustained admissions per second for the token bucket (None = no
        rate limit).
    burst:
        Bucket capacity; defaults to ``max(rate, 1)`` so a idle bucket
        admits about one second of traffic instantly.
    max_wait_s:
        How long ``admit()`` may queue before rejecting (0 = reject
        immediately when a gate is closed).
    max_bytes:
        Budget for the summed byte estimates of in-flight queries
        (None = no byte gate).  A single query estimated above the whole
        budget is still admitted when it is alone — otherwise it could
        never run.
    """

    def __init__(
        self,
        max_inflight: int | None = None,
        rate: float | None = None,
        burst: float | None = None,
        max_wait_s: float = 0.0,
        max_bytes: int | None = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be > 0")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be > 0")
        self.max_inflight = max_inflight
        self.rate = rate
        self.burst = float(burst) if burst is not None else max(rate or 1.0, 1.0)
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        self.max_wait_s = max_wait_s
        self.max_bytes = max_bytes
        self._cond = threading.Condition()
        self._inflight = 0
        self._bytes_inflight = 0
        self._tokens = self.burst
        self._refilled_at = time.monotonic()
        self._admitted = 0
        self._rejected = 0

    # -- token bucket (call under lock) --------------------------------------

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        self._tokens = min(
            self.burst, self._tokens + (now - self._refilled_at) * self.rate
        )
        self._refilled_at = now

    def _token_wait(self, now: float) -> float:
        """Seconds until one token is available (0.0 = available now)."""
        if self.rate is None:
            return 0.0
        self._refill(now)
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate

    # -- gate ----------------------------------------------------------------

    def _gates_closed(self, nbytes: int, now: float) -> float | None:
        """Why admission must wait: seconds until the earliest possible
        retry, or None when every gate is open right now."""
        token_wait = self._token_wait(now)
        if token_wait > 0:
            return token_wait
        if self.max_inflight is not None and self._inflight >= self.max_inflight:
            return float("inf")  # opens when some query finishes
        if (
            self.max_bytes is not None
            and self._inflight > 0
            and self._bytes_inflight + nbytes > self.max_bytes
        ):
            return float("inf")
        return None

    def _acquire(self, nbytes: int) -> None:
        give_up_at = time.monotonic() + self.max_wait_s
        with self._cond:
            while True:
                now = time.monotonic()
                wait = self._gates_closed(nbytes, now)
                if wait is None:
                    if self.rate is not None:
                        self._tokens -= 1.0
                    self._inflight += 1
                    self._bytes_inflight += nbytes
                    self._admitted += 1
                    return
                budget = give_up_at - now
                # A finite wait longer than the remaining budget can never
                # succeed; an infinite one opens on a release notify, so it
                # is worth waiting out the budget.
                if budget <= 0 or (wait != float("inf") and wait > budget):
                    self._rejected += 1
                    hint = min(wait, 1.0) if wait != float("inf") else 0.1
                    raise AdmissionRejectedError(
                        "admission rejected: "
                        + (
                            "token bucket empty"
                            if wait != float("inf")
                            else f"{self._inflight} queries in flight, "
                            f"{self._bytes_inflight} bytes held"
                        )
                        + f" (waited up to {self.max_wait_s:g}s)",
                        retry_after=hint,
                    )
                # Condition.wait wakes on notify (a release) or timeout (a
                # token refill becoming due), whichever is sooner.
                self._cond.wait(timeout=min(wait, budget))

    def _release(self, nbytes: int) -> None:
        with self._cond:
            self._inflight -= 1
            self._bytes_inflight -= nbytes
            self._cond.notify_all()

    @contextmanager
    def admit(self, nbytes: int = 0) -> Iterator[None]:
        """Run one query inside the gate; raises
        :class:`~repro.errors.AdmissionRejectedError` when the gates stay
        closed past the bounded wait."""
        self._acquire(nbytes)
        try:
            yield
        finally:
            self._release(nbytes)

    def try_admit(self, nbytes: int = 0) -> bool:
        """Non-blocking probe: admit now or return False (never queues).
        The caller must :meth:`release` what it admitted."""
        with self._cond:
            if self._gates_closed(nbytes, time.monotonic()) is not None:
                self._rejected += 1
                return False
            if self.rate is not None:
                self._tokens -= 1.0
            self._inflight += 1
            self._bytes_inflight += nbytes
            self._admitted += 1
            return True

    def release(self, nbytes: int = 0) -> None:
        """Release a :meth:`try_admit` admission."""
        self._release(nbytes)

    @property
    def stats(self) -> AdmissionStats:
        with self._cond:
            return AdmissionStats(
                admitted=self._admitted,
                rejected=self._rejected,
                inflight=self._inflight,
                bytes_inflight=self._bytes_inflight,
            )

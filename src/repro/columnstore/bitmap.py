"""Packed bitmap columns.

The paper (Section 4.2) indexes every edge id with a bitmap column whose
*i*-th bit tells whether graph record *i* contains that edge.  Evaluating a
graph query then reduces to ANDing the bitmaps of the query's edges — no
joins.  This module provides the bitmap data type used for those columns and
for materialized graph views (Section 5.1.1), which are simply precomputed
bitmap conjunctions stored as additional columns.

Bits are packed 64 per word into a ``numpy.uint64`` array so that the
boolean algebra (AND / OR / AND NOT / NOT) and population counts run as
vectorized word-level operations, mirroring how a column store executes the
same calculations.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["Bitmap", "BitmapBuilder", "popcount_words"]

_WORD_BITS = 64
# Lookup table: popcount of every byte value, used to count set bits fast.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint64)
# numpy >= 2.0 exposes the hardware popcount instruction directly; keep the
# byte-LUT as the portable fallback (and as the reference for regression
# tests pinning the two paths to each other).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount_words(words: np.ndarray, force_lut: bool = False) -> int:
    """Total set bits across an unsigned integer array.

    The single popcount implementation behind :meth:`Bitmap.count` and
    :meth:`WahBitmap.count`: ``np.bitwise_count`` (hardware POPCNT) on
    numpy >= 2.0, the byte-LUT otherwise.  ``force_lut=True`` pins a call
    to the portable path so the parity regression test exercises both
    implementations regardless of the installed numpy.
    """
    if _HAS_BITWISE_COUNT and not force_lut:
        return int(np.bitwise_count(words).sum())
    return int(_POPCOUNT8[words.view(np.uint8)].sum())


def _words_needed(length: int) -> int:
    return (length + _WORD_BITS - 1) // _WORD_BITS


class Bitmap:
    """A fixed-length sequence of bits supporting boolean algebra.

    Instances are value objects: every operator returns a new ``Bitmap``.
    All operands of a binary operation must have the same ``length`` — the
    number of graph records in the relation — exactly as all bitmap columns
    of the master relation share one length.
    """

    __slots__ = ("_words", "_length", "_ckey")

    def __init__(self, length: int, words: np.ndarray | None = None):
        if length < 0:
            raise ValueError(f"bitmap length must be >= 0, got {length}")
        self._length = length
        self._ckey: tuple[int, bytes] | None = None
        n_words = _words_needed(length)
        if words is None:
            self._words = np.zeros(n_words, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (n_words,):
                raise ValueError("words array has wrong dtype or shape")
            self._words = words
            self._mask_tail()

    # -- construction ----------------------------------------------------

    @classmethod
    def zeros(cls, length: int) -> "Bitmap":
        """All-clear bitmap of ``length`` bits."""
        return cls(length)

    @classmethod
    def ones(cls, length: int) -> "Bitmap":
        """All-set bitmap of ``length`` bits."""
        bm = cls(length)
        bm._words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        bm._mask_tail()
        return bm

    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "Bitmap":
        """Bitmap with exactly the given bit positions set."""
        idx = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices, dtype=np.int64)
        bm = cls(length)
        if idx.size == 0:
            return bm
        if idx.min() < 0 or idx.max() >= length:
            raise IndexError("bit index out of range")
        words = idx // _WORD_BITS
        bits = np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64)
        np.bitwise_or.at(bm._words, words, bits)
        return bm

    @classmethod
    def from_bools(cls, flags: Iterable[bool]) -> "Bitmap":
        """Bitmap from an iterable of booleans (index ``i`` set iff truthy)."""
        arr = np.asarray(list(flags) if not isinstance(flags, np.ndarray) else flags, dtype=bool)
        bm = cls(len(arr))
        if arr.size:
            bm._words = np.packbits(arr, bitorder="little").view(np.uint8)
            padded = np.zeros(_words_needed(len(arr)) * 8, dtype=np.uint8)
            padded[: bm._words.size] = bm._words
            bm._words = padded.view(np.uint64)
        return bm

    @classmethod
    def from_packed(cls, length: int, words: np.ndarray) -> "Bitmap":
        """Wrap an already-packed word array without copying or masking.

        The zero-copy construction path: ``words`` must be ``uint64`` of
        exactly the packed size for ``length`` with every bit past
        ``length`` already clear — true for any array produced by
        :meth:`words` or persisted from one.  Unlike ``Bitmap(length,
        words)``, whose tail masking writes into the array, this never
        mutates ``words``, so a read-only view or an ``np.memmap`` opened
        with ``mmap_mode='r'`` can back a bitmap directly.
        """
        if length < 0:
            raise ValueError(f"bitmap length must be >= 0, got {length}")
        if words.dtype != np.uint64 or words.shape != (_words_needed(length),):
            raise ValueError("words array has wrong dtype or shape")
        tail = length % _WORD_BITS
        if tail and words.size and (int(words[-1]) >> tail):
            raise ValueError("packed words have bits set past the bitmap length")
        bm = cls.__new__(cls)
        bm._length = length
        bm._ckey = None
        bm._words = words
        return bm

    # -- internals --------------------------------------------------------

    def _mask_tail(self) -> None:
        """Clear bits beyond ``length`` in the final word."""
        tail = self._length % _WORD_BITS
        if tail and self._words.size:
            mask = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
            self._words[-1] &= mask

    def _check_same_length(self, other: "Bitmap") -> None:
        if self._length != other._length:
            raise ValueError(
                f"bitmap length mismatch: {self._length} vs {other._length}"
            )

    # -- basic protocol ----------------------------------------------------

    @property
    def length(self) -> int:
        """Number of addressable bits (number of records in the relation)."""
        return self._length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> bool:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("bit index out of range")
        word, bit = divmod(index, _WORD_BITS)
        return bool((self._words[word] >> np.uint64(bit)) & np.uint64(1))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._length == other._length and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        return hash(self.content_key())

    def content_key(self) -> tuple[int, bytes]:
        """Cheap content identity: ``(length, digest of the packed words)``.

        Two bitmaps compare equal iff their content keys are equal (modulo
        the astronomically unlikely digest collision), so caches can dedupe
        stored bitmaps without holding the words themselves.  Computed once
        and memoized — bitmaps are value objects, never mutated after
        construction.
        """
        key = self._ckey
        if key is None:
            digest = hashlib.blake2b(
                self._words.tobytes(), digest_size=16, salt=b"bitmap"
            ).digest()
            key = (self._length, digest)
            self._ckey = key
        return key

    def __repr__(self) -> str:
        shown = list(self.iter_indices())
        if len(shown) > 8:
            inner = ", ".join(map(str, shown[:8])) + ", ..."
        else:
            inner = ", ".join(map(str, shown))
        return f"Bitmap(length={self._length}, set=[{inner}])"

    # -- boolean algebra ---------------------------------------------------

    def __and__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_length(other)
        return Bitmap(self._length, self._words & other._words)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_length(other)
        return Bitmap(self._length, self._words | other._words)

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        self._check_same_length(other)
        return Bitmap(self._length, self._words ^ other._words)

    def __sub__(self, other: "Bitmap") -> "Bitmap":
        """AND NOT — the paper's ``[Gq1 AND NOT Gq2]`` set difference."""
        self._check_same_length(other)
        return Bitmap(self._length, self._words & ~other._words)

    def __invert__(self) -> "Bitmap":
        return Bitmap(self._length, ~self._words)

    @staticmethod
    def and_all(bitmaps: Iterable["Bitmap"]) -> "Bitmap":
        """Conjunction of one or more bitmaps (``bitmap(B)`` in the paper).

        Raises ``ValueError`` on an empty iterable: the conjunction of zero
        structural conditions is undefined for a query.
        """
        it = iter(bitmaps)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("and_all() requires at least one bitmap") from None
        acc = first._words.copy()
        length = first._length
        for bm in it:
            if bm._length != length:
                raise ValueError("bitmap length mismatch in and_all()")
            acc &= bm._words
        return Bitmap(length, acc)

    @staticmethod
    def or_all(bitmaps: Iterable["Bitmap"]) -> "Bitmap":
        """Disjunction of one or more bitmaps."""
        it = iter(bitmaps)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("or_all() requires at least one bitmap") from None
        acc = first._words.copy()
        length = first._length
        for bm in it:
            if bm._length != length:
                raise ValueError("bitmap length mismatch in or_all()")
            acc |= bm._words
        return Bitmap(length, acc)

    # -- queries -----------------------------------------------------------

    def count(self) -> int:
        """Number of set bits (cardinality of the answer set).

        Delegates to :func:`popcount_words` — ``np.bitwise_count``
        (hardware POPCNT) on numpy >= 2.0, byte-LUT fallback otherwise;
        both paths are pinned to each other by a regression test.
        """
        return popcount_words(self._words)

    def _count_lut(self) -> int:
        """Portable byte-LUT popcount (the numpy < 2.0 path)."""
        return popcount_words(self._words, force_lut=True)

    def any(self) -> bool:
        """True iff at least one bit is set."""
        return bool(self._words.any())

    def all(self) -> bool:
        """True iff every bit in range is set."""
        return self.count() == self._length

    def to_indices(self) -> np.ndarray:
        """Positions of set bits, ascending, as an int64 array."""
        if self._length == 0:
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return np.nonzero(bits[: self._length])[0].astype(np.int64)

    def to_bools(self) -> np.ndarray:
        """Dense boolean array of length ``length``."""
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self._length].astype(bool)

    def iter_indices(self) -> Iterator[int]:
        """Iterate positions of set bits in ascending order."""
        return iter(self.to_indices().tolist())

    def isdisjoint(self, other: "Bitmap") -> bool:
        self._check_same_length(other)
        return not bool((self._words & other._words).any())

    def issubset(self, other: "Bitmap") -> bool:
        """True iff every set bit of self is also set in other."""
        self._check_same_length(other)
        return not bool((self._words & ~other._words).any())

    # -- mutation-free derivation -------------------------------------------

    def set(self, index: int) -> "Bitmap":
        """Return a copy with ``index`` set."""
        if not 0 <= index < self._length:
            raise IndexError("bit index out of range")
        words = self._words.copy()
        word, bit = divmod(index, _WORD_BITS)
        words[word] |= np.uint64(1) << np.uint64(bit)
        return Bitmap(self._length, words)

    def clear(self, index: int) -> "Bitmap":
        """Return a copy with ``index`` cleared."""
        if not 0 <= index < self._length:
            raise IndexError("bit index out of range")
        words = self._words.copy()
        word, bit = divmod(index, _WORD_BITS)
        words[word] &= ~(np.uint64(1) << np.uint64(bit))
        return Bitmap(self._length, words)

    def extended(self, flags: Iterable[bool]) -> "Bitmap":
        """Return a copy with the given bits appended at the end.

        Used for incremental view maintenance: when records are appended
        to the relation, each view bitmap grows by one (pre-computed) bit
        per new record.
        """
        flags = list(flags)
        if not flags:
            return self
        combined = np.concatenate([self.to_bools(), np.asarray(flags, dtype=bool)])
        return Bitmap.from_bools(combined)

    def slice(self, start: int, stop: int) -> "Bitmap":
        """Bits ``[start, stop)`` as a new bitmap (horizontal partitioning:
        a record-range shard's segment of a relation-wide bitmap).

        Works on the packed words directly.  A slice starting on a word
        boundary and ending on one (or at the bitmap's end) shares the
        packed storage as a read-only view — zero copies; any other slice
        shifts word pairs, still 64x less data movement than unpacking to
        booleans.
        """
        if not 0 <= start <= stop <= self._length:
            raise IndexError(
                f"slice [{start}, {stop}) out of range for length {self._length}"
            )
        n = stop - start
        if n == 0:
            return Bitmap.zeros(0)
        word0, bit = divmod(start, _WORD_BITS)
        n_out = _words_needed(n)
        if bit == 0:
            src = self._words[word0 : word0 + n_out]
            if stop == self._length or stop % _WORD_BITS == 0:
                # Both ends word-aligned (the source tail is already
                # masked): share the words, no copy at all.
                view = src.view()
                view.setflags(write=False)
                return Bitmap.from_packed(n, view)
            return Bitmap(n, src.copy())
        # Unaligned start: out[i] = (w[i] >> bit) | (w[i+1] << 64-bit).
        # ``bit`` is in [1, 63], so both shift amounts stay in range
        # (numpy's uint64 shift by 64 is undefined).
        ext = np.zeros(n_out + 1, dtype=np.uint64)
        avail = min(self._words.size - word0, n_out + 1)
        ext[:avail] = self._words[word0 : word0 + avail]
        out = (ext[:n_out] >> np.uint64(bit)) | (
            ext[1 : n_out + 1] << np.uint64(_WORD_BITS - bit)
        )
        return Bitmap(n, out)

    @staticmethod
    def concat(bitmaps: Iterable["Bitmap"]) -> "Bitmap":
        """Order-preserving concatenation of bitmap segments.

        The shard-merge combiner: record-range shards evaluate a conjunction
        over their own bit segments and the global answer is the segments
        joined back in shard order — bit *i* of the result is bit
        ``i - start_of(shard)`` of that shard's segment.  ``concat`` of the
        per-shard slices of a bitmap reproduces the original exactly.

        Each part is OR-merged into the output words in place: word-aligned
        offsets copy words verbatim, unaligned ones split every word into a
        low part (``<< bit``) and a carry into the next word (``>> 64-bit``)
        — no boolean unpack/repack round trip.
        """
        parts = list(bitmaps)
        if not parts:
            return Bitmap.zeros(0)
        if len(parts) == 1:
            return parts[0]
        total = sum(p._length for p in parts)
        out = np.zeros(_words_needed(total), dtype=np.uint64)
        offset = 0
        for p in parts:
            if p._length == 0:
                continue
            word0, bit = divmod(offset, _WORD_BITS)
            pw = p._words
            if bit == 0:
                out[word0 : word0 + pw.size] |= pw
            else:
                out[word0 : word0 + pw.size] |= pw << np.uint64(bit)
                # Carry bits spilling into the following word.  The final
                # carry element is provably zero whenever it would land
                # past the output (the part's masked tail plus the offset
                # fits the last word), so truncating it is lossless.
                carry = pw >> np.uint64(_WORD_BITS - bit)
                stop = min(word0 + 1 + pw.size, out.size)
                out[word0 + 1 : stop] |= carry[: stop - word0 - 1]
            offset += p._length
        return Bitmap(total, out)

    def resized(self, new_length: int) -> "Bitmap":
        """Return a copy truncated or zero-extended to ``new_length`` bits."""
        new_words = np.zeros(_words_needed(new_length), dtype=np.uint64)
        n = min(new_words.size, self._words.size)
        new_words[:n] = self._words[:n]
        return Bitmap(new_length, new_words)

    def nbytes(self) -> int:
        """Storage footprint in bytes of the packed representation."""
        return int(self._words.nbytes)

    def words(self) -> np.ndarray:
        """Read-only view of the packed uint64 words (for persistence)."""
        view = self._words.view()
        view.setflags(write=False)
        return view


class BitmapBuilder:
    """Incrementally build a bitmap while records are appended.

    The master relation appends one row per graph record; each edge bitmap
    gets one new bit.  The builder amortizes growth and finalizes into an
    immutable :class:`Bitmap`.
    """

    def __init__(self) -> None:
        self._flags: list[bool] = []

    def append(self, flag: bool) -> None:
        """Append one bit (True iff the new record contains the edge)."""
        self._flags.append(bool(flag))

    def extend(self, flags: Iterable[bool]) -> None:
        self._flags.extend(bool(f) for f in flags)

    def __len__(self) -> int:
        return len(self._flags)

    def build(self) -> Bitmap:
        """Finalize into an immutable :class:`Bitmap`."""
        return Bitmap.from_bools(self._flags)

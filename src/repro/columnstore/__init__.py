"""Column-oriented storage substrate (the paper's MonetDB substitute).

Packed bitmaps, NULL-masked measure columns, the vertically partitioned
master relation, I/O cost accounting in the paper's cost-model units, and
``.npy``-per-column persistence.
"""

from .bitmap import Bitmap, BitmapBuilder
from .column import MeasureColumn, MeasureColumnBuilder
from .iostats import IOStats, IOStatsCollector
from .persistence import load_relation, relation_disk_usage, save_relation
from .table import MasterRelation
from .wah import WahBitmap

__all__ = [
    "Bitmap",
    "BitmapBuilder",
    "MeasureColumn",
    "MeasureColumnBuilder",
    "IOStats",
    "IOStatsCollector",
    "MasterRelation",
    "WahBitmap",
    "save_relation",
    "load_relation",
    "relation_disk_usage",
]

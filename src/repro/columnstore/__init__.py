"""Column-oriented storage substrate (the paper's MonetDB substitute).

Packed bitmaps, NULL-masked measure columns, the vertically partitioned
master relation, horizontal record-range sharding behind the
:class:`StorageBackend` seam, I/O cost accounting in the paper's
cost-model units, and ``.npy``-per-column persistence (plain and
per-shard layouts).
"""

from .backend import StorageBackend
from .bitmap import Bitmap, BitmapBuilder, popcount_words
from .column import MeasureColumn, MeasureColumnBuilder
from .iostats import IOStats, IOStatsCollector
from .persistence import (
    RelationBitmapReader,
    load_relation,
    relation_disk_usage,
    save_relation,
)
from .sharded import (
    BitmapAttachment,
    ShardedTable,
    is_sharded_dir,
    load_sharded,
    save_sharded,
    storage_generation,
)
from .table import MasterRelation
from .wah import WahBitmap

__all__ = [
    "Bitmap",
    "BitmapBuilder",
    "MeasureColumn",
    "MeasureColumnBuilder",
    "IOStats",
    "IOStatsCollector",
    "MasterRelation",
    "ShardedTable",
    "StorageBackend",
    "WahBitmap",
    "popcount_words",
    "save_relation",
    "load_relation",
    "relation_disk_usage",
    "RelationBitmapReader",
    "save_sharded",
    "load_sharded",
    "is_sharded_dir",
    "BitmapAttachment",
    "storage_generation",
]

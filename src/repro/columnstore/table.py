"""The master relation ``R(recid, m1..mn, b1..bn, views…)``.

Section 4.1's storage abstraction: one relational table whose rows are
graph records and whose columns are, per distinct structural element *i*,

* a measure column ``m_i`` (NULL when the record lacks element *i*), and
* a bitmap column ``b_i`` marking the records that contain element *i*.

Materialized graph views add bitmap columns ``bv_j`` and aggregate graph
views add column pairs ``(mp_l, bp_l)`` (Section 5.1.3).

Physically each measure column is sparse (values for the records containing
the element plus a validity bitmap) so database size is governed by the
number of recorded measures, not ``n_records × n_columns`` — matching the
paper's observation that the column store's footprint is independent of
record density (Figure 4).

Per Section 6.1 the relation is **vertically partitioned** into
sub-relations of at most ``partition_width`` element columns; a query whose
elements span several sub-relations must re-join them on ``recid``, which
this class simulates faithfully (sorted recid-set intersection per extra
partition) so the Figure 5 degradation is reproduced.

Column accesses are reported to an :class:`~repro.columnstore.iostats.IOStatsCollector`
— the unit of the paper's cost model.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from .bitmap import Bitmap
from .column import MeasureColumn
from .iostats import IOStatsCollector

__all__ = ["MasterRelation"]


class MasterRelation:
    """Columnar storage for a collection of graph records."""

    def __init__(
        self,
        partition_width: int = 1000,
        collector: IOStatsCollector | None = None,
    ):
        if partition_width < 1:
            raise ValueError("partition_width must be >= 1")
        self.partition_width = partition_width
        self.collector = collector if collector is not None else IOStatsCollector()
        self._n_records = 0
        # Per element column id: parallel lists of (row index, value) pairs
        # accumulated during load, finalized lazily into MeasureColumns.
        self._pending_rows: dict[int, list[int]] = {}
        self._pending_vals: dict[int, list[float]] = {}
        self._columns: dict[int, MeasureColumn] = {}
        self._graph_views: dict[str, Bitmap] = {}
        self._aggregate_views: dict[str, MeasureColumn] = {}
        # Views the persistence layer refused to load (name, reason) —
        # populated by load_relation when a view file fails verification.
        self.dropped_views: list[tuple[str, str]] = []
        # Application metadata persisted inside the manifest (committed in
        # the same atomic swap as the columns); None until loaded/saved.
        self.app_meta: dict | None = None

    # -- loading -------------------------------------------------------------

    def append_row(self, cells: Mapping[int, float]) -> int:
        """Append one record row; ``cells`` maps element id → measure.

        Returns the row index (position in every column / bitmap).
        """
        if not cells:
            raise ValueError("a record row must have at least one measure")
        row = self._n_records
        for edge_id, value in cells.items():
            if edge_id < 0:
                raise ValueError("element ids must be non-negative")
            self._pending_rows.setdefault(edge_id, []).append(row)
            self._pending_vals.setdefault(edge_id, []).append(float(value))
            self._columns.pop(edge_id, None)
        self._n_records += 1
        return row

    def append_rows(self, rows: Iterable[Mapping[int, float]]) -> list[int]:
        return [self.append_row(r) for r in rows]

    def load_sparse_column(
        self, edge_id: int, row_indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Bulk-load one element column from parallel (row, value) arrays.

        Fast path used by the workload generators; rows must not exceed the
        current record count set via :meth:`set_record_count`.
        """
        rows = np.asarray(row_indices, dtype=np.int64)
        vals = np.asarray(values, dtype=np.float64)
        if rows.shape != vals.shape:
            raise ValueError("row/value arrays must be parallel")
        if rows.size and (rows.min() < 0 or rows.max() >= self._n_records):
            raise IndexError("row index out of range; call set_record_count first")
        self._pending_rows.setdefault(edge_id, []).extend(rows.tolist())
        self._pending_vals.setdefault(edge_id, []).extend(vals.tolist())
        self._columns.pop(edge_id, None)

    def set_record_count(self, n_records: int) -> None:
        """Declare the number of rows before sparse-column bulk loading."""
        if n_records < self._n_records:
            raise ValueError("cannot shrink the relation")
        self._n_records = n_records
        self._columns.clear()

    # -- geometry ---------------------------------------------------------------

    @property
    def n_records(self) -> int:
        return self._n_records

    def shard_relations(self) -> list["MasterRelation"]:
        """Record-range shards (the :class:`StorageBackend` seam): a plain
        relation is its own single shard covering every record."""
        return [self]

    def shard_starts(self) -> list[int]:
        """Global row offset of each shard; ``[0]`` for a single relation."""
        return [0]

    def element_ids(self) -> list[int]:
        """All element column ids, ascending."""
        ids = set(self._pending_rows) | set(self._columns)
        return sorted(ids)

    @property
    def n_element_columns(self) -> int:
        return len(set(self._pending_rows) | set(self._columns))

    def partition_of(self, edge_id: int) -> int:
        """Index of the sub-relation holding element ``edge_id`` (§6.1)."""
        return edge_id // self.partition_width

    @property
    def n_partitions(self) -> int:
        ids = self.element_ids()
        if not ids:
            return 0
        return self.partition_of(max(ids)) + 1

    def partitions_for(self, edge_ids: Iterable[int]) -> set[int]:
        return {self.partition_of(i) for i in edge_ids}

    # -- column access -------------------------------------------------------------

    def _materialize_column(self, edge_id: int) -> MeasureColumn:
        column = self._columns.get(edge_id)
        # A cached column is only valid while the relation hasn't grown:
        # appending a record that lacks this element leaves the cached
        # entry untouched but one bit short, so length-check rather than
        # trusting presence.
        if column is not None and len(column) == self._n_records:
            return column
        rows = self._pending_rows.get(edge_id)
        if rows is None:
            raise KeyError(f"no column for element id {edge_id}")
        values = np.full(self._n_records, np.nan)
        row_arr = np.asarray(rows, dtype=np.int64)
        values[row_arr] = np.asarray(self._pending_vals[edge_id], dtype=np.float64)
        validity = Bitmap.from_indices(self._n_records, row_arr)
        column = MeasureColumn(values, validity)
        self._columns[edge_id] = column
        return column

    def has_element(self, edge_id: int) -> bool:
        return edge_id in self._pending_rows or edge_id in self._columns

    def bitmap(self, edge_id: int) -> Bitmap:
        """Fetch bitmap column ``b_i`` (counted as one bitmap fetch)."""
        column = self._materialize_column(edge_id)
        bitmap = column.validity
        self.collector.record_bitmap_fetch(is_view=False, nbytes=bitmap.nbytes())
        return bitmap

    def measures(self, edge_id: int, rows: np.ndarray | None = None) -> np.ndarray:
        """Fetch measure column ``m_i`` (counted as one measure fetch).

        With ``rows`` given, gathers only those positions (NaN = NULL);
        otherwise returns the full column.
        """
        column = self._materialize_column(edge_id)
        if rows is None:
            out = column.values()
            self.collector.record_measure_fetch(len(out))
            return out
        out = column.take(rows)
        self.collector.record_measure_fetch(int(out.size))
        return out

    def simulate_partition_join(self, edge_ids: Iterable[int], rows: np.ndarray) -> None:
        """Model the recid re-join when a query spans sub-relations (§6.1).

        Performs one sorted intersection of the matching recid set per
        partition beyond the first, so both wall-clock time and the
        ``partitions_joined`` counter reflect the spanning cost that
        Figure 5 measures.
        """
        partitions = self.partitions_for(edge_ids)
        self.collector.record_partition_join(len(partitions))
        for _ in range(max(len(partitions) - 1, 0)):
            np.intersect1d(rows, rows, assume_unique=True)

    # -- views -----------------------------------------------------------------------

    def add_graph_view(self, name: str, bitmap: Bitmap) -> None:
        """Store a graph view: one precomputed bitmap column (§5.1.1)."""
        if bitmap.length != self._n_records:
            raise ValueError("view bitmap length must equal the record count")
        if name in self._graph_views:
            raise ValueError(f"graph view {name!r} already exists")
        self._graph_views[name] = bitmap

    def graph_view_names(self) -> list[str]:
        return sorted(self._graph_views)

    def has_graph_view(self, name: str) -> bool:
        return name in self._graph_views

    def drop_graph_view(self, name: str) -> None:
        """Remove one graph view's bitmap column (missing names are a no-op,
        so degraded loads can be re-pruned idempotently)."""
        self._graph_views.pop(name, None)

    def _check_fresh(self, length: int, name: str) -> None:
        if length != self._n_records:
            raise RuntimeError(
                f"view {name!r} is stale ({length} bits for "
                f"{self._n_records} records); extend it after appending "
                "records (see extend_graph_view / extend_aggregate_view)"
            )

    def view_bitmap(self, name: str) -> Bitmap:
        """Fetch a graph-view bitmap ``bv_j`` (counted as a view fetch)."""
        bitmap = self._graph_views[name]
        self._check_fresh(bitmap.length, name)
        self.collector.record_bitmap_fetch(is_view=True, nbytes=bitmap.nbytes())
        return bitmap

    def extend_graph_view(self, name: str, flags) -> None:
        """Incremental maintenance: append one precomputed bit per newly
        appended record to a graph view's bitmap."""
        self._graph_views[name] = self._graph_views[name].extended(flags)

    def extend_aggregate_view(self, name: str, cells) -> None:
        """Incremental maintenance: append one precomputed aggregate (or
        NULL) per newly appended record to an aggregate view's column."""
        self._aggregate_views[name] = self._aggregate_views[name].extended(cells)

    def add_aggregate_view(self, name: str, column: MeasureColumn) -> None:
        """Store an aggregate graph view ``(mp_l, bp_l)`` (§5.1.2).

        The column's validity bitmap doubles as ``bp_l`` — a record has a
        stored aggregate exactly when it contains the path.
        """
        if len(column) != self._n_records:
            raise ValueError("view column length must equal the record count")
        if name in self._aggregate_views:
            raise ValueError(f"aggregate view {name!r} already exists")
        self._aggregate_views[name] = column

    def aggregate_view_names(self) -> list[str]:
        return sorted(self._aggregate_views)

    def has_aggregate_view(self, name: str) -> bool:
        return name in self._aggregate_views

    def drop_aggregate_view(self, name: str) -> None:
        """Remove one aggregate view's column pair (missing names are a
        no-op, so degraded loads can be re-pruned idempotently)."""
        self._aggregate_views.pop(name, None)

    def aggregate_view_bitmap(self, name: str) -> Bitmap:
        """Fetch ``bp_l`` for an aggregate view (counted as a view fetch)."""
        column = self._aggregate_views[name]
        self._check_fresh(len(column), name)
        bitmap = column.validity
        self.collector.record_bitmap_fetch(is_view=True, nbytes=bitmap.nbytes())
        return bitmap

    def aggregate_view_measures(
        self, name: str, rows: np.ndarray | None = None
    ) -> np.ndarray:
        """Fetch ``mp_l`` for an aggregate view (counted as a view fetch)."""
        column = self._aggregate_views[name]
        self._check_fresh(len(column), name)
        if rows is None:
            out = column.values()
            self.collector.record_measure_fetch(len(out), is_view=True)
            return out
        out = column.take(rows)
        self.collector.record_measure_fetch(int(out.size), is_view=True)
        return out

    def drop_views(self) -> None:
        """Remove all materialized views (used by budget-sweep benchmarks)."""
        self._graph_views.clear()
        self._aggregate_views.clear()

    # -- footprint ---------------------------------------------------------------------

    def base_size_bytes(self, model: str = "sparse") -> int:
        """On-disk footprint of measure + bitmap columns (no views).

        ``model="sparse"`` counts only non-NULL cells (vertical compression,
        the footprint our persistence layer actually writes); ``"dense"``
        counts every cell, MonetDB-BAT-style — the model under which the
        column store's size is independent of record density (Figure 4).
        """
        if model not in ("sparse", "dense"):
            raise ValueError(f"unknown size model {model!r}")
        total = 0
        for edge_id in self.element_ids():
            column = self._materialize_column(edge_id)
            if model == "sparse":
                total += column.nbytes()  # m_i (sparse) incl. validity
            else:
                total += column.nbytes_dense()
            total += column.validity.nbytes()  # b_i stored explicitly
        # recid key column: one int64 per record.
        total += 8 * self._n_records
        return total

    def views_size_bytes(self) -> int:
        """On-disk footprint of the materialized views."""
        total = sum(bm.nbytes() for bm in self._graph_views.values())
        for column in self._aggregate_views.values():
            total += column.nbytes() + column.validity.nbytes()
        return total

    def disk_size_bytes(self) -> int:
        return self.base_size_bytes() + self.views_size_bytes()

    # -- internal access for persistence ---------------------------------------------

    def column_for_persistence(self, edge_id: int) -> MeasureColumn:
        return self._materialize_column(edge_id)

    def graph_views_for_persistence(self) -> dict[str, Bitmap]:
        return dict(self._graph_views)

    def aggregate_views_for_persistence(self) -> dict[str, MeasureColumn]:
        return dict(self._aggregate_views)

"""Measure columns of the master relation.

Section 4.1 stores, for every distinct edge id *i*, one measure column
``m_i``: the value recorded on edge *i* of each graph record, or NULL when
the record does not contain the edge.  We represent a column as a float64
array paired with a validity bitmap; NULL cells hold NaN so vectorized
aggregation can mask them cheaply.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .bitmap import Bitmap

__all__ = ["MeasureColumn", "MeasureColumnBuilder"]


class MeasureColumn:
    """An immutable NULL-able column of float64 measure values."""

    __slots__ = ("_values", "_validity")

    def __init__(self, values: np.ndarray, validity: Bitmap):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("measure column must be one-dimensional")
        if len(values) != validity.length:
            raise ValueError(
                f"values/validity length mismatch: {len(values)} vs {validity.length}"
            )
        self._values = values
        self._validity = validity

    # -- construction -------------------------------------------------------

    @classmethod
    def from_optionals(cls, cells: Iterable[float | None]) -> "MeasureColumn":
        """Build from Python optionals; ``None`` becomes NULL."""
        cells = list(cells)
        values = np.array(
            [np.nan if c is None else float(c) for c in cells], dtype=np.float64
        )
        validity = Bitmap.from_bools([c is not None for c in cells])
        return cls(values, validity)

    @classmethod
    def nulls(cls, length: int) -> "MeasureColumn":
        """An all-NULL column."""
        return cls(np.full(length, np.nan), Bitmap.zeros(length))

    def extended(self, cells: Iterable[float | None]) -> "MeasureColumn":
        """Return a copy with the given cells appended (incremental view
        maintenance on record appends)."""
        cells = list(cells)
        if not cells:
            return self
        new_values = np.concatenate(
            [
                self._values,
                np.array(
                    [np.nan if c is None else float(c) for c in cells],
                    dtype=np.float64,
                ),
            ]
        )
        new_validity = self._validity.extended([c is not None for c in cells])
        return MeasureColumn(new_values, new_validity)

    # -- protocol -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> float | None:
        if self._validity[index]:
            return float(self._values[index])
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MeasureColumn):
            return NotImplemented
        if self._validity != other._validity:
            return False
        mask = self._validity.to_bools()
        return bool(np.array_equal(self._values[mask], other._values[mask]))

    def __repr__(self) -> str:
        return f"MeasureColumn(length={len(self)}, non_null={self.non_null_count()})"

    # -- access ----------------------------------------------------------------

    @property
    def validity(self) -> Bitmap:
        """Bitmap of non-NULL cells.

        For a measure column ``m_i`` this is by construction exactly the
        paper's edge bitmap ``b_i``: a record has a measure on edge *i* iff
        it contains edge *i*.
        """
        return self._validity

    def values(self) -> np.ndarray:
        """Read-only float64 view; NULL cells contain NaN."""
        view = self._values.view()
        view.setflags(write=False)
        return view

    def non_null_count(self) -> int:
        return self._validity.count()

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather cells at ``indices`` (row positions); NULLs come back NaN."""
        return self._values[np.asarray(indices, dtype=np.int64)]

    def nbytes(self) -> int:
        """Storage footprint: packed values plus validity bitmap.

        Mirrors a column store's compressed layout for sparse columns: only
        non-NULL cells occupy value storage, plus one presence bit per row.
        """
        return 8 * self.non_null_count() + self._validity.nbytes()

    def nbytes_dense(self) -> int:
        """Footprint under MonetDB-style dense (BAT) storage: every row
        occupies a value slot, NULLs included.  This is the model behind
        the paper's Figure 4 observation that the column store's size is
        *independent of record density* — the relation always stores
        ``n_columns × n_records`` cells."""
        return 8 * len(self._values) + self._validity.nbytes()


class MeasureColumnBuilder:
    """Row-at-a-time builder used while loading graph records."""

    def __init__(self) -> None:
        self._cells: list[float | None] = []

    def append(self, value: float | None) -> None:
        self._cells.append(None if value is None else float(value))

    def pad_to(self, length: int) -> None:
        """Extend with NULLs so the column reaches ``length`` rows.

        Used when a brand-new edge id appears mid-load: its column must be
        NULL for every earlier record (Section 6.1, schema grows on demand).
        """
        if length < len(self._cells):
            raise ValueError("cannot pad a column to a shorter length")
        self._cells.extend([None] * (length - len(self._cells)))

    def __len__(self) -> int:
        return len(self._cells)

    def build(self) -> MeasureColumn:
        return MeasureColumn.from_optionals(self._cells)

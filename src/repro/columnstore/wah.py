"""Word-aligned hybrid (WAH) run-length-compressed bitmaps.

The paper builds on the bitmap-index literature (O'Neil & Quass [4]),
where compressed encodings like WAH/EWAH are standard: sparse edge
bitmaps (a record contains ~85 of 1000 edges, so each bitmap is ~8.5%
dense) compress well and still support fast ANDs directly on the
compressed form.

This implementation uses 64-bit words: a *literal* word carries 63
payload bits; a *fill* word encodes a run of identical 63-bit groups
(fill bit + run length).  ``WahBitmap`` mirrors the dense
:class:`~repro.columnstore.bitmap.Bitmap` API closely enough to swap into
the master relation, and `bench_ablation_bitmap_codec.py` compares the
two, reproducing the classic space/time trade-off.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .bitmap import Bitmap, popcount_words

__all__ = ["WahBitmap"]

_PAYLOAD_BITS = 63
_LITERAL_FLAG = 1 << 63
_FILL_BIT = 1 << 62
_MAX_RUN = (1 << 62) - 1
_PAYLOAD_MASK = (1 << 63) - 1


def _normalize_words(length: int, words: Iterable[int]) -> list[int]:
    """Canonicalize a WAH word stream for a bitmap of ``length`` bits.

    The public constructor accepts any decodable stream; equivalent bitmaps
    can arrive as different word sequences (a one-group all-ones fill vs a
    literal, truncated streams that rely on implicit zero tails, overlong
    streams, set padding bits in the final group).  Normalizing on
    construction — decode to exactly ``ceil(length / 63)`` groups, zero the
    final group's padding bits, re-compress — makes ``__eq__`` a plain word
    comparison and keeps ``count``/``to_dense`` honest about the declared
    length.
    """
    n_groups = (length + _PAYLOAD_BITS - 1) // _PAYLOAD_BITS
    groups: list[int] = []
    for word in words:
        if len(groups) >= n_groups:
            break  # overlong stream: trailing words are out of range
        if word & _LITERAL_FLAG:
            groups.append(word & _PAYLOAD_MASK)
        else:
            run = min(word & _MAX_RUN, n_groups - len(groups))
            value = _PAYLOAD_MASK if word & _FILL_BIT else 0
            groups.extend([value] * run)
    if len(groups) < n_groups:
        groups.extend([0] * (n_groups - len(groups)))  # implicit zero tail
    if n_groups:
        tail_bits = length - (n_groups - 1) * _PAYLOAD_BITS
        if tail_bits < _PAYLOAD_BITS:
            groups[-1] &= (1 << tail_bits) - 1
    return _compress_groups(np.asarray(groups, dtype=np.uint64))


def _compress_groups(groups: np.ndarray) -> list[int]:
    """Encode 63-bit groups into WAH words."""
    words: list[int] = []
    index = 0
    n = len(groups)
    while index < n:
        group = int(groups[index])
        if group == 0 or group == _PAYLOAD_MASK:
            run = 1
            while (
                index + run < n
                and int(groups[index + run]) == group
                and run < _MAX_RUN
            ):
                run += 1
            fill = _FILL_BIT if group == _PAYLOAD_MASK else 0
            words.append(fill | run)
            index += run
        else:
            words.append(_LITERAL_FLAG | group)
            index += 1
    return words


class WahBitmap:
    """An immutable WAH-compressed bitmap."""

    __slots__ = ("_words", "_length")

    def __init__(self, length: int, words: list[int], *, _canonical: bool = False):
        if length < 0:
            raise ValueError("length must be >= 0")
        self._length = length
        # Internal constructors (from_dense, __and__) produce canonical
        # streams already and skip the re-encode.
        self._words = list(words) if _canonical else _normalize_words(length, words)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dense(cls, bitmap: Bitmap) -> "WahBitmap":
        """Compress a dense bitmap."""
        length = bitmap.length
        bits = bitmap.to_bools()
        n_groups = (length + _PAYLOAD_BITS - 1) // _PAYLOAD_BITS
        padded = np.zeros(n_groups * _PAYLOAD_BITS, dtype=bool)
        padded[:length] = bits
        groups = np.zeros(n_groups, dtype=np.uint64)
        for g in range(n_groups):
            chunk = padded[g * _PAYLOAD_BITS : (g + 1) * _PAYLOAD_BITS]
            packed = np.packbits(chunk, bitorder="little")
            buf = np.zeros(8, dtype=np.uint8)
            buf[: packed.size] = packed
            groups[g] = buf.view(np.uint64)[0]
        return cls(length, _compress_groups(groups), _canonical=True)

    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "WahBitmap":
        return cls.from_dense(Bitmap.from_indices(length, indices))

    # -- decompression ----------------------------------------------------------

    def _groups(self) -> np.ndarray:
        out: list[int] = []
        for word in self._words:
            if word & _LITERAL_FLAG:
                out.append(word & _PAYLOAD_MASK)
            else:
                run = word & _MAX_RUN
                value = _PAYLOAD_MASK if word & _FILL_BIT else 0
                out.extend([value] * run)
        return np.asarray(out, dtype=np.uint64)

    def to_dense(self) -> Bitmap:
        groups = self._groups()
        bits = np.zeros(len(groups) * _PAYLOAD_BITS, dtype=bool)
        for g, group in enumerate(groups):
            if group == 0:
                continue
            buf = np.asarray([group], dtype=np.uint64).view(np.uint8)
            chunk = np.unpackbits(buf, bitorder="little")[: _PAYLOAD_BITS]
            bits[g * _PAYLOAD_BITS : (g + 1) * _PAYLOAD_BITS] = chunk.astype(bool)
        return Bitmap.from_bools(bits[: self._length])

    # -- protocol -------------------------------------------------------------------

    @property
    def length(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitmap):
            return NotImplemented
        return self._length == other._length and self._words == other._words

    def __repr__(self) -> str:
        return f"WahBitmap(length={self._length}, words={len(self._words)})"

    def nbytes(self) -> int:
        """Compressed footprint (8 bytes per WAH word)."""
        return 8 * len(self._words)

    def count(self) -> int:
        literals = [w & _PAYLOAD_MASK for w in self._words if w & _LITERAL_FLAG]
        total = popcount_words(np.asarray(literals, dtype=np.uint64))
        for word in self._words:
            if not word & _LITERAL_FLAG and word & _FILL_BIT:
                total += _PAYLOAD_BITS * (word & _MAX_RUN)
        # Padding bits are always zero by construction, so no correction.
        return total

    # -- compressed-domain AND ------------------------------------------------------

    def __and__(self, other: "WahBitmap") -> "WahBitmap":
        """AND two compressed bitmaps without full decompression.

        Walks both word streams run-by-run; zero fills short-circuit whole
        runs — the property that makes compressed bitmap indexes fast on
        sparse columns.
        """
        if self._length != other._length:
            raise ValueError("bitmap length mismatch")
        a_words, b_words = self._words, other._words
        out_groups: list[int] = []

        def runs(words):
            for word in words:
                if word & _LITERAL_FLAG:
                    yield (1, word & _PAYLOAD_MASK, True)
                else:
                    value = _PAYLOAD_MASK if word & _FILL_BIT else 0
                    yield ((word & _MAX_RUN), value, False)

        a_iter, b_iter = runs(a_words), runs(b_words)
        a_run = next(a_iter, None)
        b_run = next(b_iter, None)
        while a_run is not None and b_run is not None:
            take = min(a_run[0], b_run[0])
            value = a_run[1] & b_run[1]
            out_groups.extend([value] * take)
            a_run = (a_run[0] - take, a_run[1], a_run[2])
            b_run = (b_run[0] - take, b_run[1], b_run[2])
            if a_run[0] == 0:
                a_run = next(a_iter, None)
            if b_run[0] == 0:
                b_run = next(b_iter, None)
        return WahBitmap(
            self._length,
            _compress_groups(np.asarray(out_groups, dtype=np.uint64)),
            _canonical=True,
        )

    @staticmethod
    def and_all(bitmaps: "Iterable[WahBitmap]") -> "WahBitmap":
        it = iter(bitmaps)
        try:
            acc = next(it)
        except StopIteration:
            raise ValueError("and_all() requires at least one bitmap") from None
        for bm in it:
            acc = acc & bm
        return acc

    def to_indices(self) -> np.ndarray:
        return self.to_dense().to_indices()

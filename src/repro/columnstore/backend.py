"""The storage-backend seam between the engine and its column store.

The engine's operator layer evaluates plans against *whatever* holds the
master relation's columns: the plain in-memory :class:`MasterRelation`,
the horizontally partitioned :class:`~repro.columnstore.sharded.ShardedTable`,
or a relation freshly rehydrated by the persistence layer
(:func:`~repro.columnstore.persistence.load_relation` /
:func:`~repro.columnstore.sharded.load_sharded` both return conforming
objects).  :class:`StorageBackend` names the contract so the seam is
explicit and checkable — ``isinstance(obj, StorageBackend)`` works because
the protocol is ``runtime_checkable``.

Two structural extras distinguish a horizontally partitioned backend:

* ``shard_relations()`` — the ordered list of record-range shards, each a
  plain :class:`MasterRelation` holding a contiguous slice of the record
  space (a single relation returns ``[self]``);
* ``shard_starts()`` — the global row offset of each shard, used by the
  order-preserving merge combiners (global row = shard start + local row).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Protocol, runtime_checkable

import numpy as np

from .bitmap import Bitmap
from .column import MeasureColumn

__all__ = ["StorageBackend"]


@runtime_checkable
class StorageBackend(Protocol):
    """What the engine requires of a master-relation store.

    Method semantics match :class:`MasterRelation`, the reference
    implementation; see its docstrings for the paper mapping (``b_i``
    bitmaps, ``m_i`` measure columns, ``bv_j`` / ``(mp_l, bp_l)`` views,
    §6.1 vertical partitioning).
    """

    # -- geometry -----------------------------------------------------------

    @property
    def n_records(self) -> int: ...

    @property
    def n_element_columns(self) -> int: ...

    def element_ids(self) -> list[int]: ...

    def partitions_for(self, edge_ids: Iterable[int]) -> set[int]: ...

    # -- horizontal partitioning -------------------------------------------

    def shard_relations(self) -> list: ...

    def shard_starts(self) -> list[int]: ...

    # -- loading ------------------------------------------------------------

    def append_row(self, cells: Mapping[int, float]) -> int: ...

    def set_record_count(self, n_records: int) -> None: ...

    def load_sparse_column(
        self, edge_id: int, row_indices: np.ndarray, values: np.ndarray
    ) -> None: ...

    # -- column access ------------------------------------------------------

    def has_element(self, edge_id: int) -> bool: ...

    def bitmap(self, edge_id: int) -> Bitmap: ...

    def measures(
        self, edge_id: int, rows: np.ndarray | None = None
    ) -> np.ndarray: ...

    def simulate_partition_join(
        self, edge_ids: Iterable[int], rows: np.ndarray
    ) -> None: ...

    # -- views --------------------------------------------------------------

    def add_graph_view(self, name: str, bitmap: Bitmap) -> None: ...

    def view_bitmap(self, name: str) -> Bitmap: ...

    def has_graph_view(self, name: str) -> bool: ...

    def add_aggregate_view(self, name: str, column: MeasureColumn) -> None: ...

    def aggregate_view_bitmap(self, name: str) -> Bitmap: ...

    def aggregate_view_measures(
        self, name: str, rows: np.ndarray | None = None
    ) -> np.ndarray: ...

    def has_aggregate_view(self, name: str) -> bool: ...

    def drop_views(self) -> None: ...

    # -- footprint ----------------------------------------------------------

    def disk_size_bytes(self) -> int: ...

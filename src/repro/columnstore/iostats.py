"""I/O cost accounting for the column-store cost model.

Section 5.1 of the paper adopts a simple cost model: every bitmap column has
the same retrieval cost (all bitmaps have the number-of-records length), so
the cost of evaluating a query is proportional to the **number of bitmap
columns fetched**, and — for aggregate queries — to the number of measure
columns/values fetched.  The view-selection benefit function and the
experiment breakdowns (Figures 6–8 split "fetch measures" from "rest of
query") are stated in those units.

``IOStats`` counts exactly those quantities.  The master relation reports
every column touch to the currently installed collector, so benchmarks can
report both wall-clock time and model cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStats", "IOStatsCollector"]


@dataclass
class IOStats:
    """Counters for one query (or one batch of queries)."""

    bitmap_columns_fetched: int = 0
    measure_columns_fetched: int = 0
    measure_values_fetched: int = 0
    view_bitmaps_fetched: int = 0
    view_measure_columns_fetched: int = 0
    partitions_joined: int = 0

    def total_columns_fetched(self) -> int:
        """The paper's cost unit: total columns retrieved from disk."""
        return (
            self.bitmap_columns_fetched
            + self.measure_columns_fetched
            + self.view_bitmaps_fetched
            + self.view_measure_columns_fetched
        )

    def structural_columns_fetched(self) -> int:
        """Columns fetched for the structural condition (the "rest of query"
        part of the paper's time breakdown): edge bitmaps plus view bitmaps."""
        return self.bitmap_columns_fetched + self.view_bitmaps_fetched

    def measure_fetch_columns(self) -> int:
        """Columns fetched to return measures (the mandatory bottom part of
        the Figures 6–7 breakdown)."""
        return self.measure_columns_fetched + self.view_measure_columns_fetched

    def add(self, other: "IOStats") -> None:
        self.bitmap_columns_fetched += other.bitmap_columns_fetched
        self.measure_columns_fetched += other.measure_columns_fetched
        self.measure_values_fetched += other.measure_values_fetched
        self.view_bitmaps_fetched += other.view_bitmaps_fetched
        self.view_measure_columns_fetched += other.view_measure_columns_fetched
        self.partitions_joined += other.partitions_joined


@dataclass
class IOStatsCollector:
    """Accumulates :class:`IOStats` across queries; usable as a context."""

    stats: IOStats = field(default_factory=IOStats)

    def reset(self) -> None:
        self.stats = IOStats()

    def record_bitmap_fetch(self, is_view: bool = False) -> None:
        if is_view:
            self.stats.view_bitmaps_fetched += 1
        else:
            self.stats.bitmap_columns_fetched += 1

    def record_measure_fetch(self, n_values: int, is_view: bool = False) -> None:
        if is_view:
            self.stats.view_measure_columns_fetched += 1
        else:
            self.stats.measure_columns_fetched += 1
        self.stats.measure_values_fetched += n_values

    def record_partition_join(self, n_partitions: int) -> None:
        if n_partitions > 1:
            self.stats.partitions_joined += n_partitions

"""I/O cost accounting for the column-store cost model.

Section 5.1 of the paper adopts a simple cost model: every bitmap column has
the same retrieval cost (all bitmaps have the number-of-records length), so
the cost of evaluating a query is proportional to the **number of bitmap
columns fetched**, and — for aggregate queries — to the number of measure
columns/values fetched.  The view-selection benefit function and the
experiment breakdowns (Figures 6–8 split "fetch measures" from "rest of
query") are stated in those units.

``IOStats`` counts exactly those quantities, plus the serving-layer
counters added with the concurrent executor: bitmap-conjunction cache
hits/misses/evictions and batch/parallel-task tallies.  The master relation
reports every column touch to the currently installed collector, so
benchmarks can report both wall-clock time and model cost.  The collector
serializes its increments behind a lock because the executor fans queries
out over a thread pool.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["IOStats", "IOStatsCollector"]


@dataclass
class IOStats:
    """Counters for one query (or one batch of queries)."""

    bitmap_columns_fetched: int = 0
    measure_columns_fetched: int = 0
    measure_values_fetched: int = 0
    view_bitmaps_fetched: int = 0
    view_measure_columns_fetched: int = 0
    partitions_joined: int = 0
    # Bytes behind the bitmap fetches above (packed-word storage); the
    # paper's cost model counts columns, this tracks the actual volume.
    bitmap_bytes_fetched: int = 0
    # Serving-layer counters (bitmap-conjunction cache + parallel executor).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    batches_served: int = 0
    parallel_tasks: int = 0

    def total_columns_fetched(self) -> int:
        """The paper's cost unit: total columns retrieved from disk."""
        return (
            self.bitmap_columns_fetched
            + self.measure_columns_fetched
            + self.view_bitmaps_fetched
            + self.view_measure_columns_fetched
        )

    def structural_columns_fetched(self) -> int:
        """Columns fetched for the structural condition (the "rest of query"
        part of the paper's time breakdown): edge bitmaps plus view bitmaps."""
        return self.bitmap_columns_fetched + self.view_bitmaps_fetched

    def measure_fetch_columns(self) -> int:
        """Columns fetched to return measures (the mandatory bottom part of
        the Figures 6–7 breakdown)."""
        return self.measure_columns_fetched + self.view_measure_columns_fetched

    def conjunctions_requested(self) -> int:
        """Bitmap conjunctions asked of the cache; every request is exactly
        one hit or one miss, so this always equals ``hits + misses``."""
        return self.cache_hits + self.cache_misses

    def cache_hit_rate(self) -> float:
        """Fraction of conjunction requests served from cache (0.0 when the
        cache was never consulted)."""
        requested = self.conjunctions_requested()
        return self.cache_hits / requested if requested else 0.0

    def add(self, other: "IOStats") -> None:
        self.bitmap_columns_fetched += other.bitmap_columns_fetched
        self.measure_columns_fetched += other.measure_columns_fetched
        self.measure_values_fetched += other.measure_values_fetched
        self.view_bitmaps_fetched += other.view_bitmaps_fetched
        self.view_measure_columns_fetched += other.view_measure_columns_fetched
        self.partitions_joined += other.partitions_joined
        self.bitmap_bytes_fetched += other.bitmap_bytes_fetched
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.batches_served += other.batches_served
        self.parallel_tasks += other.parallel_tasks


@dataclass
class IOStatsCollector:
    """Accumulates :class:`IOStats` across queries; usable as a context.

    Increments are lock-protected: the parallel executor issues queries from
    multiple threads against one engine (and thus one collector), and
    ``count += 1`` is a read-modify-write that would drop updates otherwise.

    When ``registry`` is set (a :class:`repro.obs.MetricsRegistry`, via
    :meth:`GraphAnalyticsEngine.use_metrics`), every increment is mirrored
    into process-wide ``io.*`` counters.  The mirror happens outside the
    lock — the metrics carry their own locks — and the local ``stats``
    remain the source of truth for per-query/per-batch deltas.
    """

    stats: IOStats = field(default_factory=IOStats)
    registry: object | None = field(default=None, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # name -> Counter memo, keyed to the registry it came from; avoids
        # a registry lookup (lock + dict probe) on every increment.
        self._metric_cache: dict[str, object] = {}
        self._cached_registry: object | None = None

    def _publish(self, name: str, n: float = 1) -> None:
        registry = self.registry
        if registry is None:
            return
        if self._cached_registry is not registry:
            self._metric_cache = {}
            self._cached_registry = registry
        counter = self._metric_cache.get(name)
        if counter is None:
            counter = self._metric_cache[name] = registry.counter(name)
        counter.inc(n)

    def reset(self) -> None:
        with self._lock:
            self.stats = IOStats()

    def record_bitmap_fetch(self, is_view: bool = False, nbytes: int = 0) -> None:
        with self._lock:
            if is_view:
                self.stats.view_bitmaps_fetched += 1
            else:
                self.stats.bitmap_columns_fetched += 1
            self.stats.bitmap_bytes_fetched += nbytes
        self._publish(
            "io.view_bitmaps_fetched" if is_view else "io.bitmap_columns_fetched"
        )
        if nbytes:
            self._publish("io.bitmap_bytes_fetched", nbytes)

    def record_measure_fetch(self, n_values: int, is_view: bool = False) -> None:
        with self._lock:
            if is_view:
                self.stats.view_measure_columns_fetched += 1
            else:
                self.stats.measure_columns_fetched += 1
            self.stats.measure_values_fetched += n_values
        self._publish(
            "io.view_measure_columns_fetched"
            if is_view
            else "io.measure_columns_fetched"
        )
        self._publish("io.measure_values_fetched", n_values)

    def record_partition_join(self, n_partitions: int) -> None:
        if n_partitions <= 1:
            return
        with self._lock:
            self.stats.partitions_joined += n_partitions
        self._publish("io.partitions_joined", n_partitions)

    # -- serving-layer counters ---------------------------------------------

    def record_cache_hit(self) -> None:
        with self._lock:
            self.stats.cache_hits += 1
        self._publish("io.cache_hits")

    def record_cache_miss(self) -> None:
        with self._lock:
            self.stats.cache_misses += 1
        self._publish("io.cache_misses")

    def record_cache_eviction(self, n: int = 1) -> None:
        with self._lock:
            self.stats.cache_evictions += n
        self._publish("io.cache_evictions", n)

    def record_batch(self, n_tasks: int) -> None:
        with self._lock:
            self.stats.batches_served += 1
            self.stats.parallel_tasks += n_tasks
        self._publish("io.batches_served")
        self._publish("io.parallel_tasks", n_tasks)

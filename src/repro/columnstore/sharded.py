"""Horizontal record partitioning: the sharded master relation.

The paper scales the master relation *vertically* (sub-relations of at
most 1000 columns, §6.1); :class:`ShardedTable` adds the horizontal
dimension the ROADMAP's serving goals need.  The record space is split
into contiguous **record-range shards**, each a full
:class:`~repro.columnstore.table.MasterRelation` holding that range's
slice of every measure column, edge bitmap, and view column.  Because
shards are contiguous and ordered, every merge combiner is a plain
order-preserving concatenation:

* structural bitmaps — ``Bitmap.concat`` of the per-shard segments;
* matching rows — each shard's local indices shifted by its start offset;
* measure vectors / path aggregates — per-shard gathers written back into
  the caller's row order.

Appends only ever touch the **last** shard (boundaries of the earlier
shards are immutable), so incremental ingest rebuilds one shard, not the
relation; ``rebalance()`` re-splits evenly after bulk loads.

Persistence (:func:`save_sharded` / :func:`load_sharded`) reuses the PR-1
generation/CRC scheme *per shard*: every shard directory is a complete
:func:`~repro.columnstore.persistence.save_relation` layout with its own
manifest and checksums, grouped under a root generation directory whose
``shards.json`` swap is the single atomic commit point — a crash mid-save
leaves the previous root generation (and its shard manifests) intact.
A damaged view file in *any* shard drops that view from the shard at load
time; the table then reports the view as globally absent, and the engine's
existing pruning degrades the plan to base bitmaps.
"""

from __future__ import annotations

import json
import os
import shutil
from collections.abc import Iterable, Mapping
from pathlib import Path as FsPath

import numpy as np

from ..errors import ManifestError, PersistenceError
from .bitmap import Bitmap
from .column import MeasureColumn
from .iostats import IOStatsCollector
from .persistence import load_relation, save_relation
from .table import MasterRelation

__all__ = [
    "ShardedTable",
    "save_sharded",
    "load_sharded",
    "is_sharded_dir",
    "BitmapAttachment",
    "storage_generation",
    "SHARD_MANIFEST",
]

SHARD_MANIFEST = "shards.json"
SHARD_FORMAT_VERSION = 1
_GEN_PREFIX = "gen-"
_TMP_PREFIX = ".tmp-"


class ShardedTable:
    """A master relation horizontally partitioned into record-range shards.

    Implements the same :class:`~repro.columnstore.backend.StorageBackend`
    contract as :class:`MasterRelation`; the global accessors merge across
    shards, while the engine's operator layer reaches the per-shard
    relations through :meth:`shard_relations` for parallel evaluation.

    All shards share one I/O collector: fetching a logical column that is
    physically split across *k* shards records *k* (smaller) column
    fetches — the shards really are separate column files.
    """

    def __init__(
        self,
        n_shards: int,
        partition_width: int = 1000,
        collector: IOStatsCollector | None = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.partition_width = partition_width
        self._collector = collector if collector is not None else IOStatsCollector()
        self.shards = [
            MasterRelation(partition_width=partition_width, collector=self._collector)
            for _ in range(n_shards)
        ]
        self.dropped_views: list[tuple[str, str]] = []
        self.app_meta: dict | None = None

    # -- collector plumbing --------------------------------------------------

    @property
    def collector(self) -> IOStatsCollector:
        return self._collector

    @collector.setter
    def collector(self, value: IOStatsCollector) -> None:
        self._collector = value
        for shard in self.shards:
            shard.collector = value

    # -- geometry ------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_relations(self) -> list[MasterRelation]:
        return list(self.shards)

    def shard_starts(self) -> list[int]:
        starts, offset = [], 0
        for shard in self.shards:
            starts.append(offset)
            offset += shard.n_records
        return starts

    def _shard_ends(self) -> np.ndarray:
        return np.cumsum([shard.n_records for shard in self.shards])

    @property
    def n_records(self) -> int:
        return sum(shard.n_records for shard in self.shards)

    def element_ids(self) -> list[int]:
        ids: set[int] = set()
        for shard in self.shards:
            ids.update(shard.element_ids())
        return sorted(ids)

    @property
    def n_element_columns(self) -> int:
        return len(self.element_ids())

    def partition_of(self, edge_id: int) -> int:
        return edge_id // self.partition_width

    @property
    def n_partitions(self) -> int:
        ids = self.element_ids()
        if not ids:
            return 0
        return self.partition_of(max(ids)) + 1

    def partitions_for(self, edge_ids: Iterable[int]) -> set[int]:
        return {self.partition_of(i) for i in edge_ids}

    # -- loading -------------------------------------------------------------

    def append_row(self, cells: Mapping[int, float]) -> int:
        """Append one record row to the **last** shard (earlier shard
        boundaries are immutable); returns the global row index."""
        start = self.n_records - self.shards[-1].n_records
        return start + self.shards[-1].append_row(cells)

    def append_rows(self, rows: Iterable[Mapping[int, float]]) -> list[int]:
        return [self.append_row(r) for r in rows]

    def set_record_count(self, n_records: int) -> None:
        """Declare the row count before sparse bulk loading.

        On an empty table the rows are split evenly across the shards
        (balanced record ranges); on a non-empty table the growth extends
        the last shard only, like :meth:`append_row`.
        """
        current = self.n_records
        if n_records < current:
            raise ValueError("cannot shrink the relation")
        if current == 0:
            k = len(self.shards)
            base, extra = divmod(n_records, k)
            for i, shard in enumerate(self.shards):
                shard.set_record_count(base + (1 if i < extra else 0))
        else:
            last = self.shards[-1]
            last.set_record_count(last.n_records + (n_records - current))

    def load_sparse_column(
        self, edge_id: int, row_indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Route one sparse column's (row, value) pairs to their shards."""
        rows = np.asarray(row_indices, dtype=np.int64)
        vals = np.asarray(values, dtype=np.float64)
        if rows.shape != vals.shape:
            raise ValueError("row/value arrays must be parallel")
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_records):
            raise IndexError("row index out of range; call set_record_count first")
        ends = self._shard_ends()
        sidx = np.searchsorted(ends, rows, side="right")
        starts = self.shard_starts()
        for i, shard in enumerate(self.shards):
            mask = sidx == i
            if mask.any():
                shard.load_sparse_column(edge_id, rows[mask] - starts[i], vals[mask])

    def rebalance(self) -> None:
        """Re-split the record space into even contiguous ranges.

        Bulk row-wise loads land in the last shard (streaming cannot know
        the total up front); rebalancing afterwards restores balanced
        shards.  Global record order, columns, and views are preserved
        bit-for-bit — only the shard boundaries move.
        """
        if len(self.shards) == 1:
            return
        total = self.n_records
        columns = {
            edge_id: self._merged_column(edge_id) for edge_id in self.element_ids()
        }
        graph_views = self.graph_views_for_persistence()
        agg_views = self.aggregate_views_for_persistence()
        self.shards = [
            MasterRelation(
                partition_width=self.partition_width, collector=self._collector
            )
            for _ in self.shards
        ]
        self.set_record_count(total)
        for edge_id, column in columns.items():
            rows = column.validity.to_indices()
            self.load_sparse_column(edge_id, rows, column.take(rows))
        for name, bitmap in graph_views.items():
            self.add_graph_view(name, bitmap)
        for name, column in agg_views.items():
            self.add_aggregate_view(name, column)

    @classmethod
    def from_relation(cls, relation, n_shards: int) -> "ShardedTable":
        """Horizontally partition an existing relation (or re-shard a
        sharded one) into ``n_shards`` balanced record ranges."""
        table = cls(
            n_shards,
            partition_width=relation.partition_width,
            collector=relation.collector,
        )
        table.set_record_count(relation.n_records)
        for edge_id in relation.element_ids():
            column = relation.column_for_persistence(edge_id)
            rows = column.validity.to_indices()
            table.load_sparse_column(edge_id, rows, column.take(rows))
        for name, bitmap in relation.graph_views_for_persistence().items():
            table.add_graph_view(name, bitmap)
        for name, column in relation.aggregate_views_for_persistence().items():
            table.add_aggregate_view(name, column)
        table.dropped_views = list(relation.dropped_views)
        table.app_meta = relation.app_meta
        return table

    def to_relation(self) -> MasterRelation:
        """Merge the shards back into one plain :class:`MasterRelation`."""
        relation = MasterRelation(
            partition_width=self.partition_width, collector=self._collector
        )
        relation.set_record_count(self.n_records)
        for edge_id in self.element_ids():
            column = self._merged_column(edge_id)
            rows = column.validity.to_indices()
            relation.load_sparse_column(edge_id, rows, column.take(rows))
        for name, bitmap in self.graph_views_for_persistence().items():
            relation.add_graph_view(name, bitmap)
        for name, column in self.aggregate_views_for_persistence().items():
            relation.add_aggregate_view(name, column)
        relation.dropped_views = list(self.dropped_views)
        relation.app_meta = self.app_meta
        return relation

    # -- column access -------------------------------------------------------

    def has_element(self, edge_id: int) -> bool:
        return any(shard.has_element(edge_id) for shard in self.shards)

    def bitmap(self, edge_id: int) -> Bitmap:
        """Global edge bitmap: per-shard segments concatenated in order.

        Shards that never saw the element contribute an all-zero segment
        without an I/O charge (there is no column file to fetch there).
        """
        return Bitmap.concat(
            shard.bitmap(edge_id)
            if shard.has_element(edge_id)
            else Bitmap.zeros(shard.n_records)
            for shard in self.shards
        )

    def _route_gather(self, rows: np.ndarray, fetch) -> np.ndarray:
        """Gather per-shard values for global ``rows``, preserving the
        caller's row order.  ``fetch(shard, local_rows)`` returns the
        shard's values; absent columns come back NaN."""
        rows = np.asarray(rows, dtype=np.int64)
        out = np.full(rows.size, np.nan)
        ends = self._shard_ends()
        sidx = np.searchsorted(ends, rows, side="right")
        starts = self.shard_starts()
        for i, shard in enumerate(self.shards):
            mask = sidx == i
            if mask.any():
                out[mask] = fetch(shard, rows[mask] - starts[i])
        return out

    def measures(self, edge_id: int, rows: np.ndarray | None = None) -> np.ndarray:
        if rows is None:
            return np.concatenate(
                [
                    shard.measures(edge_id)
                    if shard.has_element(edge_id)
                    else np.full(shard.n_records, np.nan)
                    for shard in self.shards
                ]
            )
        return self._route_gather(
            rows,
            lambda shard, local: shard.measures(edge_id, local)
            if shard.has_element(edge_id)
            else np.full(local.size, np.nan),
        )

    def simulate_partition_join(
        self, edge_ids: Iterable[int], rows: np.ndarray
    ) -> None:
        """Model the §6.1 recid re-join on the *merged* row set (vertical
        partitioning is by edge id, identical in every shard)."""
        partitions = self.partitions_for(edge_ids)
        self._collector.record_partition_join(len(partitions))
        for _ in range(max(len(partitions) - 1, 0)):
            np.intersect1d(rows, rows, assume_unique=True)

    # -- views ---------------------------------------------------------------

    def add_graph_view(self, name: str, bitmap: Bitmap) -> None:
        """Store a graph view, split into per-shard bitmap segments."""
        if bitmap.length != self.n_records:
            raise ValueError("view bitmap length must equal the record count")
        offset = 0
        for shard in self.shards:
            shard.add_graph_view(name, bitmap.slice(offset, offset + shard.n_records))
            offset += shard.n_records

    def view_bitmap(self, name: str) -> Bitmap:
        return Bitmap.concat(shard.view_bitmap(name) for shard in self.shards)

    def has_graph_view(self, name: str) -> bool:
        """A view is usable only when *every* shard holds its segment (a
        shard-local integrity failure degrades the view globally)."""
        return all(shard.has_graph_view(name) for shard in self.shards)

    def graph_view_names(self) -> list[str]:
        names = set(self.shards[0].graph_view_names())
        for shard in self.shards[1:]:
            names &= set(shard.graph_view_names())
        return sorted(names)

    def drop_graph_view(self, name: str) -> None:
        for shard in self.shards:
            shard.drop_graph_view(name)

    def extend_graph_view(self, name: str, flags) -> None:
        """Appends touch only the last shard's view segment."""
        self.shards[-1].extend_graph_view(name, flags)

    def add_aggregate_view(self, name: str, column: MeasureColumn) -> None:
        if len(column) != self.n_records:
            raise ValueError("view column length must equal the record count")
        values = column.values()
        offset = 0
        for shard in self.shards:
            stop = offset + shard.n_records
            shard.add_aggregate_view(
                name,
                MeasureColumn(values[offset:stop], column.validity.slice(offset, stop)),
            )
            offset = stop

    def aggregate_view_bitmap(self, name: str) -> Bitmap:
        return Bitmap.concat(
            shard.aggregate_view_bitmap(name) for shard in self.shards
        )

    def aggregate_view_measures(
        self, name: str, rows: np.ndarray | None = None
    ) -> np.ndarray:
        if rows is None:
            return np.concatenate(
                [shard.aggregate_view_measures(name) for shard in self.shards]
            )
        return self._route_gather(
            rows, lambda shard, local: shard.aggregate_view_measures(name, local)
        )

    def has_aggregate_view(self, name: str) -> bool:
        return all(shard.has_aggregate_view(name) for shard in self.shards)

    def aggregate_view_names(self) -> list[str]:
        names = set(self.shards[0].aggregate_view_names())
        for shard in self.shards[1:]:
            names &= set(shard.aggregate_view_names())
        return sorted(names)

    def drop_aggregate_view(self, name: str) -> None:
        for shard in self.shards:
            shard.drop_aggregate_view(name)

    def extend_aggregate_view(self, name: str, cells) -> None:
        self.shards[-1].extend_aggregate_view(name, cells)

    def drop_views(self) -> None:
        for shard in self.shards:
            shard.drop_views()

    # -- footprint -----------------------------------------------------------

    def base_size_bytes(self, model: str = "sparse") -> int:
        return sum(shard.base_size_bytes(model) for shard in self.shards)

    def views_size_bytes(self) -> int:
        return sum(shard.views_size_bytes() for shard in self.shards)

    def disk_size_bytes(self) -> int:
        return self.base_size_bytes() + self.views_size_bytes()

    # -- merged access for persistence/materialization ----------------------

    def _merged_column(self, edge_id: int) -> MeasureColumn:
        values = np.concatenate(
            [
                shard.column_for_persistence(edge_id).values()
                if shard.has_element(edge_id)
                else np.full(shard.n_records, np.nan)
                for shard in self.shards
            ]
        )
        validity = Bitmap.concat(
            shard.column_for_persistence(edge_id).validity
            if shard.has_element(edge_id)
            else Bitmap.zeros(shard.n_records)
            for shard in self.shards
        )
        return MeasureColumn(values, validity)

    def column_for_persistence(self, edge_id: int) -> MeasureColumn:
        """Merged global column (no I/O accounting) — the same contract as
        :meth:`MasterRelation.column_for_persistence`, used by view
        materialization and format conversion."""
        if not self.has_element(edge_id):
            raise KeyError(f"no column for element id {edge_id}")
        return self._merged_column(edge_id)

    def graph_views_for_persistence(self) -> dict[str, Bitmap]:
        return {
            name: Bitmap.concat(
                shard.graph_views_for_persistence()[name] for shard in self.shards
            )
            for name in self.graph_view_names()
        }

    def aggregate_views_for_persistence(self) -> dict[str, MeasureColumn]:
        merged: dict[str, MeasureColumn] = {}
        for name in self.aggregate_view_names():
            columns = [
                shard.aggregate_views_for_persistence()[name] for shard in self.shards
            ]
            merged[name] = MeasureColumn(
                np.concatenate([c.values() for c in columns]),
                Bitmap.concat(c.validity for c in columns),
            )
        return merged


# -- sharded persistence -----------------------------------------------------


def is_sharded_dir(directory: str | FsPath) -> bool:
    """Whether ``directory`` holds a sharded relation (root ``shards.json``)."""
    return (FsPath(directory) / SHARD_MANIFEST).is_file()


def _try_read_shard_manifest(root: FsPath) -> dict | None:
    path = root / SHARD_MANIFEST
    if not path.is_file():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return manifest if isinstance(manifest, dict) else None


def _collect_root_garbage(root: FsPath, keep: set[str]) -> None:
    for child in root.iterdir():
        if child.name in keep or child.name == SHARD_MANIFEST:
            continue
        if child.is_dir() and child.name.startswith((_GEN_PREFIX, _TMP_PREFIX)):
            shutil.rmtree(child, ignore_errors=True)
        elif child.is_file() and child.name == SHARD_MANIFEST + ".tmp":
            child.unlink(missing_ok=True)


def save_sharded(
    table: ShardedTable,
    directory: str | FsPath,
    app_meta: dict | None = None,
) -> None:
    """Atomically persist a sharded relation under ``directory``.

    Every shard is written with :func:`save_relation` — its own manifest,
    generation directory, and CRC32 integrity entries — into a fresh root
    generation directory; the root ``shards.json`` swap is the single
    commit point, after which superseded root generations are collected.
    A crash at any earlier instant leaves the previous root generation
    (and the manifest pointing at it) untouched.
    """
    root = FsPath(directory)
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise PersistenceError(
            f"cannot create relation directory {root}: {exc}"
        ) from None
    previous = _try_read_shard_manifest(root)
    prev_gen = previous.get("directory") if previous else None
    generation = int(previous.get("generation", 0)) + 1 if previous else 1
    gen_name = f"{_GEN_PREFIX}{generation:06d}"
    _collect_root_garbage(root, keep={prev_gen} if prev_gen else set())

    tmp_dir = root / f"{_TMP_PREFIX}{gen_name}"
    shutil.rmtree(tmp_dir, ignore_errors=True)
    tmp_dir.mkdir()
    for i, shard in enumerate(table.shards):
        save_relation(shard, tmp_dir / f"shard-{i:03d}")
    os.replace(tmp_dir, root / gen_name)

    manifest = {
        "format_version": SHARD_FORMAT_VERSION,
        "generation": generation,
        "directory": gen_name,
        "n_shards": table.n_shards,
        "shard_records": [shard.n_records for shard in table.shards],
        "partition_width": table.partition_width,
    }
    if app_meta is not None:
        manifest["app_meta"] = app_meta
    staged = root / (SHARD_MANIFEST + ".tmp")
    staged.write_text(json.dumps(manifest))
    os.replace(staged, root / SHARD_MANIFEST)  # the commit point
    _collect_root_garbage(root, keep={gen_name})


_REQUIRED_SHARD_KEYS = (
    "format_version",
    "generation",
    "directory",
    "n_shards",
    "shard_records",
    "partition_width",
)


def _load_shard_manifest(root: FsPath) -> tuple[dict, FsPath, list[int]]:
    """Validated root shard manifest: ``(manifest, generation dir,
    expected per-shard record counts)``."""
    path = root / SHARD_MANIFEST
    if not path.is_file():
        raise PersistenceError(f"{root} is not a sharded relation (no {SHARD_MANIFEST})")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ManifestError(f"{path}: invalid JSON: {exc}") from None
    if not isinstance(manifest, dict):
        raise ManifestError(f"{path}: manifest must be a JSON object")
    missing = [key for key in _REQUIRED_SHARD_KEYS if key not in manifest]
    if missing:
        raise ManifestError(f"{path}: manifest missing fields {missing}")
    if manifest["format_version"] != SHARD_FORMAT_VERSION:
        raise ManifestError(
            f"{path}: unsupported shards format_version "
            f"{manifest['format_version']!r} (this build reads "
            f"{SHARD_FORMAT_VERSION}); re-save the relation"
        )
    gen_dir = root / str(manifest["directory"])
    if not gen_dir.is_dir():
        raise ManifestError(
            f"{root}: manifest names generation {manifest['directory']!r} "
            "but that directory is missing"
        )
    n_shards = int(manifest["n_shards"])
    expected = [int(n) for n in manifest["shard_records"]]
    if n_shards < 1 or len(expected) != n_shards:
        raise ManifestError(f"{path}: inconsistent shard geometry")
    return manifest, gen_dir, expected


def load_sharded(
    directory: str | FsPath, verify: bool = True, mmap_mode: str | None = None
) -> ShardedTable:
    """Reconstruct a sharded relation written by :func:`save_sharded`.

    Each shard loads through :func:`load_relation` with the full PR-1
    integrity checking: corrupt base columns raise, damaged view files drop
    that view from the shard (and — because a view must be present in
    every shard to be usable — from the whole table, recorded in
    ``dropped_views``).  ``mmap_mode`` is forwarded to every shard load
    (see :func:`load_relation` for the zero-copy caveats).
    """
    root = FsPath(directory)
    manifest, gen_dir, expected = _load_shard_manifest(root)
    n_shards = len(expected)
    table = ShardedTable(
        n_shards, partition_width=int(manifest["partition_width"])
    )
    table.shards = []
    for i in range(n_shards):
        shard = load_relation(
            gen_dir / f"shard-{i:03d}", verify=verify, mmap_mode=mmap_mode
        )
        if shard.n_records != expected[i]:
            raise ManifestError(
                f"{root}: shard {i} holds {shard.n_records} records but the "
                f"manifest expects {expected[i]}"
            )
        shard.collector = table.collector
        table.shards.append(shard)
        table.dropped_views.extend(shard.dropped_views)
    table.app_meta = manifest.get("app_meta")
    return table


# -- zero-copy bitmap attachment (the procpool worker's open path) -----------


class BitmapAttachment:
    """Read-only, zero-copy attachment to a persisted engine layout.

    One :class:`~repro.columnstore.persistence.RelationBitmapReader` per
    record-range shard (a single-relation layout attaches as one shard),
    plus the geometry the shard-parallel operators need.  Attaching maps
    files lazily — no column data is read until a bitmap is requested, and
    requested bitmaps are backed by the mapped pages themselves, shared
    across every process attached to the same generation.
    """

    def __init__(self, directory: str | FsPath):
        from .persistence import RelationBitmapReader

        root = FsPath(directory)
        if is_sharded_dir(root):
            manifest, gen_dir, expected = _load_shard_manifest(root)
            self.generation = int(manifest["generation"])
            self.readers = [
                RelationBitmapReader(gen_dir / f"shard-{i:03d}")
                for i in range(len(expected))
            ]
            for i, (reader, n) in enumerate(zip(self.readers, expected, strict=True)):
                if reader.n_records != n:
                    raise ManifestError(
                        f"{root}: shard {i} holds {reader.n_records} records "
                        f"but the manifest expects {n}"
                    )
        else:
            reader = RelationBitmapReader(root)
            self.generation = reader.generation
            self.readers = [reader]
        starts, offset = [], 0
        for reader in self.readers:
            starts.append(offset)
            offset += reader.n_records
        self.shard_starts = starts
        self.n_records = offset

    @property
    def n_shards(self) -> int:
        return len(self.readers)


def storage_generation(directory: str | FsPath) -> int | None:
    """The committed generation of a persisted layout (sharded or plain);
    None when ``directory`` holds no readable manifest.  A cheap staleness
    probe: workers compare it against a task's stamp before re-attaching."""
    root = FsPath(directory)
    manifest = _try_read_shard_manifest(root)
    if manifest is None:
        from .persistence import _try_read_manifest

        manifest = _try_read_manifest(root)
    if manifest is None or "generation" not in manifest:
        return None
    try:
        return int(manifest["generation"])
    except (TypeError, ValueError):
        return None

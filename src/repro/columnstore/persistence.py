"""Disk persistence for the master relation.

Stores each column as ``.npy`` files in a directory — one pair
(values, validity words) per measure column, one word file per view bitmap
— plus a small JSON manifest.  This mirrors a column store's one-file-per-
column layout and lets the Table 2 / Figure 4 benchmarks report genuine
size-on-disk numbers.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath

import numpy as np

from .bitmap import Bitmap
from .column import MeasureColumn
from .table import MasterRelation

__all__ = ["save_relation", "load_relation", "relation_disk_usage"]

_MANIFEST = "manifest.json"


def save_relation(relation: MasterRelation, directory: str | FsPath) -> None:
    """Write the relation's columns and views under ``directory``."""
    root = FsPath(directory)
    root.mkdir(parents=True, exist_ok=True)
    manifest = {
        "n_records": relation.n_records,
        "partition_width": relation.partition_width,
        "element_ids": relation.element_ids(),
        "graph_views": relation.graph_view_names(),
        "aggregate_views": relation.aggregate_view_names(),
    }
    for edge_id in relation.element_ids():
        column = relation.column_for_persistence(edge_id)
        rows = column.validity.to_indices()
        np.save(root / f"m{edge_id}_rows.npy", rows)
        np.save(root / f"m{edge_id}_vals.npy", column.take(rows))
    for name, bitmap in relation.graph_views_for_persistence().items():
        np.save(root / f"gv_{name}.npy", np.asarray(bitmap.words()))
    for name, column in relation.aggregate_views_for_persistence().items():
        rows = column.validity.to_indices()
        np.save(root / f"av_{name}_rows.npy", rows)
        np.save(root / f"av_{name}_vals.npy", column.take(rows))
    (root / _MANIFEST).write_text(json.dumps(manifest))


def load_relation(directory: str | FsPath) -> MasterRelation:
    """Reconstruct a relation previously written by :func:`save_relation`."""
    root = FsPath(directory)
    manifest = json.loads((root / _MANIFEST).read_text())
    relation = MasterRelation(partition_width=manifest["partition_width"])
    relation.set_record_count(manifest["n_records"])
    for edge_id in manifest["element_ids"]:
        rows = np.load(root / f"m{edge_id}_rows.npy")
        vals = np.load(root / f"m{edge_id}_vals.npy")
        relation.load_sparse_column(edge_id, rows, vals)
    for name in manifest["graph_views"]:
        words = np.load(root / f"gv_{name}.npy").astype(np.uint64)
        relation.add_graph_view(name, Bitmap(manifest["n_records"], words))
    for name in manifest["aggregate_views"]:
        rows = np.load(root / f"av_{name}_rows.npy")
        vals = np.load(root / f"av_{name}_vals.npy")
        values = np.full(manifest["n_records"], np.nan)
        values[rows] = vals
        validity = Bitmap.from_indices(manifest["n_records"], rows)
        relation.add_aggregate_view(name, MeasureColumn(values, validity))
    return relation


def relation_disk_usage(directory: str | FsPath) -> int:
    """Total bytes used by a persisted relation directory."""
    root = FsPath(directory)
    return sum(f.stat().st_size for f in root.iterdir() if f.is_file())

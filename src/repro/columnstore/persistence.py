"""Crash-safe disk persistence for the master relation.

Stores each column as ``.npy`` files — one pair (values, validity rows)
per measure column, one word file per view bitmap — plus a versioned JSON
manifest.  This mirrors a column store's one-file-per-column layout and
lets the Table 2 / Figure 4 benchmarks report genuine size-on-disk numbers.

Durability model (write-ahead-by-rename):

* every save writes a fresh **generation directory** ``gen-NNNNNN/`` next
  to the manifest; column files are first written into a hidden temp
  directory and published with one atomic ``os.replace``;
* the root ``manifest.json`` names the live generation and carries the
  size and CRC32 of every file in it; it is replaced atomically, so the
  manifest swap is the single commit point — a crash at *any* earlier
  instant leaves the previous manifest pointing at the previous
  generation, which is never modified in place;
* committed saves garbage-collect superseded generations and stale temp
  directories; a crashed save's debris is swept by the next save.

``load_relation`` verifies each file's size and checksum against the
manifest before deserializing, raising :class:`~repro.errors.CorruptionError`
/ :class:`~repro.errors.ManifestError` for base columns.  A damaged *view*
file is not fatal: the view is dropped with a warning (recorded in
``MasterRelation.dropped_views``) and queries fall back to base bitmaps.
"""

from __future__ import annotations

import json
import os
import shutil
import warnings
import zlib
from collections.abc import Callable
from pathlib import Path as FsPath

import numpy as np

from ..errors import CorruptionError, ManifestError, PersistenceError
from .bitmap import Bitmap
from .column import MeasureColumn
from .table import MasterRelation

__all__ = [
    "save_relation",
    "load_relation",
    "relation_disk_usage",
    "RelationBitmapReader",
    "FORMAT_VERSION",
]

_MANIFEST = "manifest.json"
_GEN_PREFIX = "gen-"
_TMP_PREFIX = ".tmp-"
FORMAT_VERSION = 2

# Fault-injection seam: each hook is called with a stage label at every
# point during a save where a crash would leave the directory in a distinct
# on-disk state (tests/faultinject.py raises from here to simulate crashes).
_save_hooks: list[Callable[[str], None]] = []


def _notify(stage: str) -> None:
    for hook in list(_save_hooks):
        hook(stage)


def _crc32_of(path: FsPath) -> int:
    crc = 0
    with open(path, "rb") as handle:
        while chunk := handle.read(1 << 20):
            crc = zlib.crc32(chunk, crc)
    return crc


def _try_read_manifest(root: FsPath) -> dict | None:
    """Best-effort read of the current manifest (None when absent/corrupt);
    used by save to pick the next generation number without failing on a
    damaged predecessor."""
    path = root / _MANIFEST
    if not path.is_file():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return manifest if isinstance(manifest, dict) else None


def _collect_garbage(root: FsPath, keep: set[str]) -> None:
    """Remove generation/temp directories (and staged manifests) that are
    not in ``keep`` — debris from superseded or crashed saves."""
    for child in root.iterdir():
        if child.name in keep or child.name == _MANIFEST:
            continue
        if child.is_dir() and child.name.startswith((_GEN_PREFIX, _TMP_PREFIX)):
            shutil.rmtree(child, ignore_errors=True)
        elif child.is_file() and child.name == _MANIFEST + ".tmp":
            child.unlink(missing_ok=True)


def save_relation(
    relation: MasterRelation,
    directory: str | FsPath,
    app_meta: dict | None = None,
) -> None:
    """Atomically write the relation's columns and views under ``directory``.

    The previous on-disk relation (if any) stays loadable until the final
    manifest swap; an interrupted save never damages it.  ``app_meta`` is
    an optional JSON-serializable payload stored inside the manifest (the
    engine keeps its catalog there), so application metadata commits in
    the same atomic swap as the column data.
    """
    root = FsPath(directory)
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise PersistenceError(f"cannot create relation directory {root}: {exc}") from None
    previous = _try_read_manifest(root)
    prev_gen = previous.get("directory") if previous else None
    generation = int(previous.get("generation", 0)) + 1 if previous else 1
    gen_name = f"{_GEN_PREFIX}{generation:06d}"
    _collect_garbage(root, keep={prev_gen} if prev_gen else set())

    tmp_dir = root / f"{_TMP_PREFIX}{gen_name}"
    shutil.rmtree(tmp_dir, ignore_errors=True)
    tmp_dir.mkdir()
    files: dict[str, dict[str, int]] = {}

    def _write_array(name: str, array: np.ndarray) -> None:
        path = tmp_dir / name
        np.save(path, array)
        files[name] = {"size": path.stat().st_size, "crc32": _crc32_of(path)}
        _notify(f"wrote:{name}")

    for edge_id in relation.element_ids():
        column = relation.column_for_persistence(edge_id)
        rows = column.validity.to_indices()
        _write_array(f"m{edge_id}_rows.npy", rows)
        _write_array(f"m{edge_id}_vals.npy", column.take(rows))
        # Packed-bits sidecar: the validity bitmap's words verbatim, so a
        # read-only attachment (procpool workers) can mmap the bitmap
        # zero-copy instead of rebuilding it from the sparse row list.
        # Additive — readers without sidecar support just ignore it.
        _write_array(f"m{edge_id}_bits.npy", np.asarray(column.validity.words()))
    for name, bitmap in relation.graph_views_for_persistence().items():
        _write_array(f"gv_{name}.npy", np.asarray(bitmap.words()))
    for name, column in relation.aggregate_views_for_persistence().items():
        rows = column.validity.to_indices()
        _write_array(f"av_{name}_rows.npy", rows)
        _write_array(f"av_{name}_vals.npy", column.take(rows))
        _write_array(f"av_{name}_bits.npy", np.asarray(column.validity.words()))
    _notify("columns-written")

    manifest = {
        "format_version": FORMAT_VERSION,
        "generation": generation,
        "directory": gen_name,
        "n_records": relation.n_records,
        "partition_width": relation.partition_width,
        "element_ids": relation.element_ids(),
        "graph_views": relation.graph_view_names(),
        "aggregate_views": relation.aggregate_view_names(),
        "files": files,
    }
    if app_meta is not None:
        manifest["app_meta"] = app_meta
    os.replace(tmp_dir, root / gen_name)
    _notify("generation-published")
    staged = root / (_MANIFEST + ".tmp")
    staged.write_text(json.dumps(manifest))
    _notify("manifest-staged")
    os.replace(staged, root / _MANIFEST)  # the commit point
    _notify("committed")
    _collect_garbage(root, keep={gen_name})
    _notify("cleaned")


_REQUIRED_KEYS = (
    "format_version",
    "generation",
    "directory",
    "n_records",
    "partition_width",
    "element_ids",
    "graph_views",
    "aggregate_views",
    "files",
)


def _read_manifest(root: FsPath) -> dict:
    if not root.is_dir():
        raise PersistenceError(f"relation directory {root} does not exist")
    path = root / _MANIFEST
    if not path.is_file():
        raise PersistenceError(f"{root} is not a relation directory (no {_MANIFEST})")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ManifestError(f"{path}: invalid JSON: {exc}") from None
    if not isinstance(manifest, dict):
        raise ManifestError(f"{path}: manifest must be a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in manifest]
    if missing:
        raise ManifestError(f"{path}: manifest missing fields {missing}")
    version = manifest["format_version"]
    if version != FORMAT_VERSION:
        raise ManifestError(
            f"{path}: unsupported manifest format_version {version!r} "
            f"(this build reads version {FORMAT_VERSION}); re-save the relation"
        )
    return manifest


def load_relation(
    directory: str | FsPath,
    verify: bool = True,
    mmap_mode: str | None = None,
) -> MasterRelation:
    """Reconstruct a relation previously written by :func:`save_relation`.

    Every base-column file is checked against the manifest's size and CRC32
    before use (disable with ``verify=False`` for speed on trusted media);
    integrity failures raise :class:`CorruptionError`.  A damaged graph- or
    aggregate-view file only drops that view — a warning is emitted, the
    drop is recorded in ``relation.dropped_views``, and query evaluation
    degrades to the base ``b_i`` bitmaps.

    ``mmap_mode="r"`` memory-maps the column files read-only instead of
    reading them eagerly, so attachments from several processes share the
    OS page cache; pair it with ``verify=False`` — checksumming reads every
    byte, which defeats the laziness.  (For a fully zero-copy *bitmap*
    attachment, see :class:`RelationBitmapReader`.)
    """
    root = FsPath(directory)
    manifest = _read_manifest(root)
    gen_dir = root / str(manifest["directory"])
    if not gen_dir.is_dir():
        raise CorruptionError(
            f"{root}: manifest names generation {manifest['directory']!r} "
            "but that directory is missing"
        )
    files = manifest["files"]
    if not isinstance(files, dict):
        raise ManifestError(f"{root}/{_MANIFEST}: 'files' must be an object")

    def _load_array(name: str) -> np.ndarray:
        entry = files.get(name)
        if not isinstance(entry, dict) or "size" not in entry or "crc32" not in entry:
            raise ManifestError(f"{root}/{_MANIFEST}: no integrity entry for {name!r}")
        path = gen_dir / name
        if not path.is_file():
            raise CorruptionError(f"{path}: column file is missing")
        if verify:
            size = path.stat().st_size
            if size != entry["size"]:
                raise CorruptionError(
                    f"{path}: size {size} != manifest size {entry['size']} (torn write?)"
                )
            crc = _crc32_of(path)
            if crc != entry["crc32"]:
                raise CorruptionError(f"{path}: CRC32 mismatch (corrupted data)")
        try:
            return np.load(path, mmap_mode=mmap_mode)
        except Exception as exc:  # np.load raises assorted ValueError/EOFError
            raise CorruptionError(f"{path}: unreadable .npy payload: {exc}") from None

    n_records = int(manifest["n_records"])
    relation = MasterRelation(partition_width=int(manifest["partition_width"]))
    relation.set_record_count(n_records)
    for edge_id in manifest["element_ids"]:
        rows = _load_array(f"m{edge_id}_rows.npy")
        vals = _load_array(f"m{edge_id}_vals.npy")
        try:
            relation.load_sparse_column(edge_id, rows, vals)
        except (ValueError, IndexError) as exc:
            raise CorruptionError(
                f"{gen_dir}/m{edge_id}_*.npy: inconsistent column arrays: {exc}"
            ) from None

    def _drop_view(name: str, exc: Exception) -> None:
        reason = str(exc)
        relation.dropped_views.append((name, reason))
        warnings.warn(
            f"dropping damaged view {name!r} (queries fall back to base "
            f"bitmaps): {reason}",
            RuntimeWarning,
            stacklevel=3,
        )

    for name in manifest["graph_views"]:
        try:
            words = _load_array(f"gv_{name}.npy").astype(np.uint64)
            relation.add_graph_view(name, Bitmap(n_records, words))
        except (PersistenceError, ValueError, IndexError) as exc:
            _drop_view(name, exc)
    for name in manifest["aggregate_views"]:
        try:
            rows = _load_array(f"av_{name}_rows.npy")
            vals = _load_array(f"av_{name}_vals.npy")
            if rows.shape != vals.shape:
                raise CorruptionError(
                    f"{gen_dir}/av_{name}_*.npy: rows/values arrays disagree"
                )
            values = np.full(n_records, np.nan)
            values[np.asarray(rows, dtype=np.int64)] = vals
            validity = Bitmap.from_indices(n_records, rows)
            relation.add_aggregate_view(name, MeasureColumn(values, validity))
        except (PersistenceError, ValueError, IndexError) as exc:
            _drop_view(name, exc)
    relation.app_meta = manifest.get("app_meta")
    return relation


class RelationBitmapReader:
    """Zero-copy, read-only attachment to one persisted relation's bitmaps.

    The worker-side open path of the process pool: instead of
    :func:`load_relation` (which rebuilds dense measure columns in memory),
    this memory-maps exactly the files a structural conjunction needs —
    element validity bitmaps, graph-view words, aggregate-view validity —
    with ``np.load(mmap_mode="r")``.  Nothing is copied on attach:

    * element / aggregate-view bitmaps come from the packed-bits sidecars
      (``m{id}_bits.npy`` / ``av_{name}_bits.npy``) wrapped directly via
      :meth:`Bitmap.from_packed` — the bitmap's words *are* the mapped
      file pages, shared across every attachment through the OS page
      cache; relations saved before the sidecars existed fall back to
      rebuilding from the sparse row file;
    * graph views map ``gv_{name}.npy`` the same way.

    The mapping is read-only: any write attempt through a returned bitmap
    raises, and the attachment never dirties a page (no write-back).
    Checksums are intentionally skipped — verifying would read every byte
    and defeat the laziness; the atomic generation-swap protocol already
    guarantees a committed generation is never modified in place.
    """

    def __init__(self, directory: str | FsPath):
        root = FsPath(directory)
        manifest = _read_manifest(root)
        gen_dir = root / str(manifest["directory"])
        if not gen_dir.is_dir():
            raise CorruptionError(
                f"{root}: manifest names generation {manifest['directory']!r} "
                "but that directory is missing"
            )
        files = manifest["files"]
        if not isinstance(files, dict):
            raise ManifestError(f"{root}/{_MANIFEST}: 'files' must be an object")
        self._gen_dir = gen_dir
        self._files = files
        self.generation = int(manifest["generation"])
        self.n_records = int(manifest["n_records"])
        self._element_ids = {int(i) for i in manifest["element_ids"]}
        self._graph_views = set(manifest["graph_views"])
        self._aggregate_views = set(manifest["aggregate_views"])
        self._bitmaps: dict[tuple[str, object], Bitmap] = {}

    def _mmap(self, name: str) -> np.ndarray:
        path = self._gen_dir / name
        try:
            return np.load(path, mmap_mode="r")
        except Exception as exc:
            raise CorruptionError(f"{path}: unreadable .npy payload: {exc}") from None

    def _packed_or_rows(self, sidecar: str, rows_file: str) -> Bitmap:
        if sidecar in self._files:
            return Bitmap.from_packed(self.n_records, self._mmap(sidecar))
        rows = np.asarray(self._mmap(rows_file), dtype=np.int64)
        return Bitmap.from_indices(self.n_records, rows)

    def has_element(self, edge_id: int) -> bool:
        return edge_id in self._element_ids

    def bitmap(self, edge_id: int) -> Bitmap:
        """The element's validity bitmap; all-zero when the relation (this
        shard) never saw the element — same contract as the live table."""
        key = ("m", edge_id)
        cached = self._bitmaps.get(key)
        if cached is None:
            if edge_id not in self._element_ids:
                cached = Bitmap.zeros(self.n_records)
            else:
                cached = self._packed_or_rows(
                    f"m{edge_id}_bits.npy", f"m{edge_id}_rows.npy"
                )
            self._bitmaps[key] = cached
        return cached

    def view_bitmap(self, name: str) -> Bitmap:
        key = ("gv", name)
        cached = self._bitmaps.get(key)
        if cached is None:
            if name not in self._graph_views:
                raise KeyError(f"no graph view {name!r}")
            cached = Bitmap.from_packed(self.n_records, self._mmap(f"gv_{name}.npy"))
            self._bitmaps[key] = cached
        return cached

    def aggregate_view_bitmap(self, name: str) -> Bitmap:
        key = ("av", name)
        cached = self._bitmaps.get(key)
        if cached is None:
            if name not in self._aggregate_views:
                raise KeyError(f"no aggregate view {name!r}")
            cached = self._packed_or_rows(
                f"av_{name}_bits.npy", f"av_{name}_rows.npy"
            )
            self._bitmaps[key] = cached
        return cached


def relation_disk_usage(directory: str | FsPath) -> int:
    """Total bytes used by a persisted relation directory (all files,
    including the manifest and the live generation)."""
    root = FsPath(directory)
    return sum(f.stat().st_size for f in root.rglob("*") if f.is_file())

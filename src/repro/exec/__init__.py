"""Concurrent query serving: shared conjunction cache + batch executor.

The serving layer on top of the paper's engine: :class:`BitmapCache`
memoizes intermediate bitmap conjunctions across queries (keyed on
canonical covered edge-sets plus the engine's state epoch), and
:class:`QueryExecutor` fans query batches/streams out over a thread pool
with cache-affinity ordering and reader/writer isolation against
concurrent appends and view changes.  Against a sharded backend the
executor also parallelizes each query's conjunction across record-range
shards (cache keys gain the shard id; merges preserve record order).

Serving governance lives in :mod:`repro.resilience` and plugs in here:
the executor accepts per-query deadlines/cancel tokens, an optional
:class:`~repro.resilience.AdmissionController`, and a
:class:`~repro.resilience.ResiliencePolicy` for shard retry, circuit
breaking, and ``partial_ok`` degraded execution.
"""

from .cache import BitmapCache, CacheStats
from .executor import EXEC_MODES, QueryExecutor
from .procpool import (
    ProcessShardPool,
    StaleGenerationError,
    WorkerCrashedError,
    WorkerTaskError,
)

__all__ = [
    "BitmapCache",
    "CacheStats",
    "QueryExecutor",
    "EXEC_MODES",
    "ProcessShardPool",
    "WorkerCrashedError",
    "WorkerTaskError",
    "StaleGenerationError",
]

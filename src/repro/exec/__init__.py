"""Concurrent query serving: shared conjunction cache + batch executor.

The serving layer on top of the paper's engine: :class:`BitmapCache`
memoizes intermediate bitmap conjunctions across queries (keyed on
canonical covered edge-sets plus the engine's state epoch), and
:class:`QueryExecutor` fans query batches/streams out over a thread pool
with cache-affinity ordering and reader/writer isolation against
concurrent appends and view changes.
"""

from .cache import BitmapCache, CacheStats
from .executor import QueryExecutor

__all__ = ["BitmapCache", "CacheStats", "QueryExecutor"]

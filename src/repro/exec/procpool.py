"""Process-parallel shard execution over zero-copy mmap storage.

:class:`ProcessShardPool` keeps a persistent crew of worker *processes*
that evaluate conjunction shard tasks out-of-process, sidestepping the
GIL for the CPU-bound word-level AND folds.  The design leans on three
pieces of shared-nothing plumbing:

* **Zero-copy attach** — workers never deserialize the relation.  Each
  worker memory-maps the persisted generation directory read-only through
  :class:`~repro.columnstore.BitmapAttachment`, so every attached process
  shares the same OS page cache for the column files; attaching costs one
  manifest read, not a data copy.
* **Plan fragments, not plans** — the parent resolves each
  :class:`~repro.core.rewrite.ConjunctionPart` to a storage-level
  ``(kind, token)`` pair (element id, view name) before pickling, so the
  worker needs neither the catalog nor the planner.
* **Shared-memory results** — a shard's result bitmap travels back as a
  :mod:`multiprocessing.shared_memory` block (name + word count), not a
  pickled array, so the reply queue carries only a few bytes per task.

Every task is stamped with the pool's current ``(generation, epoch)``.
Workers lazily re-attach when the stamp's generation moves past their
mapped one, and refuse tasks whose generation the committed on-disk
manifest does not match (status ``"stale"``); the parent discards any
reply whose stamp no longer equals the pool's and re-dispatches.  Crashed
workers are respawned by the collector thread and their in-flight tasks
fail with :class:`WorkerCrashedError` — a plain ``RuntimeError``, so the
engine's :class:`~repro.resilience.ResiliencePolicy` retries it exactly
like a thread-mode shard fault.  A worker that misses the query deadline
answers ``"timeout"``, surfaced as the same
:class:`~repro.errors.QueryTimeoutError` the in-process path raises.

When a waiter *abandons* a task — the serving layer's client
disconnected, or the deadline lapsed parent-side first — the parent
sends a best-effort ``("cancel", task_id)`` note down the worker's pipe.
The worker checks for notes between fold parts and answers such tasks
``"cancelled"`` without (further) work, so one dead query never
head-of-line blocks the next request through the same worker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from ..columnstore import Bitmap, BitmapAttachment, storage_generation
from ..errors import QueryTimeoutError

__all__ = [
    "ProcessShardPool",
    "WorkerCrashedError",
    "WorkerTaskError",
    "StaleGenerationError",
    "resolve_fragment",
]

# Seconds between liveness sweeps / future polls.  Small enough that a
# cancelled query stops within one operator step, large enough not to
# busy-wait.
_POLL = 0.02
# How many times execute() re-dispatches a task whose worker reports the
# on-disk generation does not match the stamp before giving up.
_STALE_RETRIES = 3


class WorkerCrashedError(RuntimeError):
    """The worker process holding a task died before answering.

    Deliberately *not* a :class:`~repro.errors.ResilienceError`: the
    resilience policy treats it as an ordinary shard fault — charged to
    the shard's breaker, retried, and skippable under ``partial_ok``.
    """


class WorkerTaskError(RuntimeError):
    """A task raised inside the worker; carries the remote traceback tail."""


class StaleGenerationError(RuntimeError):
    """Workers kept seeing a different committed generation than the stamp."""


def resolve_fragment(catalog, parts) -> tuple:
    """Pre-resolve conjunction parts to storage-level ``(kind, token)``.

    Elements become integer ids (``None`` when the catalog has never seen
    the edge — the worker answers zeros, matching
    :func:`~repro.core.engine.operators.fetch_part`); views pass their
    storage names through.  The result is a small, picklable tuple with
    no dependence on the catalog object.
    """
    resolved = []
    for part in parts:
        if part.kind == "element":
            resolved.append(("element", catalog.get_id(part.token)))
        else:
            resolved.append((part.kind, part.token))
    return tuple(resolved)


# -- worker side --------------------------------------------------------------


def _fragment_bitmap(reader, kind, token) -> Bitmap:
    if kind == "element":
        if token is None or not reader.has_element(token):
            return Bitmap.zeros(reader.n_records)
        return reader.bitmap(token)
    if kind == "graph-view":
        return reader.view_bitmap(token)
    return reader.aggregate_view_bitmap(token)


def _ship_result(result: Bitmap) -> tuple:
    """Copy a result bitmap into a fresh shared-memory block.

    Returns the ``(shm_name, n_words, length)`` payload; an all-zero
    result ships as ``(None, 0, length)`` with no block at all.  The
    worker unregisters the block from its own resource tracker before
    closing: ownership transfers to the parent, which unlinks after
    copying (or the collector unlinks if the future was abandoned).
    """
    if not result.any():
        return (None, 0, result.length)
    words = np.asarray(result.words())
    block = shared_memory.SharedMemory(create=True, size=max(words.nbytes, 1))
    try:
        np.ndarray(words.shape, dtype=np.uint64, buffer=block.buf)[:] = words
        name = block.name
        # resource_tracker would unlink the segment when this process
        # exits; the parent now owns it.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:
            pass
        return (name, words.size, result.length)
    finally:
        block.close()


# During a fold, the worker polls its pipe for ``("cancel", task_id)``
# notes every this-many parts.  A poll is one non-blocking syscall, so
# the check costs well under a part's fold time at this stride while an
# abandoned query still stops within a few hundred microseconds.
_CANCEL_CHECK_EVERY = 128


def _worker_main(worker_id, storage_dir, conn):
    """Worker loop: attach lazily, fold fragments, ship bitmaps back.

    Transport is one duplex pipe per worker (no queues): a pipe has no
    cross-process lock to poison, so a SIGKILL'd worker never wedges its
    replacement — the parent just opens a fresh pipe for the respawn.

    Besides task tuples the pipe carries ``("cancel", task_id)`` notes:
    when a waiter abandons a task (client disconnect, lapsed deadline)
    the parent tells the worker, which stops folding dead work instead of
    head-of-line blocking the next query behind it.  Cancellation is
    best-effort — a note that loses the race with the reply is pruned and
    ignored — and every cancelled task still gets exactly one reply
    (status ``"cancelled"``), keeping the pipe's task/reply accounting
    intact.
    """
    storage_dir = Path(storage_dir)
    attachment = None
    pending = []  # tasks buffered while draining mid-fold
    cancelled = set()  # task ids cancelled before their reply was sent
    done_hwm = -1  # highest task id already replied to (prunes stale notes)
    shutdown = False

    def drain(block):
        """Pull everything readable: cancels into the set, tasks into
        ``pending``.  Blocks for at most one message when ``block``."""
        nonlocal shutdown
        while True:
            if not block and not conn.poll(0):
                return
            block = False
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                shutdown = True
                return
            if msg is None:
                shutdown = True
                return
            if msg[0] == "cancel":
                if msg[1] > done_hwm:
                    cancelled.add(msg[1])
            else:
                pending.append(msg)

    while True:
        if not pending:
            if shutdown:
                break
            drain(block=True)
            continue
        msg = pending.pop(0)
        task_id, shard, stamp, fragment, budget = msg
        deadline = None if budget is None else time.monotonic() + budget
        try:
            if task_id in cancelled:
                cancelled.discard(task_id)
                done_hwm = max(done_hwm, task_id)
                conn.send((task_id, worker_id, stamp, "cancelled", None))
                continue
            generation = stamp[0]
            if attachment is None or attachment.generation != generation:
                if storage_generation(storage_dir) != generation:
                    done_hwm = max(done_hwm, task_id)
                    conn.send((task_id, worker_id, stamp, "stale", None))
                    continue
                attachment = BitmapAttachment(storage_dir)
            reader = attachment.readers[shard]
            result = None
            timed_out = was_cancelled = False
            for i, (kind, token) in enumerate(fragment):
                if deadline is not None and time.monotonic() >= deadline:
                    timed_out = True
                    break
                if i % _CANCEL_CHECK_EVERY == 0 and i:
                    drain(block=False)
                    if task_id in cancelled:
                        was_cancelled = True
                        break
                part = _fragment_bitmap(reader, kind, token)
                result = part if result is None else result & part
                if not result.any():
                    break  # short-circuit: AND can only stay empty
            done_hwm = max(done_hwm, task_id)
            if was_cancelled:
                cancelled.discard(task_id)
                conn.send((task_id, worker_id, stamp, "cancelled", None))
                continue
            if timed_out:
                conn.send((task_id, worker_id, stamp, "timeout", budget))
                continue
            if result is None:
                result = Bitmap.zeros(reader.n_records)
            conn.send((task_id, worker_id, stamp, "ok", _ship_result(result)))
        except Exception as exc:  # answer *something* or the task hangs
            # A failed attach may be a half-committed swap; drop the
            # mapping so the next task re-probes the manifest.
            attachment = None
            done_hwm = max(done_hwm, task_id)
            detail = f"{type(exc).__name__}: {exc}"
            try:
                conn.send((task_id, worker_id, stamp, "error", detail))
            except Exception:
                break


# -- parent side --------------------------------------------------------------


class _Future:
    """One in-flight task's reply slot, with abandon-aware handoff.

    The collector thread resolves it; the waiting query thread either
    takes the reply or abandons the future (deadline/cancel fired), in
    which case the *collector* owns cleanup of any shared-memory payload.
    """

    __slots__ = ("_event", "_lock", "reply", "_abandoned", "task_id", "worker_id")

    def __init__(self, task_id=None, worker_id=None):
        self._event = threading.Event()
        self._lock = threading.Lock()
        self.reply = None
        self._abandoned = False
        self.task_id = task_id
        self.worker_id = worker_id

    def resolve(self, reply) -> bool:
        """Deliver the reply; False means the waiter already walked away
        and the caller must dispose of the payload."""
        with self._lock:
            if self._abandoned:
                return False
            self.reply = reply
            self._event.set()
            return True

    def abandon(self) -> object:
        """Stop waiting; returns an undisposed reply if one raced in."""
        with self._lock:
            self._abandoned = True
            return self.reply

    def wait(self, timeout: float) -> bool:
        return self._event.wait(timeout)


def _unlink_payload(status, payload) -> None:
    if status != "ok" or payload is None or payload[0] is None:
        return
    try:
        block = shared_memory.SharedMemory(name=payload[0])
        block.close()
        block.unlink()
    except FileNotFoundError:
        pass


class ProcessShardPool:
    """Persistent worker-process pool bound to one storage directory.

    Parameters
    ----------
    storage_dir:
        A committed engine layout (``engine.save`` target).  Workers
        attach to its current generation with read-only mmaps.
    workers:
        Number of worker processes.  Shards route to workers by
        ``shard % workers`` so a worker re-serves the same shards across
        queries (its mapped pages stay hot).
    stamp:
        The pool's initial ``(generation, epoch)``; every task carries
        the stamp current at submit time, and replies stamped otherwise
        are discarded.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`; the pool tallies
        ``pool.tasks``, ``pool.worker_respawns``, ``pool.stale_discarded``
        and keeps a ``pool.workers`` gauge.
    start_method:
        ``multiprocessing`` start method.  Defaults to ``forkserver``
        when available (``fork`` would duplicate the parent's thread
        locks), else ``spawn``; override with ``REPRO_MP_START``.
    """

    def __init__(
        self,
        storage_dir,
        workers: int,
        stamp: tuple[int, int],
        registry=None,
        start_method: str | None = None,
    ):
        if workers < 1:
            raise ValueError("process pool needs at least 1 worker")
        self._storage_dir = str(storage_dir)
        self._n_workers = workers
        self._stamp = tuple(stamp)
        self._registry = registry
        method = (
            start_method
            or os.environ.get("REPRO_MP_START")
            or (
                "forkserver"
                if "forkserver" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        )
        self._ctx = multiprocessing.get_context(method)
        self._task_counter = itertools.count()
        self._lock = threading.Lock()
        self._futures: dict[int, tuple[_Future, int]] = {}
        self._closing = False
        # One duplex pipe per worker (send under the per-worker lock; the
        # collector is the only receiver).  Pipes, unlike Queues, share no
        # lock with the child, so a crashed worker cannot poison the
        # channel for its respawned replacement.
        self._conns: list = [None] * workers
        self._conn_locks = [threading.Lock() for _ in range(workers)]
        self._procs: list = [None] * workers
        for i in range(workers):
            self._spawn(i)
        self._collector = threading.Thread(
            target=self._collect, name="procpool-collector", daemon=True
        )
        self._collector.start()
        if registry is not None:
            registry.gauge("pool.workers").set(workers)

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._storage_dir, child_conn),
            name=f"repro-shard-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker holds the only read end now
        self._conns[worker_id] = parent_conn
        self._procs[worker_id] = proc

    def close(self) -> None:
        """Stop workers and the collector; idempotent."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            pending = list(self._futures.values())
            self._futures.clear()
        for fut, _ in pending:
            fut.resolve((None, None, None, "error", "pool closed"))
        for worker_id, conn in enumerate(self._conns):
            try:
                with self._conn_locks[worker_id]:
                    conn.send(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._collector.is_alive():
            self._collector.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- stamps ---------------------------------------------------------------

    @property
    def stamp(self) -> tuple[int, int]:
        return self._stamp

    def set_stamp(self, stamp: tuple[int, int]) -> None:
        """Advance the pool's ``(generation, epoch)`` after a re-save.

        In-flight replies carrying the old stamp are discarded by their
        waiters and re-dispatched under the new one.
        """
        self._stamp = tuple(stamp)

    @property
    def workers(self) -> int:
        return self._n_workers

    def worker_pids(self) -> list[int]:
        """Live worker pids (test hook for crash injection)."""
        return [p.pid for p in self._procs]

    # -- collector ------------------------------------------------------------

    def _collect(self) -> None:
        """Drain replies, resolve futures, respawn dead workers."""
        while True:
            if self._closing:
                return
            with self._lock:
                conns = [c for c in self._conns if c is not None]
            try:
                ready = multiprocessing.connection.wait(conns, timeout=_POLL)
            except (OSError, ValueError):
                # A conn was closed/replaced under us; re-snapshot.
                ready = []
            for conn in ready:
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    continue  # dead worker; the sweep below respawns it
                task_id = reply[0]
                with self._lock:
                    entry = self._futures.pop(task_id, None)
                if entry is None or not entry[0].resolve(reply):
                    # No waiter (abandoned / pool closing): the payload's
                    # shm block is ours to unlink.
                    _unlink_payload(reply[3], reply[4])
            self._sweep_dead_workers()

    def _sweep_dead_workers(self) -> None:
        for worker_id, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            with self._lock:
                if self._closing:
                    return
                orphans = [
                    (tid, fut)
                    for tid, (fut, wid) in self._futures.items()
                    if wid == worker_id
                ]
                for tid, _ in orphans:
                    del self._futures[tid]
                try:
                    self._conns[worker_id].close()
                except Exception:
                    pass
                self._spawn(worker_id)  # fresh process, fresh pipe
            if self._registry is not None:
                self._registry.counter("pool.worker_respawns").inc()
            exitcode = proc.exitcode
            for tid, fut in orphans:
                fut.resolve(
                    (
                        tid,
                        worker_id,
                        None,
                        "crashed",
                        f"worker {worker_id} died (exit code {exitcode})",
                    )
                )

    # -- execution ------------------------------------------------------------

    def _submit(self, shard: int, stamp, fragment, budget) -> _Future:
        worker_id = shard % self._n_workers
        task_id = next(self._task_counter)
        fut = _Future(task_id, worker_id)
        with self._lock:
            if self._closing:
                raise RuntimeError("process pool is closed")
            self._futures[task_id] = (fut, worker_id)
            conn = self._conns[worker_id]
        try:
            with self._conn_locks[worker_id]:
                conn.send((task_id, shard, stamp, fragment, budget))
        except (OSError, BrokenPipeError):
            # The worker died between the snapshot and the send; resolve
            # the future crashed so the policy retries after respawn.
            with self._lock:
                self._futures.pop(task_id, None)
            fut.resolve(
                (
                    task_id,
                    worker_id,
                    None,
                    "crashed",
                    f"worker {worker_id} pipe broken at submit",
                )
            )
        if self._registry is not None:
            self._registry.counter("pool.tasks").inc()
        return fut

    def _cancel_task(self, fut: _Future) -> None:
        """Best-effort note to the worker that the waiter walked away, so
        it stops folding (or never starts) the abandoned task instead of
        blocking the next query behind dead work.  Failure is fine — the
        collector disposes of whatever reply eventually arrives."""
        try:
            with self._conn_locks[fut.worker_id]:
                self._conns[fut.worker_id].send(("cancel", fut.task_id))
        except Exception:
            return
        if self._registry is not None:
            self._registry.counter("pool.tasks_cancelled").inc()

    def _wait(self, fut: _Future, ctx) -> tuple:
        """Block on a future, keeping the query's deadline/cancel checks
        cooperative parent-side; abandoning on a raise."""
        try:
            while not fut.wait(_POLL):
                if ctx is not None:
                    ctx.check()
            # The deadline may have lapsed while the task was in flight;
            # honour it within one round-trip, like the in-process path
            # honours it within one operator step.
            if ctx is not None:
                ctx.check()
        except BaseException:
            reply = fut.abandon()
            if reply is not None:
                _unlink_payload(reply[3], reply[4])
            else:
                self._cancel_task(fut)
            raise
        return fut.reply

    def _materialize(self, payload) -> Bitmap:
        shm_name, n_words, length = payload
        if shm_name is None:
            return Bitmap.zeros(length)
        block = shared_memory.SharedMemory(name=shm_name)
        try:
            words = np.ndarray((n_words,), dtype=np.uint64, buffer=block.buf).copy()
        finally:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:
                pass
        return Bitmap.from_packed(length, words)

    def execute(self, shard: int, fragment: tuple, ctx=None) -> Bitmap:
        """Run one shard fragment remotely and return its result bitmap.

        Retries transparently when the reply's stamp lags a concurrent
        :meth:`set_stamp` (generation swap mid-flight — the stale result
        is discarded, never returned) and when a worker reports the
        on-disk generation out of step (bounded by ``_STALE_RETRIES``).
        Worker crashes and in-task errors surface as plain
        ``RuntimeError`` subclasses for the resilience policy to retry;
        deadline misses surface as :class:`~repro.errors.QueryTimeoutError`.
        """
        stale_left = _STALE_RETRIES
        while True:
            if ctx is not None:
                ctx.check()
            stamp = self._stamp
            budget = None
            if ctx is not None and ctx.deadline is not None:
                budget = ctx.deadline.remaining()
            reply = self._wait(self._submit(shard, stamp, fragment, budget), ctx)
            _, _, reply_stamp, status, payload = reply
            if status == "ok":
                if reply_stamp != self._stamp:
                    # Generation/epoch moved while the task was in
                    # flight: the bitmap answers a dead snapshot.
                    _unlink_payload(status, payload)
                    if self._registry is not None:
                        self._registry.counter("pool.stale_discarded").inc()
                    continue
                return self._materialize(payload)
            if status == "stale":
                if reply_stamp != self._stamp:
                    continue  # stamp moved; redo under the current one
                stale_left -= 1
                if stale_left <= 0:
                    raise StaleGenerationError(
                        f"shard {shard}: workers see generation "
                        f"{storage_generation(self._storage_dir)} on disk "
                        f"but the pool stamp is {self._stamp[0]}"
                    )
                time.sleep(_POLL)
                continue
            if status == "cancelled":
                # Only abandoned tasks are cancelled, so this reply should
                # never reach a live waiter; if a stray one does, redo the
                # work (the loop-top ctx.check bounds the retry).
                continue
            if status == "timeout":
                raise QueryTimeoutError(
                    f"query deadline of {payload:g}s exceeded", budget=payload
                )
            if status == "crashed":
                raise WorkerCrashedError(payload)
            raise WorkerTaskError(f"shard {shard}: {payload}")

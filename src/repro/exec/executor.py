"""Concurrent batch/stream query serving over one engine.

The ROADMAP's north star is a system that serves heavy query traffic; this
module adds the serving loop the paper leaves implicit.  A
:class:`QueryExecutor` accepts batches (or an unbounded stream) of
:class:`GraphQuery` / :class:`QueryExpr` / :class:`PathAggregationQuery`
objects and fans them out over a thread pool — the word-level numpy kernels
behind ``Bitmap.__and__`` release the GIL, so bitmap-heavy workloads scale
with cores — while a shared :class:`BitmapCache` lets overlapping queries
reuse each other's intermediate conjunctions.

When the engine's backend is sharded (``GraphAnalyticsEngine(shards=N)``),
the executor additionally installs a shard mapper on the engine: each
query's structural conjunction then fans out across the record-range
shards on a *separate* dedicated pool (so batch workers never deadlock
waiting on their own pool) and merges by concatenation.

Two scheduling decisions matter for the cache:

* **Affinity ordering** — each batch is executed in canonical element-set
  order (answers still return in submission order), so queries sharing
  conjunction prefixes run near each other and find the cache warm.
* **Epoch discipline** — reads run under a shared lock and writes
  (appends, view materialization/drops) under an exclusive one; every
  mutation bumps the engine epoch that cache keys embed, so a concurrent
  reader can never be served a bitmap from a previous state.  Results are
  stamped with the epoch they executed at, making concurrent runs
  replayable (and testable) against a serial execution.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from collections.abc import Iterable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from itertools import islice
from pathlib import Path

from ..columnstore import storage_generation
from ..core.engine import (
    GraphAnalyticsEngine,
    GraphQueryResult,
    MaterializationReport,
    PathAggregationResult,
)
from ..core.engine.operators import conjunction
from ..core.query import GraphQuery, PathAggregationQuery, QueryExpr
from ..core.record import GraphRecord
from ..errors import (
    AdmissionRejectedError,
    QueryCancelledError,
    QueryTimeoutError,
)
from ..resilience import (
    AdmissionController,
    CancelToken,
    QueryContext,
    ResiliencePolicy,
)
from .cache import BitmapCache
from .procpool import ProcessShardPool, resolve_fragment

__all__ = ["QueryExecutor", "EXEC_MODES"]

EXEC_MODES = ("serial", "thread", "process")

AnyQuery = GraphQuery | QueryExpr | PathAggregationQuery
AnyResult = GraphQueryResult | PathAggregationResult


class _ReadWriteLock:
    """Writer-preferring readers-writer lock.

    Any number of queries may evaluate concurrently; a mutation waits for
    in-flight readers, blocks new ones, runs alone, then releases the
    floodgates.  Writer preference keeps a steady query stream from
    starving appends.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


def _affinity_key(query: AnyQuery) -> tuple:
    """Canonical sort key grouping queries with shared conjunction prefixes."""
    if isinstance(query, PathAggregationQuery):
        elements = query.query.elements
        tag = query.function
    elif isinstance(query, GraphQuery):
        elements = query.elements
        tag = ""
    elif isinstance(query, QueryExpr):  # boolean expr: first atom's elements
        atoms = query.atoms()
        elements = atoms[0].elements if atoms else frozenset()
        tag = "expr"
    else:
        raise TypeError(f"not a servable query: {query!r}")
    return (tuple(sorted(map(repr, elements))), tag)


class QueryExecutor:
    """Serve query batches/streams concurrently against one engine.

    Parameters
    ----------
    engine:
        The engine to serve.  The executor installs its cache on the
        engine; mutate the engine *through the executor's write methods*
        while serving (direct mutation concurrent with ``run_batch`` is
        unsynchronized).
    jobs:
        Worker threads per batch (1 = serial in the calling thread).
    cache:
        A ready :class:`BitmapCache` to share (e.g. across executors), or
        None.
    cache_mb:
        Convenience: build a fresh cache with this byte budget when
        ``cache`` is None.  ``cache_mb=0``/None leaves caching off.
    registry:
        Optional :class:`repro.obs.MetricsRegistry`.  When set, the
        executor publishes per-query latency histograms
        (``exec.request_seconds`` overall, ``exec.query_seconds`` /
        ``exec.aggregate_seconds`` by kind) plus batch-size and
        served-query counters, and installs the registry on the engine
        (:meth:`GraphAnalyticsEngine.use_metrics`) so the I/O collector,
        bitmap cache, and resilience policy publish too.
    admission:
        Optional :class:`repro.resilience.AdmissionController` gating
        every query; rejected queries raise
        :class:`~repro.errors.AdmissionRejectedError` without touching
        the engine.
    resilience:
        A :class:`repro.resilience.ResiliencePolicy` to install on the
        engine for supervised shard execution.  When None and the engine
        has no policy yet, a default one is installed (3 attempts,
        breaker threshold 3) so transient shard faults are retried and
        ``partial_ok`` works out of the box.
    default_timeout:
        Per-query deadline in seconds applied when a call does not pass
        its own ``timeout`` (None = no deadline).
    partial_ok:
        Default degraded-mode policy for queries served by this executor
        (overridable per call).
    exec_mode:
        How each query's per-shard conjunctions run: ``"serial"`` in the
        calling thread, ``"thread"`` over a dedicated thread pool, or
        ``"process"`` out-of-process on a persistent
        :class:`~repro.exec.ProcessShardPool` attached to mmap'd storage.
        None keeps the legacy behaviour (threads when ``jobs > 1`` and
        the engine is sharded, serial otherwise).
    workers:
        Shard-level parallelism for ``thread``/``process`` modes
        (defaults to ``jobs``); in process mode this is the worker
        process count.
    storage_dir:
        For ``process`` mode: a committed save of *this* engine to
        attach the workers to.  When omitted (or when its geometry does
        not match the engine) the executor spools a save to a private
        temp directory and cleans it up on :meth:`close`.  Executor
        write methods re-save and re-stamp the pool, so mutations stay
        visible to the workers.
    """

    def __init__(
        self,
        engine: GraphAnalyticsEngine,
        jobs: int = 1,
        cache: BitmapCache | None = None,
        cache_mb: float | None = None,
        registry=None,
        admission: AdmissionController | None = None,
        resilience: ResiliencePolicy | None = None,
        default_timeout: float | None = None,
        partial_ok: bool = False,
        exec_mode: str | None = None,
        workers: int | None = None,
        storage_dir=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if exec_mode is not None and exec_mode not in EXEC_MODES:
            raise ValueError(
                f"exec_mode must be one of {EXEC_MODES} or None, got {exec_mode!r}"
            )
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if cache is None and cache_mb:
            cache = BitmapCache(int(cache_mb * (1 << 20)))
        self.engine = engine
        self.jobs = jobs
        self.cache = cache
        self.registry = registry
        self.admission = admission
        self.default_timeout = default_timeout
        self.partial_ok = partial_ok
        if resilience is None and engine.resilience is None:
            resilience = ResiliencePolicy()
        if resilience is not None:
            engine.use_resilience(resilience)
        self.resilience = engine.resilience
        engine.use_bitmap_cache(cache)
        if registry is not None:
            engine.use_metrics(registry)
            registry.gauge("engine.shards").set(getattr(engine, "n_shards", 1))
        self._rw = _ReadWriteLock()
        self._pool = ThreadPoolExecutor(max_workers=jobs) if jobs > 1 else None
        self.exec_mode = exec_mode
        self.workers = workers if workers is not None else jobs
        # Shard fan-out uses its own pool: batch workers submitting shard
        # tasks back into their own pool could exhaust it and deadlock.
        self._shard_pool = None
        self._proc_pool = None
        self._proc_dir: Path | None = None
        self._proc_dir_owned = False
        n_shards = getattr(engine, "n_shards", 1)
        wants_threads = (
            exec_mode == "thread"
            or exec_mode == "process"  # threads issue the worker IPC
            or (exec_mode is None and jobs > 1)
        )
        if wants_threads and n_shards > 1:
            fanout = max(self.workers if exec_mode else jobs, 1)
            self._shard_pool = ThreadPoolExecutor(
                max_workers=min(fanout, n_shards), thread_name_prefix="shard"
            )
            engine.use_shard_mapper(self._run_shards)
        if exec_mode == "process":
            self._attach_process_pool(storage_dir)
        self._window = None
        self._closed = False

    def _attach_process_pool(self, storage_dir) -> None:
        """Bind a worker-process pool to a committed save of the engine.

        Reuses ``storage_dir`` when it holds a committed layout with this
        engine's geometry (the CLI passes the database it just loaded
        from); otherwise spools ``engine.save`` into a private temp
        directory.  The pool's stamp starts at the directory's committed
        generation and the engine's current epoch.
        """
        engine = self.engine
        target = None
        if storage_dir is not None:
            candidate = Path(storage_dir)
            if storage_generation(candidate) is not None and self._geometry_matches(
                candidate
            ):
                target = candidate
        if target is None:
            target = Path(tempfile.mkdtemp(prefix="repro-procpool-"))
            self._proc_dir_owned = True
            engine.save(target)
        self._proc_dir = target
        self._proc_pool = ProcessShardPool(
            target,
            workers=max(self.workers, 1),
            stamp=(storage_generation(target), engine.epoch),
            registry=self.registry,
        )
        engine.use_shard_compute(self._remote_shard_compute)

    def _geometry_matches(self, directory: Path) -> bool:
        """Cheap sanity check that a saved layout is plausibly this
        engine's current state: shard count and total records agree."""
        from ..columnstore import BitmapAttachment

        try:
            attachment = BitmapAttachment(directory)
        except Exception:
            return False
        return (
            attachment.n_shards == getattr(self.engine, "n_shards", 1)
            and attachment.n_records == self.engine.n_records
        )

    def _resync_process_pool(self) -> None:
        """Republish the engine to the pool's directory after a mutation
        and advance the stamp; stale in-flight replies get discarded."""
        if self._proc_pool is None:
            return
        self.engine.save(self._proc_dir)
        self._proc_pool.set_stamp(
            (storage_generation(self._proc_dir), self.engine.epoch)
        )

    def _remote_shard_compute(self, task, parts, keys, ctx):
        """Engine hook: evaluate one shard's conjunction on the worker
        pool, keeping the per-shard full-key cache in this process.

        Falls back to the in-process fold when the pool's stamp lags the
        engine epoch (a mutation bypassed the executor's write methods) —
        correctness never depends on the resync having happened.
        """
        pool = self._proc_pool
        epoch = self.engine.epoch
        if pool is None or pool.stamp[1] != epoch:
            return conjunction(
                task.relation,
                self.engine.catalog,
                parts,
                keys,
                self.cache,
                epoch,
                shard=task.shard,
                ctx=ctx,
            )
        cache = self.cache
        key = keys[-1] if keys else None
        cacheable = (
            cache is not None and key is not None and all(p.covered for p in parts)
        )
        if cacheable:
            hit = cache.lookup(epoch, key, shard=task.shard)
            if hit is not None:
                return hit
        fragment = resolve_fragment(self.engine.catalog, parts)
        result = pool.execute(task.shard, fragment, ctx)
        if cacheable:
            cache.put(epoch, key, result, shard=task.shard)
        return result

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._shard_pool is not None:
            self.engine.use_shard_mapper(None)
            self._shard_pool.shutdown(wait=True)
        if self._proc_pool is not None:
            self.engine.use_shard_compute(None)
            self._proc_pool.close()
            self._proc_pool = None
        if self._proc_dir_owned and self._proc_dir is not None:
            shutil.rmtree(self._proc_dir, ignore_errors=True)
            self._proc_dir = None

    def _run_shards(self, fn, tasks) -> list:
        """Parallel shard mapper installed on the engine: evaluate one
        plan's per-shard conjunctions concurrently, results in shard
        order (list() re-raises the first worker exception)."""
        if self.registry is not None:
            self.registry.counter("exec.shard_tasks").inc(len(tasks))
        return list(self._shard_pool.map(fn, tasks))

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    # -- read side -----------------------------------------------------------

    def _count(self, name: str, n: float = 1) -> None:
        registry = self.registry
        if registry is not None:
            registry.counter(name).inc(n)

    def _make_ctx(
        self,
        timeout: float | None,
        cancel: CancelToken | None,
        partial_ok: bool | None,
    ) -> QueryContext | None:
        """Fresh per-query context from call args + executor defaults;
        None when no governance applies (keeps the hot path allocation-free)."""
        timeout = timeout if timeout is not None else self.default_timeout
        partial = partial_ok if partial_ok is not None else self.partial_ok
        if timeout is None and cancel is None and not partial:
            return None
        return QueryContext.start(timeout=timeout, token=cancel, partial_ok=partial)

    def _estimate_bytes(self) -> int:
        """Admission byte estimate: one uncompressed bitmap width — the
        unit every conjunction step allocates at least once."""
        return max(self.engine.n_records // 8, 1)

    def _execute_one(
        self, query: AnyQuery, fetch_measures: bool, ctx: QueryContext | None
    ) -> AnyResult:
        registry = self.registry
        start = time.perf_counter() if registry is not None else 0.0
        try:
            if ctx is not None:
                ctx.check()
            with self._rw.read():
                if isinstance(query, PathAggregationQuery):
                    result = self.engine.aggregate(query, ctx=ctx)
                else:
                    result = self.engine.query(
                        query, fetch_measures=fetch_measures, ctx=ctx
                    )
        except QueryTimeoutError:
            self._count("resilience.timeouts")
            raise
        except QueryCancelledError:
            self._count("resilience.cancellations")
            raise
        if registry is not None:
            kind = "aggregate" if isinstance(query, PathAggregationQuery) else "query"
            elapsed = time.perf_counter() - start
            registry.histogram("exec.request_seconds").observe(elapsed)
            registry.histogram(f"exec.{kind}_seconds").observe(elapsed)
            registry.counter("exec.queries_served").inc()
            if getattr(result, "degraded", None) is not None:
                registry.counter("resilience.degraded_results").inc()
        if self._window is not None:
            self._observe(query, result)
        return result

    def attach_window(self, window) -> None:
        """Stream every served query (and the views its plan used) into a
        :class:`repro.adaptive.WorkloadWindow`; ``None`` detaches."""
        self._window = window

    def _observe(self, query: AnyQuery, result: AnyResult) -> None:
        plan = getattr(result, "plan", None)
        if isinstance(query, PathAggregationQuery):
            views: tuple[str, ...] = ()
            if plan is not None:
                views = tuple(plan.structural_view_names) + tuple(
                    plan.structural_agg_view_names
                )
            self._window.record(query.query, views)
        elif isinstance(query, GraphQuery):
            views = tuple(plan.view_names) if plan is not None else ()
            self._window.record(query, views)
        else:
            # Boolean expressions evaluate per atom without a recorded
            # plan; observe the atoms so their element sets still shape
            # candidate generation.
            for atom in query.atoms():
                self._window.record(atom, ())

    def run_one(
        self,
        query: AnyQuery,
        fetch_measures: bool = True,
        timeout: float | None = None,
        partial_ok: bool | None = None,
        cancel: CancelToken | None = None,
        ctx: QueryContext | None = None,
    ) -> AnyResult:
        """Answer one query under the shared read lock.

        ``timeout`` (seconds) / ``partial_ok`` override the executor
        defaults for this call; ``cancel`` attaches a shared
        :class:`~repro.resilience.CancelToken`.  Alternatively pass a
        ready-made ``ctx``.  With an admission controller installed the
        query first passes the gate (possibly queueing up to its bounded
        wait) and may raise
        :class:`~repro.errors.AdmissionRejectedError`.
        """
        if ctx is None:
            ctx = self._make_ctx(timeout, cancel, partial_ok)
        admission = self.admission
        if admission is None:
            return self._execute_one(query, fetch_measures, ctx)
        try:
            waited_from = time.perf_counter()
            with admission.admit(self._estimate_bytes()):
                if self.registry is not None:
                    self.registry.histogram("resilience.admission_wait_seconds").observe(
                        time.perf_counter() - waited_from
                    )
                self._count("resilience.admitted")
                return self._execute_one(query, fetch_measures, ctx)
        except AdmissionRejectedError:
            self._count("resilience.admission_rejected")
            raise

    def run_batch(
        self,
        queries: Sequence[AnyQuery],
        fetch_measures: bool = True,
        return_errors: bool = False,
        timeout: float | None = None,
        partial_ok: bool | None = None,
        cancel: CancelToken | None = None,
    ) -> list[AnyResult | Exception]:
        """Answer a batch; results align with the submitted order.

        Execution order is affinity-sorted so cache-sharing queries run
        adjacently; with ``jobs > 1`` the batch fans out over the pool.

        Failures are isolated to their slot: every other query still
        runs to completion.  With ``return_errors=True`` the failing
        slots hold the exception objects themselves; otherwise the first
        failure (in submission order) is raised after the batch finishes.
        ``timeout`` starts counting when each query begins executing, not
        at batch submission, so queued queries get their full budget; a
        shared ``cancel`` token is also checked before each queued query
        starts, so one ``cancel()`` stops the whole batch at the next
        boundary.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        queries = list(queries)
        if not queries:
            return []
        self.engine.collector.record_batch(len(queries))
        if self.registry is not None:
            self.registry.histogram("exec.batch_size").observe(len(queries))
        # Affinity keys are O(query size) to build; skewed batches repeat a
        # few hot queries many times, so compute each distinct key once.
        keys: dict[AnyQuery, tuple] = {}
        for query in queries:
            if query not in keys:
                keys[query] = _affinity_key(query)
        order = sorted(range(len(queries)), key=lambda i: keys[queries[i]])
        results: list[AnyResult | Exception | None] = [None] * len(queries)

        def run(index: int) -> None:
            if cancel is not None and cancel.cancelled:
                self._count("resilience.cancellations")
                results[index] = QueryCancelledError("cancelled before start")
                return
            try:
                results[index] = self.run_one(
                    queries[index],
                    fetch_measures,
                    timeout=timeout,
                    partial_ok=partial_ok,
                    cancel=cancel,
                )
            except Exception as exc:
                results[index] = exc

        if self._pool is None or len(queries) == 1:
            for index in order:
                run(index)
        else:
            # list() drains the lazy map iterator; run() captures failures
            # per slot, so the pool itself never sees an exception.
            list(self._pool.map(run, order))
        if not return_errors:
            for slot in results:
                if isinstance(slot, Exception):
                    raise slot
        return results  # type: ignore[return-value]

    def serve(
        self,
        queries: Iterable[AnyQuery],
        batch_size: int = 64,
        fetch_measures: bool = True,
        return_errors: bool = False,
        timeout: float | None = None,
        partial_ok: bool | None = None,
        cancel: CancelToken | None = None,
    ) -> Iterator[AnyResult | Exception]:
        """Stream results for an unbounded query feed, batch by batch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stream = iter(queries)
        while batch := list(islice(stream, batch_size)):
            yield from self.run_batch(
                batch,
                fetch_measures=fetch_measures,
                return_errors=return_errors,
                timeout=timeout,
                partial_ok=partial_ok,
                cancel=cancel,
            )

    # -- write side ----------------------------------------------------------

    def explain(
        self, query: AnyQuery, analyze: bool = False, fmt: str = "text"
    ) -> str:
        """EXPLAIN under the shared read lock, so ``analyze=True`` (which
        executes the query) can never observe a half-applied write."""
        with self._rw.read():
            text = self.engine.explain(query, analyze=analyze, fmt=fmt)
        self._count("exec.explains")
        return text

    def append_records(self, records: Iterable[GraphRecord]) -> int:
        """Exclusive append with incremental view maintenance; readers in
        flight finish first, and the epoch bump invalidates the cache."""
        with self._rw.write():
            count = self.engine.append_records(records)
            self._resync_process_pool()
            return count

    def materialize_graph_views(self, *args, **kwargs) -> MaterializationReport:
        with self._rw.write():
            report = self.engine.materialize_graph_views(*args, **kwargs)
            self._resync_process_pool()
            return report

    def materialize_aggregate_views(self, *args, **kwargs) -> MaterializationReport:
        with self._rw.write():
            report = self.engine.materialize_aggregate_views(*args, **kwargs)
            self._resync_process_pool()
            return report

    def drop_all_views(self) -> None:
        with self._rw.write():
            self.engine.drop_all_views()
            self._resync_process_pool()

    # -- adaptive view maintenance --------------------------------------------

    def stage_view(self, elements) -> tuple[frozenset, "object", int]:
        """Build a view bitmap *off-epoch*, under the shared read lock:
        concurrent queries keep flowing while the bitmap is computed.
        Returns ``(elements, staged_bitmap, staged_rows)`` ready for
        :meth:`commit_view_swap`; rows appended after staging are covered
        by the append-delta at commit time."""
        elements = frozenset(elements)
        with self._rw.read():
            staged = self.engine.compute_view_bitmap(elements)
            return elements, staged, self.engine.n_records

    def commit_view_swap(self, adds=(), drops=()) -> dict:
        """Atomically apply one batch of view adds and drops.

        ``adds`` is an iterable of ``(name, elements, staged, staged_rows)``
        tuples (``name`` may be None for an auto-generated one); ``drops``
        is an iterable of view names.  The whole swap happens under one
        exclusive lock section with a single process-pool resync, so a
        reader observes either the old view set or the new one — never a
        half-committed mix — and the epoch bump invalidates every cached
        bitmap from the old state.
        """
        added: list[str] = []
        dropped: list[str] = []
        with self._rw.write():
            for name, elements, staged, staged_rows in adds:
                added.append(
                    self.engine.materialize_incremental(
                        elements, name=name, staged=staged, staged_rows=staged_rows
                    )
                )
            drops = list(drops)
            if drops:
                dropped = self.engine.drop_decayed(drops)
            if added or dropped:
                self._resync_process_pool()
            return {
                "added": added,
                "dropped": dropped,
                "epoch": self.engine.epoch,
                "n_records": self.engine.n_records,
            }

    def materialize_incremental(self, elements, name: str | None = None) -> str:
        """Stage off-epoch, then commit: the convenience one-view path."""
        elements, staged, staged_rows = self.stage_view(elements)
        swap = self.commit_view_swap(adds=[(name, elements, staged, staged_rows)])
        return swap["added"][0]

    def drop_decayed(self, names) -> list[str]:
        """Atomically drop the named views (unknown names ignored)."""
        return self.commit_view_swap(drops=list(names))["dropped"]

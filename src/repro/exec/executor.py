"""Concurrent batch/stream query serving over one engine.

The ROADMAP's north star is a system that serves heavy query traffic; this
module adds the serving loop the paper leaves implicit.  A
:class:`QueryExecutor` accepts batches (or an unbounded stream) of
:class:`GraphQuery` / :class:`QueryExpr` / :class:`PathAggregationQuery`
objects and fans them out over a thread pool — the word-level numpy kernels
behind ``Bitmap.__and__`` release the GIL, so bitmap-heavy workloads scale
with cores — while a shared :class:`BitmapCache` lets overlapping queries
reuse each other's intermediate conjunctions.

When the engine's backend is sharded (``GraphAnalyticsEngine(shards=N)``),
the executor additionally installs a shard mapper on the engine: each
query's structural conjunction then fans out across the record-range
shards on a *separate* dedicated pool (so batch workers never deadlock
waiting on their own pool) and merges by concatenation.

Two scheduling decisions matter for the cache:

* **Affinity ordering** — each batch is executed in canonical element-set
  order (answers still return in submission order), so queries sharing
  conjunction prefixes run near each other and find the cache warm.
* **Epoch discipline** — reads run under a shared lock and writes
  (appends, view materialization/drops) under an exclusive one; every
  mutation bumps the engine epoch that cache keys embed, so a concurrent
  reader can never be served a bitmap from a previous state.  Results are
  stamped with the epoch they executed at, making concurrent runs
  replayable (and testable) against a serial execution.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from itertools import islice

from ..core.engine import (
    GraphAnalyticsEngine,
    GraphQueryResult,
    MaterializationReport,
    PathAggregationResult,
)
from ..core.query import GraphQuery, PathAggregationQuery, QueryExpr
from ..core.record import GraphRecord
from .cache import BitmapCache

__all__ = ["QueryExecutor"]

AnyQuery = GraphQuery | QueryExpr | PathAggregationQuery
AnyResult = GraphQueryResult | PathAggregationResult


class _ReadWriteLock:
    """Writer-preferring readers-writer lock.

    Any number of queries may evaluate concurrently; a mutation waits for
    in-flight readers, blocks new ones, runs alone, then releases the
    floodgates.  Writer preference keeps a steady query stream from
    starving appends.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


def _affinity_key(query: AnyQuery) -> tuple:
    """Canonical sort key grouping queries with shared conjunction prefixes."""
    if isinstance(query, PathAggregationQuery):
        elements = query.query.elements
        tag = query.function
    elif isinstance(query, GraphQuery):
        elements = query.elements
        tag = ""
    elif isinstance(query, QueryExpr):  # boolean expr: first atom's elements
        atoms = query.atoms()
        elements = atoms[0].elements if atoms else frozenset()
        tag = "expr"
    else:
        raise TypeError(f"not a servable query: {query!r}")
    return (tuple(sorted(map(repr, elements))), tag)


class QueryExecutor:
    """Serve query batches/streams concurrently against one engine.

    Parameters
    ----------
    engine:
        The engine to serve.  The executor installs its cache on the
        engine; mutate the engine *through the executor's write methods*
        while serving (direct mutation concurrent with ``run_batch`` is
        unsynchronized).
    jobs:
        Worker threads per batch (1 = serial in the calling thread).
    cache:
        A ready :class:`BitmapCache` to share (e.g. across executors), or
        None.
    cache_mb:
        Convenience: build a fresh cache with this byte budget when
        ``cache`` is None.  ``cache_mb=0``/None leaves caching off.
    registry:
        Optional :class:`repro.obs.MetricsRegistry`.  When set, the
        executor publishes per-query latency histograms
        (``exec.request_seconds`` overall, ``exec.query_seconds`` /
        ``exec.aggregate_seconds`` by kind) plus batch-size and
        served-query counters, and installs the registry on the engine
        (:meth:`GraphAnalyticsEngine.use_metrics`) so the I/O collector
        and bitmap cache publish too.
    """

    def __init__(
        self,
        engine: GraphAnalyticsEngine,
        jobs: int = 1,
        cache: BitmapCache | None = None,
        cache_mb: float | None = None,
        registry=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if cache is None and cache_mb:
            cache = BitmapCache(int(cache_mb * (1 << 20)))
        self.engine = engine
        self.jobs = jobs
        self.cache = cache
        self.registry = registry
        engine.use_bitmap_cache(cache)
        if registry is not None:
            engine.use_metrics(registry)
            registry.gauge("engine.shards").set(getattr(engine, "n_shards", 1))
        self._rw = _ReadWriteLock()
        self._pool = ThreadPoolExecutor(max_workers=jobs) if jobs > 1 else None
        # Shard fan-out uses its own pool: batch workers submitting shard
        # tasks back into their own pool could exhaust it and deadlock.
        self._shard_pool = None
        if jobs > 1 and getattr(engine, "n_shards", 1) > 1:
            self._shard_pool = ThreadPoolExecutor(
                max_workers=min(jobs, engine.n_shards), thread_name_prefix="shard"
            )
            engine.use_shard_mapper(self._run_shards)
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._shard_pool is not None:
            self.engine.use_shard_mapper(None)
            self._shard_pool.shutdown(wait=True)

    def _run_shards(self, fn, tasks) -> list:
        """Parallel shard mapper installed on the engine: evaluate one
        plan's per-shard conjunctions concurrently, results in shard
        order (list() re-raises the first worker exception)."""
        if self.registry is not None:
            self.registry.counter("exec.shard_tasks").inc(len(tasks))
        return list(self._shard_pool.map(fn, tasks))

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    # -- read side -----------------------------------------------------------

    def run_one(self, query: AnyQuery, fetch_measures: bool = True) -> AnyResult:
        """Answer one query under the shared read lock."""
        registry = self.registry
        if registry is None:
            with self._rw.read():
                if isinstance(query, PathAggregationQuery):
                    return self.engine.aggregate(query)
                return self.engine.query(query, fetch_measures=fetch_measures)
        kind = "aggregate" if isinstance(query, PathAggregationQuery) else "query"
        start = time.perf_counter()
        with self._rw.read():
            if isinstance(query, PathAggregationQuery):
                result = self.engine.aggregate(query)
            else:
                result = self.engine.query(query, fetch_measures=fetch_measures)
        elapsed = time.perf_counter() - start
        registry.histogram("exec.request_seconds").observe(elapsed)
        registry.histogram(f"exec.{kind}_seconds").observe(elapsed)
        registry.counter("exec.queries_served").inc()
        return result

    def run_batch(
        self, queries: Sequence[AnyQuery], fetch_measures: bool = True
    ) -> list[AnyResult]:
        """Answer a batch; results align with the submitted order.

        Execution order is affinity-sorted so cache-sharing queries run
        adjacently; with ``jobs > 1`` the batch fans out over the pool.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        queries = list(queries)
        if not queries:
            return []
        self.engine.collector.record_batch(len(queries))
        if self.registry is not None:
            self.registry.histogram("exec.batch_size").observe(len(queries))
        # Affinity keys are O(query size) to build; skewed batches repeat a
        # few hot queries many times, so compute each distinct key once.
        keys: dict[AnyQuery, tuple] = {}
        for query in queries:
            if query not in keys:
                keys[query] = _affinity_key(query)
        order = sorted(range(len(queries)), key=lambda i: keys[queries[i]])
        results: list[AnyResult | None] = [None] * len(queries)

        def run(index: int) -> None:
            results[index] = self.run_one(queries[index], fetch_measures)

        if self._pool is None or len(queries) == 1:
            for index in order:
                run(index)
        else:
            # list() drains the lazy map iterator and re-raises the first
            # worker exception, if any.
            list(self._pool.map(run, order))
        return results  # type: ignore[return-value]

    def serve(
        self,
        queries: Iterable[AnyQuery],
        batch_size: int = 64,
        fetch_measures: bool = True,
    ) -> Iterator[AnyResult]:
        """Stream results for an unbounded query feed, batch by batch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        stream = iter(queries)
        while batch := list(islice(stream, batch_size)):
            yield from self.run_batch(batch, fetch_measures=fetch_measures)

    # -- write side ----------------------------------------------------------

    def append_records(self, records: Iterable[GraphRecord]) -> int:
        """Exclusive append with incremental view maintenance; readers in
        flight finish first, and the epoch bump invalidates the cache."""
        with self._rw.write():
            return self.engine.append_records(records)

    def materialize_graph_views(self, *args, **kwargs) -> MaterializationReport:
        with self._rw.write():
            return self.engine.materialize_graph_views(*args, **kwargs)

    def materialize_aggregate_views(self, *args, **kwargs) -> MaterializationReport:
        with self._rw.write():
            return self.engine.materialize_aggregate_views(*args, **kwargs)

    def drop_all_views(self) -> None:
        with self._rw.write():
            self.engine.drop_all_views()

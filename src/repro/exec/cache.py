"""Shared bitmap-conjunction cache for the serving layer.

The paper reduces graph-query evaluation to bitmap ANDs (Section 4.2) and
shows that sharing common conjunctions via materialized views multiplies
throughput (Section 5.1).  :class:`BitmapCache` applies the same idea at
*runtime*: intermediate conjunction results are memoized under a byte
budget, keyed on the canonical frozen edge-set they certify plus the
engine's state epoch (and the record-range shard id when the engine is
sharded), so overlapping queries in a workload (and the rewriter's
partial covers) reuse each other's work instead of re-ANDing the same
columns.

Keying on covered edge-sets is sound because every conjunction input — a
base ``b_i`` bitmap, a graph-view ``bv_j``, or an aggregate-view ``bp_l``
— equals the AND of the base bitmaps of the elements it covers, so any
two evaluation orders (or view decompositions) of the same covered set
produce bit-identical results.  Keying on the epoch makes invalidation
trivial and race-free: writers bump the engine epoch, after which stale
entries can never match a lookup again (they are also proactively dropped
to release budget).

Stored bitmaps are deduplicated through :meth:`Bitmap.content_key`: when
two cache keys map to bit-identical results (common for nested prefixes
that add non-selective elements), one packed array backs both entries and
the byte budget is charged once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from ..columnstore.bitmap import Bitmap
from ..columnstore.iostats import IOStatsCollector
from ..core.record import Edge

__all__ = ["BitmapCache", "CacheStats"]

# (epoch, shard, covered elements); shard 0 is the whole relation when the
# engine is unsharded, or the first record-range shard when it is — the two
# never coexist in one engine lifetime without an epoch bump, so keys from
# the two regimes cannot collide.
CacheKey = tuple[int, int, frozenset]


@dataclass
class CacheStats:
    """Point-in-time counters of one :class:`BitmapCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0
    unique_bitmaps: int = 0
    bytes_cached: int = 0

    def requests(self) -> int:
        """Conjunction lookups; always exactly ``hits + misses``."""
        return self.hits + self.misses

    def hit_rate(self) -> float:
        requested = self.requests()
        return self.hits / requested if requested else 0.0


class BitmapCache:
    """Thread-safe LRU of bitmap conjunctions with byte-budget accounting.

    ``budget_bytes`` bounds the *deduplicated* storage of the cached
    bitmaps; inserting past the budget evicts least-recently-used entries
    until it holds again (an entry larger than the whole budget is not
    retained at all).  An optional :class:`IOStatsCollector` — installed
    automatically by :meth:`GraphAnalyticsEngine.use_bitmap_cache` — mirrors
    hit/miss/eviction traffic into the engine's query stats.  An optional
    ``registry`` (a :class:`repro.obs.MetricsRegistry`, installed by
    :meth:`GraphAnalyticsEngine.use_metrics`) additionally publishes the
    same traffic as process-wide ``cache.*`` counters plus held-bytes /
    entry-count gauges.
    """

    def __init__(
        self,
        budget_bytes: int = 64 << 20,
        collector: IOStatsCollector | None = None,
        registry=None,
    ):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = budget_bytes
        self.collector = collector
        self.registry = registry
        self._metric_cache: dict[str, object] = {}
        self._cached_registry = None
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, Bitmap] = OrderedDict()
        # Content-key interning: digest -> [bitmap, number of cache entries
        # sharing it].  bytes_cached charges each unique bitmap once.
        self._interned: dict[tuple, list] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def _publish(self, name: str, n: float = 1) -> None:
        registry = self.registry
        if registry is None:
            return
        if self._cached_registry is not registry:
            self._metric_cache = {}
            self._cached_registry = registry
        counter = self._metric_cache.get(name)
        if counter is None:
            counter = self._metric_cache[name] = registry.counter(name)
        counter.inc(n)

    def _publish_gauges(self) -> None:
        registry = self.registry
        if registry is not None:
            with self._lock:
                entries, held = len(self._entries), self._bytes
            registry.gauge("cache.entries").set(entries)
            registry.gauge("cache.bytes_held").set(held)

    # -- core operation ------------------------------------------------------

    def get_or_compute(
        self,
        epoch: int,
        elements: frozenset[Edge],
        compute: Callable[[], Bitmap],
        shard: int = 0,
    ) -> Bitmap:
        """Return the conjunction bitmap for ``elements`` at ``epoch``
        (restricted to record-range ``shard`` when the engine is sharded),
        computing and caching it on a miss.

        ``compute`` runs outside the cache lock, so it may recurse into the
        cache (the engine memoizes every prefix of a conjunction this way).
        Concurrent misses on the same key may both compute; the last insert
        wins and both callers get correct bitmaps.
        """
        key = (epoch, shard, elements)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
        if cached is not None:
            if self.collector is not None:
                self.collector.record_cache_hit()
            self._publish("cache.hits")
            return cached
        with self._lock:
            self._misses += 1
        if self.collector is not None:
            self.collector.record_cache_miss()
        self._publish("cache.misses")
        bitmap = compute()
        self._insert(key, bitmap)
        return bitmap

    def put(
        self, epoch: int, elements: frozenset[Edge], bitmap: Bitmap, shard: int = 0
    ) -> None:
        """Insert a computed bitmap directly (no hit/miss accounting).

        The engine uses the :meth:`lookup` + :meth:`put` pair instead of
        :meth:`get_or_compute` when insertion is conditional — a merged
        result from a degraded (partial_ok) fan-out must never be cached.
        """
        self._insert((epoch, shard, elements), bitmap)

    def lookup(
        self, epoch: int, elements: frozenset[Edge], shard: int = 0
    ) -> Bitmap | None:
        """Probe without computing (still counted as a hit or miss)."""
        key = (epoch, shard, elements)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        if self.collector is not None:
            if cached is not None:
                self.collector.record_cache_hit()
            else:
                self.collector.record_cache_miss()
        self._publish("cache.hits" if cached is not None else "cache.misses")
        return cached

    # -- bookkeeping ---------------------------------------------------------

    def _retain(self, bitmap: Bitmap) -> Bitmap:
        """Intern ``bitmap`` by content, charging unique storage once."""
        ckey = bitmap.content_key()
        slot = self._interned.get(ckey)
        if slot is not None:
            slot[1] += 1
            return slot[0]
        self._interned[ckey] = [bitmap, 1]
        self._bytes += bitmap.nbytes()
        return bitmap

    def _release(self, bitmap: Bitmap) -> None:
        ckey = bitmap.content_key()
        slot = self._interned.get(ckey)
        if slot is None:  # pragma: no cover - defensive
            return
        slot[1] -= 1
        if slot[1] == 0:
            del self._interned[ckey]
            self._bytes -= bitmap.nbytes()

    def _insert(self, key: CacheKey, bitmap: Bitmap) -> None:
        evicted = 0
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._release(previous)
            self._entries[key] = self._retain(bitmap)
            while self._bytes > self.budget_bytes and self._entries:
                _, victim = self._entries.popitem(last=False)
                self._release(victim)
                evicted += 1
        if evicted:
            self._evictions_add(evicted)
        self._publish_gauges()

    def _evictions_add(self, n: int) -> None:
        with self._lock:
            self._evictions += n
        if self.collector is not None:
            self.collector.record_cache_eviction(n)
        self._publish("cache.evictions", n)

    # -- invalidation --------------------------------------------------------

    def drop_stale(self, current_epoch: int) -> int:
        """Drop every entry from an epoch other than ``current_epoch``.

        Correctness never depends on this — stale epochs cannot match a
        lookup — but dead entries would squat on the byte budget until LRU
        churn clears them.  Returns the number of entries dropped.
        """
        with self._lock:
            stale = [k for k in self._entries if k[0] != current_epoch]
            for key in stale:
                self._release(self._entries.pop(key))
            self._invalidations += len(stale)
        if stale:
            self._publish("cache.invalidations", len(stale))
        self._publish_gauges()
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._interned.clear()
            self._bytes = 0
        self._publish_gauges()

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def current_bytes(self) -> int:
        """Deduplicated bytes currently held (always <= budget_bytes)."""
        with self._lock:
            return self._bytes

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                entries=len(self._entries),
                unique_bitmaps=len(self._interned),
                bytes_cached=self._bytes,
            )

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = 0
            self._evictions = self._invalidations = 0

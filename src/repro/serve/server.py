"""The asyncio daemon: routes, lifecycle, and the engine bridge.

Architecture (DESIGN §7): the daemon owns *no* query logic.  One
:class:`~repro.exec.QueryExecutor` (any exec_mode, including the process
pool) does all engine work on a small thread pool bridged via
``run_in_executor`` — the event loop only parses requests, streams
responses, and watches sockets.  Three things cross the wire into the
engine:

* the **deadline** (``timeout_ms``) becomes a ``QueryContext`` deadline
  checked at every operator boundary;
* **client disconnect** fires the context's ``CancelToken`` — a per-query
  watcher task reads the idle socket, and EOF mid-query cancels the
  engine work instead of computing an answer nobody will read;
* the **tenant id** picks the admission gates (:mod:`.tenants`) the
  request must hold while the engine runs.

Large answers stream as chunked NDJSON with backpressure (every chunk
awaits ``drain()``).  If the deadline expires or the peer vanishes
*mid-stream* — after the 200 status is committed — the stream ends with
a final ``{"error": ...}`` line and the connection closes; clients
compare rows received against the header's ``count``.

Failures never escape a connection handler: typed errors become
structured JSON bodies (:func:`.codec.error_payload`), protocol
violations become :class:`.protocol.ProtocolError` responses, and the
fuzz suite asserts inflight gauges return to zero after every case.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core import PathAggregationQuery
from ..errors import AdmissionRejectedError, ReproError
from ..lang import try_unparse
from ..obs import MetricsRegistry
from ..resilience import CancelToken, QueryContext
from . import codec
from .codec import WireError, dumps, error_payload
from .protocol import (
    ChunkedWriter,
    Limits,
    ProtocolError,
    Request,
    read_request,
    render_response,
)
from .tenants import DEFAULT_TENANT, BadTenantError, TenantGate

__all__ = ["ServeConfig", "ReproServer", "ServerHandle", "start_in_thread"]


@dataclass
class ServeConfig:
    """Daemon knobs; engine knobs live on the executor it wraps."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral, read .port after start
    limits: Limits = field(default_factory=Limits)
    default_timeout_s: float | None = None   # per-query cap when body omits one
    max_timeout_s: float = 300.0             # ceiling on client-requested budgets
    drain_s: float = 5.0                     # graceful-stop wait for inflight
    engine_threads: int = 8                  # blocking-call bridge width
    stream_check_every: int = 64             # rows between mid-stream ctx checks


class _ConnState:
    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


def _route_metric(path: str) -> str:
    return path.strip("/").replace("/", "_") or "root"


class ReproServer:
    """One daemon over one executor.

    ``gate`` supplies multi-tenant admission (the executor's own
    ``admission`` should be None — the daemon gates *before* the engine,
    tenant first, so the executor never double-counts).

    ``maintainer`` is an optional
    :class:`~repro.adaptive.ViewMaintainer`: its background loop starts
    and stops with the server, and ``GET /views`` reports its status
    alongside the materialized view catalog.
    """

    def __init__(
        self,
        executor,
        registry: MetricsRegistry | None = None,
        gate: TenantGate | None = None,
        config: ServeConfig | None = None,
        maintainer=None,
    ):
        self.executor = executor
        self.maintainer = maintainer
        self.registry = registry if registry is not None else executor.registry
        if self.registry is None:
            self.registry = MetricsRegistry()
        self.gate = gate or TenantGate()
        self.config = config or ServeConfig()
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.engine_threads, thread_name_prefix="serve-engine"
        )
        self._conns: dict[asyncio.Task, _ConnState] = {}
        self._closing = False
        self._inflight = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        if self.maintainer is not None:
            self.maintainer.start()

    async def stop(self, drain_s: float | None = None) -> None:
        """Graceful stop: refuse new work, drain inflight, then cut.

        Idle keep-alive connections are closed immediately (nothing to
        drain); busy ones get up to ``drain_s`` to finish their current
        request before their tasks are cancelled.
        """
        drain_s = self.config.drain_s if drain_s is None else drain_s
        self._closing = True
        if self.maintainer is not None:
            # Joining the maintainer thread can wait out an in-flight
            # refresh; keep that off the event loop.
            await asyncio.get_running_loop().run_in_executor(
                None, self.maintainer.stop
            )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task, state in list(self._conns.items()):
            if not state.busy:
                state.writer.close()
        pending = [t for t in self._conns if not t.done()]
        if pending:
            done, pending = await asyncio.wait(pending, timeout=drain_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._pool.shutdown(wait=False)

    # -- connection handling ------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        state = _ConnState(writer)
        self._conns[task] = state
        self.registry.gauge("serve.connections").inc()
        task.add_done_callback(self._on_connection_done)

    def _on_connection_done(self, task: asyncio.Task) -> None:
        self._conns.pop(task, None)
        self.registry.gauge("serve.connections").dec()
        with contextlib.suppress(asyncio.CancelledError):
            exc = task.exception()
            if exc is not None:  # handler swallows everything; belt+braces
                self.registry.counter("serve.internal_errors").inc()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = self._conns.get(asyncio.current_task())
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.limits)
                except ProtocolError as exc:
                    await self._send_protocol_error(writer, exc)
                    if exc.fatal:
                        break
                    continue
                if request is None:
                    break
                if state is not None:
                    state.busy = True
                try:
                    keep = await self._dispatch(request, reader, writer)
                finally:
                    if state is not None:
                        state.busy = False
                if not keep or self._closing:
                    break
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _send_protocol_error(
        self, writer: asyncio.StreamWriter, exc: ProtocolError
    ) -> None:
        self.registry.counter("serve.protocol_errors").inc()
        body = dumps(
            {"error": {"code": exc.code, "message": str(exc), "exit_code": 2}}
        ).encode()
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(
                render_response(exc.status, body, keep_alive=not exc.fatal)
            )
            await writer.drain()

    # -- dispatch -----------------------------------------------------------

    _ROUTES = {
        "/query": ("POST",),
        "/aggregate": ("POST",),
        "/explain": ("POST",),
        "/append": ("POST",),
        "/materialize": ("POST",),
        "/metrics": ("GET", "HEAD"),
        "/healthz": ("GET", "HEAD"),
        "/views": ("GET", "HEAD"),
    }

    async def _dispatch(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Answer one request; returns whether to keep the connection."""
        registry = self.registry
        registry.counter("serve.requests").inc()
        if self._closing:
            return await self._send_error(
                writer, request, 503, "shutting-down", "server is draining"
            )
        allowed = self._ROUTES.get(request.path)
        if allowed is None:
            return await self._send_error(
                writer, request, 404, "not-found", f"no route {request.path!r}"
            )
        if request.method not in allowed:
            return await self._send_error(
                writer,
                request,
                405,
                "method-not-allowed",
                f"{request.path} accepts {'/'.join(allowed)}",
                extra_headers={"Allow": ", ".join(allowed)},
            )
        registry.gauge("serve.inflight").inc()
        start = time.perf_counter()
        try:
            if request.path == "/healthz":
                keep = await self._handle_healthz(request, writer)
            elif request.path == "/metrics":
                keep = await self._handle_metrics(request, writer)
            elif request.path == "/views":
                keep = await self._handle_views(request, writer)
            elif request.path in ("/query", "/aggregate"):
                keep = await self._handle_query(request, reader, writer)
            elif request.path == "/explain":
                keep = await self._handle_explain(request, writer)
            elif request.path == "/append":
                keep = await self._handle_append(request, writer)
            else:
                keep = await self._handle_materialize(request, writer)
            return keep
        except (WireError, BadTenantError, ReproError, ValueError) as exc:
            status, body = self._classify(exc)
            return await self._send_json(writer, request, status, body)
        except (ConnectionError, OSError):
            return False
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - last-ditch guard
            registry.counter("serve.internal_errors").inc()
            status, body = error_payload(exc)
            return await self._send_json(writer, request, status, body)
        finally:
            registry.gauge("serve.inflight").dec()
            registry.histogram(
                f"serve.{_route_metric(request.path)}_seconds"
            ).observe(time.perf_counter() - start)

    def _classify(self, exc: Exception) -> tuple[int, dict]:
        if isinstance(exc, BadTenantError):
            return 400, {
                "error": {"code": "bad-tenant", "message": str(exc), "exit_code": 2}
            }
        if isinstance(exc, AdmissionRejectedError):
            self.registry.counter("serve.rejects").inc()
        status, body = error_payload(exc)
        return status, body

    # -- shared helpers -----------------------------------------------------

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        request: Request,
        status: int,
        payload: dict,
        content_type: str = "application/json",
        extra_headers: dict[str, str] | None = None,
    ) -> bool:
        if status >= 400:
            self.registry.counter("serve.errors").inc()
        body = dumps(payload).encode() if isinstance(payload, dict) else payload
        keep = request.keep_alive and status < 500
        head_only = request.method == "HEAD"
        extra = dict(extra_headers or {})
        retry_after = payload.get("error", {}).get("retry_after") if isinstance(payload, dict) else None
        if status == 429 and retry_after is not None:
            extra["Retry-After"] = f"{max(retry_after, 0.0):.3f}"
        response = render_response(
            status,
            b"" if head_only else body,
            content_type=content_type,
            keep_alive=keep,
            extra_headers=extra or None,
        )
        writer.write(response)
        await writer.drain()
        self.registry.counter("serve.bytes_sent").inc(0 if head_only else len(body))
        return keep

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        request: Request,
        status: int,
        code: str,
        message: str,
        extra_headers: dict[str, str] | None = None,
    ) -> bool:
        return await self._send_json(
            writer,
            request,
            status,
            {"error": {"code": code, "message": message, "exit_code": 2}},
            extra_headers=extra_headers,
        )

    def _tenant_of(self, request: Request, payload: dict | None) -> str:
        tenant = None
        if payload is not None:
            tenant = payload.get("tenant")
        if tenant is None:
            tenant = request.headers.get("x-repro-tenant", DEFAULT_TENANT)
        try:
            return TenantGate.validate(tenant)
        except BadTenantError as exc:
            raise WireError(400, "bad-tenant", str(exc)) from None

    def _timeout_of(self, payload: dict) -> float | None:
        raw = payload.get("timeout_ms")
        if raw is None:
            return self.config.default_timeout_s
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw <= 0:
            raise WireError(
                400, "bad-request", f'"timeout_ms" must be a positive number: {raw!r}'
            )
        return min(raw / 1000.0, self.config.max_timeout_s)

    async def _in_engine(self, fn):
        assert self._loop is not None
        return await self._loop.run_in_executor(self._pool, fn)

    @staticmethod
    def _watch_disconnect(
        reader: asyncio.StreamReader, token: CancelToken
    ) -> asyncio.Task:
        """EOF on the request socket while the engine runs → cancel.

        If the peer instead *sends* bytes early (pipelining, which this
        server does not support), the connection is marked for close by
        the caller — the stolen byte never corrupts framing because the
        connection never reads another request.
        """

        async def watch() -> None:
            data = await reader.read(1)
            if not data:
                token.cancel()

        return asyncio.ensure_future(watch())

    async def _finish_watcher(self, watcher: asyncio.Task) -> bool:
        """Reap the disconnect watcher; returns keep_alive permission."""
        if not watcher.done():
            watcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await watcher
            return True
        return False  # EOF or early bytes: either way, close

    # -- route handlers -----------------------------------------------------

    async def _handle_healthz(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        engine = self.executor.engine
        payload = {
            "status": "draining" if self._closing else "ok",
            "epoch": self.executor.epoch,
            "n_records": engine.n_records,
            "n_shards": getattr(engine, "n_shards", 1),
            "inflight": self.gate.inflight(),
            "admission": self.gate.stats(),
        }
        return await self._send_json(writer, request, 200, payload)

    async def _handle_views(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """The materialized view catalog plus adaptive-maintainer status."""

        def snapshot():
            engine = self.executor.engine
            graph = [
                {
                    "name": name,
                    "elements": [list(e) for e in sorted(view.elements, key=repr)],
                }
                for name, view in sorted(engine.graph_views.items())
            ]
            agg = [
                {
                    "name": name,
                    "function": view.function,
                    "path": [list(e) for e in view.path.edges()],
                }
                for name, view in sorted(engine.aggregate_views.items())
            ]
            return graph, agg

        graph, agg = await self._in_engine(snapshot)
        payload = {
            "epoch": self.executor.epoch,
            "graph_views": graph,
            "aggregate_views": agg,
            "adaptive": (
                self.maintainer.status() if self.maintainer is not None else None
            ),
        }
        return await self._send_json(writer, request, 200, payload)

    async def _handle_metrics(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        if request.params.get("format") == "json":
            body = self.registry.to_json(indent=None).encode()
            ctype = "application/json"
        else:
            body = self.registry.render().encode()
            ctype = "text/plain; charset=utf-8"
        response = render_response(
            200,
            b"" if request.method == "HEAD" else body,
            content_type=ctype,
            keep_alive=request.keep_alive,
        )
        writer.write(response)
        await writer.drain()
        return request.keep_alive

    _QUERY_FIELDS = ("q", "elements", "fetch_measures", "timeout_ms", "partial_ok", "tenant")
    _AGG_FIELDS = _QUERY_FIELDS + ("function",)

    async def _handle_query(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        is_aggregate = request.path == "/aggregate"
        payload = codec.parse_body(request.body)
        codec.check_fields(
            payload, self._AGG_FIELDS if is_aggregate else self._QUERY_FIELDS
        )
        query = codec.build_query(payload)
        if is_aggregate != isinstance(query, PathAggregationQuery):
            want = "a path aggregation" if is_aggregate else "a graph query"
            raise WireError(
                400, "bad-query", f"{request.path} wants {want}, got the other kind"
            )
        tenant = self._tenant_of(request, payload)
        fetch_measures = payload.get("fetch_measures", True)
        if not isinstance(fetch_measures, bool):
            raise WireError(400, "bad-request", '"fetch_measures" must be a boolean')
        partial_ok = payload.get("partial_ok", False)
        if not isinstance(partial_ok, bool):
            raise WireError(400, "bad-request", '"partial_ok" must be a boolean')
        timeout = self._timeout_of(payload)

        token = CancelToken()
        ctx = QueryContext.start(timeout=timeout, token=token, partial_ok=partial_ok)
        nbytes = max(self.executor.engine.n_records // 8, 1)
        watcher = self._watch_disconnect(reader, token)

        def work():
            # The admission slot covers the request's whole lifetime —
            # engine execution AND response streaming — so a slow consumer
            # of a large answer occupies one inflight slot, not merely an
            # instant of engine time.  Entered here (blocking, bounded
            # wait — must stay off the loop) and closed after the stream.
            permit = contextlib.ExitStack()
            permit.enter_context(self.gate.admit(tenant, nbytes))
            try:
                result = self.executor.run_one(
                    query, fetch_measures=fetch_measures, ctx=ctx
                )
            except BaseException:
                permit.close()
                raise
            return result, permit

        permit = None
        try:
            try:
                result, permit = await self._in_engine(work)
            finally:
                stream_ok = await self._finish_watcher(watcher)
            # (errors raised by work() propagate to _dispatch's classifier)

            if is_aggregate:
                header = codec.encode_agg_header(result)
                rows = codec.iter_agg_rows(result)
            else:
                header = codec.encode_graph_header(result)
                rows = codec.iter_graph_rows(result)
            keep = stream_ok and request.keep_alive
            return await self._stream_ndjson(writer, header, rows, ctx, keep)
        finally:
            if permit is not None:
                permit.close()

    async def _stream_ndjson(
        self,
        writer: asyncio.StreamWriter,
        header: dict,
        rows,
        ctx: QueryContext,
        keep_alive: bool,
    ) -> bool:
        """Header line + row lines as one chunked NDJSON response.

        The context is re-checked every ``stream_check_every`` rows: a
        deadline that expires or a token that fires mid-stream truncates
        the answer with a final error line (the 200 is already on the
        wire) and closes the connection.
        """
        chunked = ChunkedWriter(writer)
        registry = self.registry
        check_every = max(self.config.stream_check_every, 1)
        try:
            await chunked.start(200, keep_alive=keep_alive)
            await chunked.send((dumps(header) + "\n").encode())
            buffer: list[str] = []
            sent = 0
            for row in rows:
                buffer.append(dumps(row))
                if len(buffer) >= check_every:
                    ctx.check()
                    await chunked.send(("\n".join(buffer) + "\n").encode())
                    sent += len(buffer)
                    buffer.clear()
            if buffer:
                await chunked.send(("\n".join(buffer) + "\n").encode())
            await chunked.finish()
        except ReproError as exc:  # mid-stream timeout/cancel
            status, body = self._classify(exc)
            registry.counter("serve.stream_truncated").inc()
            with contextlib.suppress(ConnectionError, OSError):
                await chunked.send((dumps(body) + "\n").encode())
                await chunked.finish()
            keep_alive = False
        except (ConnectionError, OSError):
            keep_alive = False
        finally:
            registry.counter("serve.bytes_streamed").inc(chunked.bytes_sent)
        return keep_alive

    _EXPLAIN_FIELDS = ("q", "elements", "function", "analyze", "fmt", "tenant")

    async def _handle_explain(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        payload = codec.parse_body(request.body)
        codec.check_fields(payload, self._EXPLAIN_FIELDS)
        query = codec.build_query(payload)
        tenant = self._tenant_of(request, payload)
        analyze = payload.get("analyze", False)
        fmt = payload.get("fmt", "text")
        if not isinstance(analyze, bool):
            raise WireError(400, "bad-request", '"analyze" must be a boolean')
        if fmt not in ("text", "json"):
            raise WireError(400, "bad-request", '"fmt" must be "text" or "json"')
        nbytes = max(self.executor.engine.n_records // 8, 1) if analyze else 0

        def work():
            with self.gate.admit(tenant, nbytes):
                return self.executor.explain(query, analyze=analyze, fmt=fmt)

        text = await self._in_engine(work)
        # The canonical spelling re-parses to the same plan, so clients
        # can round-trip what they asked for (None for non-text labels).
        canonical = try_unparse(query)
        return await self._send_json(
            writer,
            request,
            200,
            {
                "explain": text,
                "fmt": fmt,
                "epoch": self.executor.epoch,
                "query": canonical,
            },
        )

    async def _handle_append(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        payload = codec.parse_body(request.body)
        codec.check_fields(payload, ("records", "tenant"))
        records = codec.build_records(payload)
        tenant = self._tenant_of(request, payload)

        def work():
            # Writes hold a tenant admission slot too: a tenant cannot
            # sidestep its budget by hammering the write path.
            with self.gate.admit(tenant, 0):
                return self.executor.append_records(records)

        appended = await self._in_engine(work)
        self.registry.counter("serve.records_appended").inc(appended)
        return await self._send_json(
            writer,
            request,
            200,
            {"appended": appended, "epoch": self.executor.epoch},
        )

    _MATERIALIZE_FIELDS = (
        "kind", "workload", "budget", "method", "min_support",
        "function", "max_path_length", "tenant",
    )

    async def _handle_materialize(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        payload = codec.parse_body(request.body)
        codec.check_fields(payload, self._MATERIALIZE_FIELDS)
        kind = payload.get("kind")
        if kind == "drop":
            tenant = self._tenant_of(request, payload)

            def drop():
                with self.gate.admit(tenant, 0):
                    self.executor.drop_all_views()

            await self._in_engine(drop)
            return await self._send_json(
                writer, request, 200, {"dropped": True, "epoch": self.executor.epoch}
            )
        if kind not in ("graph", "aggregate"):
            raise WireError(
                400, "bad-request", '"kind" must be "graph", "aggregate", or "drop"'
            )
        raw_workload = payload.get("workload")
        if not isinstance(raw_workload, list) or not raw_workload:
            raise WireError(400, "bad-request", '"workload" must be a non-empty array')
        workload = []
        for entry in raw_workload:
            if isinstance(entry, str):
                sub = {"q": entry}
            elif isinstance(entry, list):
                sub = {"elements": entry}
            else:
                raise WireError(
                    400, "bad-request", f"workload entry must be DSL or elements: {entry!r}"
                )
            workload.append(codec.build_query(sub))
        budget = payload.get("budget", 1)
        if isinstance(budget, bool) or not isinstance(budget, int) or budget < 1:
            raise WireError(400, "bad-request", '"budget" must be a positive integer')
        tenant = self._tenant_of(request, payload)

        def work():
            with self.gate.admit(tenant, 0):
                if kind == "graph":
                    kwargs = {}
                    if "method" in payload:
                        kwargs["method"] = payload["method"]
                    if "min_support" in payload:
                        kwargs["min_support"] = payload["min_support"]
                    return self.executor.materialize_graph_views(
                        workload, budget, **kwargs
                    )
                kwargs = {}
                if "function" in payload:
                    kwargs["function"] = payload["function"]
                if "max_path_length" in payload:
                    kwargs["max_path_length"] = payload["max_path_length"]
                return self.executor.materialize_aggregate_views(
                    workload, budget, **kwargs
                )

        report = await self._in_engine(work)
        doc = dataclasses.asdict(report) if dataclasses.is_dataclass(report) else {}
        doc = {k: v for k, v in doc.items() if isinstance(v, (str, int, float, bool))}
        doc["epoch"] = self.executor.epoch
        return await self._send_json(writer, request, 200, doc)


# -- thread-hosted lifecycle (tests, benchmarks, CLI) -------------------------


class ServerHandle:
    """A running daemon on a background event-loop thread.

    The test client and benchmarks talk to ``handle.address`` over real
    sockets; :meth:`stop` drains and joins.  Context-manager friendly.
    """

    def __init__(self, server: ReproServer, loop: asyncio.AbstractEventLoop, thread):
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.server.config.host, self.port)

    def stop(self, drain_s: float | None = None) -> None:
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain_s), self._loop
        )
        future.result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    executor,
    registry: MetricsRegistry | None = None,
    gate: TenantGate | None = None,
    config: ServeConfig | None = None,
    maintainer=None,
) -> ServerHandle:
    """Start a daemon on its own event-loop thread and wait until it
    accepts connections."""
    server = ReproServer(
        executor, registry=registry, gate=gate, config=config, maintainer=maintainer
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            try:
                await server.start()
            except BaseException as exc:  # surface bind errors to the caller
                failure.append(exc)
            finally:
                started.set()

        loop.run_until_complete(boot())
        if not failure:
            loop.run_forever()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    started.wait(timeout=10)
    if failure:
        thread.join(timeout=5)
        loop.close()
        raise failure[0]
    return ServerHandle(server, loop, thread)

"""Per-tenant admission accounting for the daemon.

Every request names a tenant (the ``tenant`` body field or the
``X-Repro-Tenant`` header; ``"default"`` otherwise) and must pass *two*
gates to run: the tenant's own :class:`AdmissionController` and the
process-wide shared one.  The tenant gate is acquired first — a tenant
that has exhausted its budget is rejected before it can occupy a shared
slot, so one noisy tenant cannot starve the rest (the lifecycle suite
holds tenant B's throughput to this while tenant A is saturated).

Tenant controllers are created lazily from one template config, capped at
``max_tenants`` distinct ids so an attacker cycling random tenant names
cannot grow the map without bound.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..resilience import AdmissionController

__all__ = ["TenantPolicy", "TenantGate", "BadTenantError"]

# Tenant ids are opaque tokens, not paths or header injection vectors.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

DEFAULT_TENANT = "default"


class BadTenantError(ValueError):
    """A tenant id the gate refuses to account for."""


@dataclass
class TenantPolicy:
    """Template for the lazily created per-tenant controllers."""

    max_inflight: int | None = None
    rate: float | None = None
    burst: float | None = None
    max_wait_s: float = 0.0
    max_bytes: int | None = None
    max_tenants: int = 1024

    @property
    def unlimited(self) -> bool:
        return (
            self.max_inflight is None
            and self.rate is None
            and self.max_bytes is None
        )

    def build(self) -> AdmissionController:
        return AdmissionController(
            max_inflight=self.max_inflight,
            rate=self.rate,
            burst=self.burst,
            max_wait_s=self.max_wait_s,
            max_bytes=self.max_bytes,
        )


class TenantGate:
    """The two-stage admission gate: per-tenant, then shared.

    ``shared`` may be None (no global gate); per-tenant controllers are
    only materialized when the policy actually limits something, so the
    ungoverned configuration costs one dict lookup per request.
    """

    def __init__(
        self,
        shared: AdmissionController | None = None,
        policy: TenantPolicy | None = None,
    ):
        self.shared = shared
        self.policy = policy or TenantPolicy()
        self._tenants: dict[str, AdmissionController] = {}
        self._lock = threading.Lock()

    @staticmethod
    def validate(tenant: str) -> str:
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            raise BadTenantError(
                f"invalid tenant id: {tenant!r} (want 1-64 chars of [A-Za-z0-9._-])"
            )
        return tenant

    def controller_for(self, tenant: str) -> AdmissionController | None:
        """The tenant's controller, created on first use; None when the
        policy is unlimited (nothing to account)."""
        if self.policy.unlimited:
            return None
        with self._lock:
            ctrl = self._tenants.get(tenant)
            if ctrl is None:
                if len(self._tenants) >= self.policy.max_tenants:
                    raise BadTenantError(
                        f"tenant table full ({self.policy.max_tenants} ids); "
                        f"refusing new tenant {tenant!r}"
                    )
                ctrl = self.policy.build()
                self._tenants[tenant] = ctrl
            return ctrl

    @contextmanager
    def admit(self, tenant: str, nbytes: int = 0) -> Iterator[None]:
        """Hold both gates for the duration of one query.

        Tenant first: an AdmissionRejectedError from the tenant gate is
        raised before the shared gate is touched, and the shared slot is
        released before the tenant slot on exit (strict nesting).
        """
        ctrl = self.controller_for(self.validate(tenant))
        if ctrl is None:
            if self.shared is None:
                yield
                return
            with self.shared.admit(nbytes):
                yield
            return
        with ctrl.admit(nbytes):
            if self.shared is None:
                yield
            else:
                with self.shared.admit(nbytes):
                    yield

    def inflight(self) -> int:
        """Total inflight across all gates — the leak probe the fuzz
        suite asserts returns to zero."""
        total = self.shared.stats.inflight if self.shared is not None else 0
        with self._lock:
            tenants = list(self._tenants.values())
        return total + sum(c.stats.inflight for c in tenants)

    def stats(self) -> dict:
        out: dict = {}
        if self.shared is not None:
            s = self.shared.stats
            out["shared"] = {
                "admitted": s.admitted,
                "rejected": s.rejected,
                "inflight": s.inflight,
                "bytes_inflight": s.bytes_inflight,
            }
        with self._lock:
            tenants = dict(self._tenants)
        out["tenants"] = {
            name: {
                "admitted": c.stats.admitted,
                "rejected": c.stats.rejected,
                "inflight": c.stats.inflight,
            }
            for name, c in sorted(tenants.items())
        }
        return out

"""``repro.serve`` — the network front-end over the query executor.

The engine stays a library; this package puts a daemon in front of it:

* :mod:`.protocol` — hand-rolled HTTP/1.1 over asyncio streams with hard
  request limits and chunked NDJSON streaming (stdlib only);
* :mod:`.codec` — the JSON wire format, bit-exact for floats and node
  labels, with stable machine-readable error codes;
* :mod:`.tenants` — per-tenant + shared admission gates;
* :mod:`.server` — routes, lifecycle, the asyncio↔engine bridge, and
  ``serve.*`` metrics;
* :mod:`.client` — the minimal blocking client the over-the-wire
  differential suite and benchmarks drive the daemon with.

Start one with ``repro serve DIRECTORY`` or, in-process::

    from repro.serve import ServeClient, start_in_thread
    handle = start_in_thread(executor)
    with ServeClient(*handle.address) as client:
        result = client.query({"q": "(a - b)"})
    handle.stop()
"""

from .client import ServeClient, ServeHTTPError, StreamTruncatedError
from .codec import WireAggregationResult, WireError, WireGraphResult
from .protocol import Limits, ProtocolError
from .server import ReproServer, ServeConfig, ServerHandle, start_in_thread
from .tenants import BadTenantError, TenantGate, TenantPolicy

__all__ = [
    "ReproServer",
    "ServeConfig",
    "ServerHandle",
    "start_in_thread",
    "ServeClient",
    "ServeHTTPError",
    "StreamTruncatedError",
    "TenantGate",
    "TenantPolicy",
    "BadTenantError",
    "Limits",
    "ProtocolError",
    "WireError",
    "WireGraphResult",
    "WireAggregationResult",
]

"""JSON wire codec: queries, answers, and errors as stable documents.

The daemon's contract is that a decoded wire answer is *bit-identical*
to the in-process result — the over-the-wire differential suite holds it
to the same RowStore oracle as the library.  Two details make that
exact:

* **Floats** ride through ``repr``-based JSON (Python's ``json`` emits
  the shortest round-tripping decimal for a double), and the three
  non-JSON values are escaped as the strings ``"NaN"`` /
  ``"Infinity"`` / ``"-Infinity"`` — the engine uses NaN for "record
  lacks this measure", so the sentinel must survive the wire.
* **Node labels** keep their Python type: JSON distinguishes ``2093``
  from ``"2093"``, and elements travel as two-item ``[u, v]`` arrays, so
  decoded queries and answers hash and compare equal to the originals.

Streamed answers are NDJSON: one header object (count, epoch, element /
path schema, degraded report), then one row object per matching record.
Errors map the typed hierarchy onto stable machine codes and HTTP
statuses; ``exit_code`` mirrors the CLI so scripted clients can branch
identically on either surface.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable, Iterator

import numpy as np

from ..core import GraphQuery, GraphRecord, PathAggregationQuery
from ..core.aggregates import FUNCTIONS
from ..core.engine import GraphQueryResult, PathAggregationResult
from ..core.paths import Path
from ..core.query import QueryExpr
from ..lang import parse_statement
from ..errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    IngestError,
    QueryCancelledError,
    QuerySyntaxError,
    QueryTimeoutError,
    ReproError,
    ShardExecutionError,
    exit_code_for,
)
from ..resilience import DegradedReport, SkippedShard

__all__ = [
    "WireError",
    "build_query",
    "build_records",
    "encode_graph_header",
    "encode_agg_header",
    "iter_graph_rows",
    "iter_agg_rows",
    "decode_graph_payload",
    "decode_agg_payload",
    "error_payload",
    "WireGraphResult",
    "WireAggregationResult",
]


class WireError(ReproError):
    """A request body the handlers must refuse; carries the HTTP status
    and stable error code for the structured response."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


# -- float escaping -----------------------------------------------------------


def _enc_float(value: float) -> float | str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


_SPECIALS = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}


def _dec_float(value) -> float:
    if isinstance(value, str):
        return _SPECIALS[value]
    return float(value)


def dumps(obj) -> str:
    """Compact deterministic JSON (no whitespace, keys as given).

    ``allow_nan=False`` is deliberate: any non-finite float must have
    been escaped already; leaking a bare NaN would emit JavaScript-style
    ``NaN`` that strict parsers reject.
    """
    return json.dumps(obj, separators=(",", ":"), allow_nan=False)


# -- queries ------------------------------------------------------------------


def _element(item) -> tuple:
    if (
        not isinstance(item, (list, tuple))
        or len(item) != 2
        or not all(isinstance(n, (str, int)) for n in item)
    ):
        raise WireError(
            400, "bad-query", f"element must be a [u, v] pair of labels: {item!r}"
        )
    return tuple(item)


def build_query(payload: dict) -> QueryExpr | PathAggregationQuery:
    """A servable query object from a request document.

    Two spellings: ``{"q": "<DSL text>"}`` (anything the CLI accepts,
    including boolean combinators and ``SUM A -> B`` aggregations) or the
    structural form ``{"elements": [[u, v], ...]}``, optionally with
    ``"function"`` for a path aggregation.  The structural form keeps
    node-label types exact, which DSL text cannot (it reads every label
    as a string).
    """
    if not isinstance(payload, dict):
        raise WireError(400, "bad-query", "request body must be a JSON object")
    text = payload.get("q")
    if text is not None:
        if not isinstance(text, str):
            raise WireError(400, "bad-query", '"q" must be a DSL string')
        try:
            # repro.lang auto-detects aggregations (a leading bare word
            # naming a registered aggregate function).
            return parse_statement(text)
        except QuerySyntaxError as exc:
            raise WireError(400, "bad-query", str(exc)) from None
    elements = payload.get("elements")
    if elements is None:
        raise WireError(400, "bad-query", 'request needs "q" or "elements"')
    if not isinstance(elements, list) or not elements:
        raise WireError(400, "bad-query", '"elements" must be a non-empty array')
    try:
        query = GraphQuery([_element(e) for e in elements])
    except (TypeError, ValueError) as exc:
        raise WireError(400, "bad-query", str(exc)) from None
    function = payload.get("function")
    if function is None:
        return query
    if not isinstance(function, str) or function.lower() not in FUNCTIONS:
        raise WireError(
            400, "bad-query", f"unknown aggregate function: {function!r}"
        )
    return PathAggregationQuery(query, function.lower())


def build_records(payload: dict) -> list[GraphRecord]:
    """Graph records for ``/append``: ``{"records": [{"id": ...,
    "measures": [[u, v, value], ...]}, ...]}``."""
    if not isinstance(payload, dict) or not isinstance(payload.get("records"), list):
        raise WireError(400, "bad-records", 'body needs a "records" array')
    records = []
    for item in payload["records"]:
        if not isinstance(item, dict) or "id" not in item:
            raise WireError(400, "bad-records", f"record needs an id: {item!r}")
        measures = item.get("measures")
        if not isinstance(measures, list) or not measures:
            raise WireError(
                400, "bad-records", f"record {item['id']!r} needs measures"
            )
        cells = {}
        for entry in measures:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise WireError(
                    400, "bad-records", f"measure must be [u, v, value]: {entry!r}"
                )
            u, v, value = entry
            try:
                cells[_element((u, v))] = _dec_float(value)
            except (KeyError, TypeError, ValueError):
                raise WireError(
                    400, "bad-records", f"bad measure value: {entry!r}"
                ) from None
        try:
            records.append(GraphRecord(item["id"], cells))
        except (TypeError, ValueError) as exc:
            raise WireError(400, "bad-records", str(exc)) from None
    if not records:
        raise WireError(400, "bad-records", "no records to append")
    return records


# -- answers ------------------------------------------------------------------


def _encode_degraded(report) -> dict | None:
    if report is None:
        return None
    return {
        "skipped": [
            {"shard": s.shard, "start": s.start, "stop": s.stop, "error": s.error}
            for s in report.skipped
        ],
        "n_records_skipped": report.n_records_skipped,
    }


def _decode_degraded(payload) -> DegradedReport | None:
    if payload is None:
        return None
    return DegradedReport(
        skipped=tuple(
            SkippedShard(
                shard=s["shard"], start=s["start"], stop=s["stop"], error=s["error"]
            )
            for s in payload["skipped"]
        )
    )


def encode_graph_header(result: GraphQueryResult) -> dict:
    """The NDJSON header line for a graph answer: the row schema is the
    ``elements`` order, which every ``m`` row array follows."""
    elements = sorted(result.measures.keys(), key=repr)
    return {
        "kind": "graph",
        "count": len(result),
        "epoch": result.epoch,
        "elements": [list(e) for e in elements],
        "degraded": _encode_degraded(result.degraded),
    }


def iter_graph_rows(result: GraphQueryResult) -> Iterator[dict]:
    elements = sorted(result.measures.keys(), key=repr)
    columns = [result.measures[e] for e in elements]
    for i, record_id in enumerate(result.record_ids):
        yield {
            "id": record_id,
            "m": [_enc_float(col[i]) for col in columns],
        }


def encode_agg_header(result: PathAggregationResult) -> dict:
    paths = sorted(result.path_values.keys(), key=repr)
    return {
        "kind": "aggregate",
        "count": len(result),
        "epoch": result.epoch,
        "function": result.query.function,
        "paths": [
            {
                "nodes": list(p.nodes),
                "open_start": p.open_start,
                "open_end": p.open_end,
            }
            for p in paths
        ],
        "degraded": _encode_degraded(result.degraded),
    }


def iter_agg_rows(result: PathAggregationResult) -> Iterator[dict]:
    paths = sorted(result.path_values.keys(), key=repr)
    columns = [result.path_values[p] for p in paths]
    for i, record_id in enumerate(result.record_ids):
        yield {
            "id": record_id,
            "v": [_enc_float(col[i]) for col in columns],
        }


class WireGraphResult:
    """Decoded graph answer: the same read surface as
    :class:`~repro.core.engine.GraphQueryResult` (record_ids, measures,
    epoch, degraded, len)."""

    def __init__(self, header: dict, rows: list[dict]):
        self.epoch = header["epoch"]
        self.degraded = _decode_degraded(header.get("degraded"))
        self.count = header["count"]
        elements = [tuple(e) for e in header["elements"]]
        self.record_ids = [row["id"] for row in rows]
        self.measures = {
            element: np.array(
                [_dec_float(row["m"][j]) for row in rows], dtype=np.float64
            )
            for j, element in enumerate(elements)
        }

    def __len__(self) -> int:
        return self.count


class WireAggregationResult:
    """Decoded aggregation answer mirroring
    :class:`~repro.core.engine.PathAggregationResult`."""

    def __init__(self, header: dict, rows: list[dict]):
        self.epoch = header["epoch"]
        self.degraded = _decode_degraded(header.get("degraded"))
        self.count = header["count"]
        self.function = header.get("function")
        paths = [
            Path(p["nodes"], open_start=p["open_start"], open_end=p["open_end"])
            for p in header["paths"]
        ]
        self.record_ids = [row["id"] for row in rows]
        self.path_values = {
            path: np.array(
                [_dec_float(row["v"][j]) for row in rows], dtype=np.float64
            )
            for j, path in enumerate(paths)
        }

    def __len__(self) -> int:
        return self.count


def decode_graph_payload(lines: list[str]) -> WireGraphResult:
    header, *rows = [json.loads(line) for line in lines]
    return WireGraphResult(header, rows)


def decode_agg_payload(lines: list[str]) -> WireAggregationResult:
    header, *rows = [json.loads(line) for line in lines]
    return WireAggregationResult(header, rows)


# -- errors -------------------------------------------------------------------

# (HTTP status, stable code) per failure class, most specific first.  The
# codes — like the CLI exit codes they ride alongside — are API surface:
# changing one breaks clients, so additions only.
_ERROR_TABLE: tuple[tuple[type, int, str], ...] = (
    (QueryTimeoutError, 504, "timeout"),
    (QueryCancelledError, 499, "cancelled"),
    (AdmissionRejectedError, 429, "admission-rejected"),
    (CircuitOpenError, 503, "circuit-open"),
    (ShardExecutionError, 502, "shard-failed"),
    (QuerySyntaxError, 400, "bad-query"),
    (IngestError, 400, "bad-records"),
    (ReproError, 500, "internal"),
)


def error_payload(exc: Exception) -> tuple[int, dict]:
    """``(http_status, body)`` for any failure the handlers surface.

    The body is ``{"error": {"code", "message", "exit_code", ...}}``;
    ``exit_code`` mirrors :func:`repro.errors.exit_code_for`, so a script
    driving the HTTP surface and one driving the CLI branch identically.
    """
    if isinstance(exc, WireError):
        status, code = exc.status, exc.code
    else:
        for klass, status, code in _ERROR_TABLE:
            if isinstance(exc, klass):
                break
        else:
            status, code = 500, "internal"
    detail: dict = {
        "code": code,
        "message": str(exc) or type(exc).__name__,
        "exit_code": exit_code_for(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        detail["retry_after"] = retry_after
    if isinstance(exc, ShardExecutionError):
        detail["shard"] = exc.shard
        detail["record_range"] = [exc.start, exc.stop]
    return status, {"error": detail}


def parse_body(body: bytes) -> dict:
    """The request body as a JSON object, or a typed refusal."""
    if not body:
        raise WireError(400, "bad-json", "empty request body")
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(400, "bad-json", f"request body is not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise WireError(400, "bad-json", "request body must be a JSON object")
    return payload


def check_fields(payload: dict, allowed: Iterable[str]) -> None:
    """Refuse unknown fields: typos ('timeout' for 'timeout_ms') must fail
    loudly, not silently serve with the default."""
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise WireError(
            400, "unknown-field", f"unknown field(s): {', '.join(map(repr, unknown))}"
        )

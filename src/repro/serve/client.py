"""A minimal blocking HTTP client for the daemon — tests and benchmarks.

Deliberately not a general HTTP client: it speaks exactly the subset the
server emits (fixed-length JSON responses and chunked NDJSON streams)
over a plain socket, so the differential suite exercises the real wire —
real TCP, real chunk framing — rather than an in-process shortcut.

``ServeClient.query`` / ``aggregate`` return decoded
:class:`~repro.serve.codec.WireGraphResult` /
:class:`~repro.serve.codec.WireAggregationResult` objects whose surface
matches the library results, or raise :class:`ServeHTTPError` carrying
the structured error body.  ``raw`` methods expose status + body for the
protocol tests.
"""

from __future__ import annotations

import json
import socket

from . import codec
from .codec import WireAggregationResult, WireGraphResult, dumps

__all__ = ["ServeClient", "ServeHTTPError", "StreamTruncatedError"]


class ServeHTTPError(Exception):
    """A structured error response (any 4xx/5xx)."""

    def __init__(self, status: int, error: dict):
        self.status = status
        self.error = error or {}
        self.code = self.error.get("code", "unknown")
        self.exit_code = self.error.get("exit_code")
        super().__init__(f"HTTP {status} {self.code}: {self.error.get('message', '')}")


class StreamTruncatedError(ServeHTTPError):
    """A 200 stream that ended with an error line instead of completing."""

    def __init__(self, error: dict, lines: list[str]):
        super().__init__(200, error)
        self.lines = lines


class _Response:
    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        return json.loads(self.body)


class ServeClient:
    """One keep-alive connection to a running daemon."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None

    # -- plumbing -----------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def send_raw(self, data: bytes) -> None:
        """Ship arbitrary bytes — the fuzz suite's entry point."""
        self._connect().sendall(data)

    def _read_line(self, sock: socket.socket) -> bytes:
        chunks = bytearray()
        while True:
            b = sock.recv(1)
            if not b:
                raise ConnectionError("connection closed mid-response")
            chunks += b
            if chunks.endswith(b"\r\n"):
                return bytes(chunks[:-2])

    def _read_exact(self, sock: socket.socket, n: int) -> bytes:
        out = bytearray()
        while len(out) < n:
            part = sock.recv(n - len(out))
            if not part:
                raise ConnectionError("connection closed mid-body")
            out += part
        return bytes(out)

    def read_response(self) -> _Response:
        """Parse one response (fixed-length or chunked) off the socket."""
        sock = self._connect()
        status_line = self._read_line(sock)
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = self._read_line(sock)
            if not line:
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding", "").lower() == "chunked":
            body = bytearray()
            while True:
                size = int(self._read_line(sock), 16)
                if size == 0:
                    self._read_line(sock)  # trailing CRLF after last chunk
                    break
                body += self._read_exact(sock, size)
                self._read_line(sock)  # chunk-terminating CRLF
            payload = bytes(body)
        else:
            payload = self._read_exact(sock, int(headers.get("content-length", "0")))
        if headers.get("connection", "").lower() == "close":
            self.close()
        return _Response(status, headers, payload)

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> _Response:
        body = dumps(payload).encode() if payload is not None else b""
        lines = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        if body:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        # One request at a time per connection; reconnect transparently if
        # the server closed the previous keep-alive cycle.
        try:
            self.send_raw(head + body)
            return self.read_response()
        except (ConnectionError, BrokenPipeError):
            self.close()
            self.send_raw(head + body)
            return self.read_response()

    # -- typed surface ------------------------------------------------------

    @staticmethod
    def _lines_of(response: _Response) -> list[str]:
        text = response.body.decode("utf-8")
        return [line for line in text.split("\n") if line]

    @classmethod
    def _check_stream(cls, response: _Response) -> list[str]:
        lines = cls._lines_of(response)
        if response.status != 200:
            raise ServeHTTPError(response.status, response.json().get("error", {}))
        if lines:
            last = json.loads(lines[-1])
            if isinstance(last, dict) and "error" in last:
                raise StreamTruncatedError(last["error"], lines[:-1])
        return lines

    def query(self, payload: dict, **kw) -> WireGraphResult:
        response = self.request("POST", "/query", payload, **kw)
        return codec.decode_graph_payload(self._check_stream(response))

    def aggregate(self, payload: dict, **kw) -> WireAggregationResult:
        response = self.request("POST", "/aggregate", payload, **kw)
        return codec.decode_agg_payload(self._check_stream(response))

    def _json_or_raise(self, response: _Response) -> dict:
        doc = response.json()
        if response.status != 200:
            raise ServeHTTPError(response.status, doc.get("error", {}))
        return doc

    def explain(self, payload: dict, **kw) -> dict:
        return self._json_or_raise(self.request("POST", "/explain", payload, **kw))

    def append(self, records: list[dict], **kw) -> dict:
        return self._json_or_raise(
            self.request("POST", "/append", {"records": records}, **kw)
        )

    def materialize(self, payload: dict, **kw) -> dict:
        return self._json_or_raise(
            self.request("POST", "/materialize", payload, **kw)
        )

    def healthz(self) -> dict:
        return self._json_or_raise(self.request("GET", "/healthz"))

    def views(self) -> dict:
        return self._json_or_raise(self.request("GET", "/views"))

    def metrics(self) -> dict:
        return self._json_or_raise(self.request("GET", "/metrics?format=json"))

"""A minimal HTTP/1.1 layer over asyncio streams.

The daemon speaks plain JSON-on-HTTP so ``curl`` works out of the box,
but the repo bakes in no web framework — this module is the whole wire
protocol: a hand-rolled request parser with hard limits on every
dimension an untrusted peer controls (request-line length, header count
and size, body size), and a chunked-transfer writer used to stream large
answer sets as NDJSON without knowing their length up front.

Parsing failures raise :class:`ProtocolError` carrying the HTTP status
and a stable machine-readable ``code``; the server turns them into
structured JSON error responses.  The parser never raises anything else
on malformed input — the protocol fuzz suite holds it to that.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import unquote

__all__ = [
    "HTTP_REASONS",
    "Limits",
    "ProtocolError",
    "Request",
    "read_request",
    "render_response",
    "ChunkedWriter",
]

HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    499: "Client Closed Request",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_METHODS = ("GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH")


class ProtocolError(Exception):
    """A request the HTTP layer itself must refuse.

    ``status`` is the HTTP status to answer with; ``code`` is the stable
    error code the JSON body carries.  ``fatal`` marks violations after
    which the connection's framing can no longer be trusted (a torn body,
    an oversized line) — the server closes instead of keeping alive.
    """

    def __init__(self, status: int, code: str, message: str, fatal: bool = True):
        super().__init__(message)
        self.status = status
        self.code = code
        self.fatal = fatal


@dataclass
class Limits:
    """Hard ceilings on what one request may ask the parser to hold."""

    max_line_bytes: int = 8192        # request line or one header line
    max_headers: int = 64
    max_body_bytes: int = 8 << 20     # JSON request bodies; not responses
    header_timeout_s: float = 30.0    # idle keep-alive connections reaped


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str                       # raw request target, e.g. /query?x=1
    path: str                         # target without the query string
    params: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)  # lower-cased keys
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    """One CRLF-terminated line, or a ProtocolError when it exceeds
    ``limit`` (readuntil's own limit would raise LimitOverrunError with
    half-consumed state, so bound it explicitly)."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError from None  # clean close between requests
        raise ProtocolError(400, "bad-request", "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, "line-too-long", "request line exceeds limit") from None
    if len(line) > limit:
        raise ProtocolError(431, "line-too-long", "request line exceeds limit")
    return line.rstrip(b"\r\n")


def _parse_target(target: str) -> tuple[str, dict[str, str]]:
    path, _, query = target.partition("?")
    params: dict[str, str] = {}
    if query:
        for pair in query.split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            params[unquote(key)] = unquote(value)
    return unquote(path), params


async def read_request(
    reader: asyncio.StreamReader, limits: Limits
) -> Request | None:
    """Parse one request from the stream; None on clean EOF.

    Raises :class:`ProtocolError` for anything malformed — never a bare
    UnicodeDecodeError/ValueError — and enforces every :class:`Limits`
    ceiling before buffering the offending bytes.
    """
    try:
        raw = await asyncio.wait_for(
            _read_line(reader, limits.max_line_bytes), limits.header_timeout_s
        )
    except EOFError:
        return None
    except asyncio.TimeoutError:
        raise ProtocolError(408, "timeout", "idle connection timed out") from None
    if not raw:
        # Tolerate a stray blank line between keep-alive requests.
        raw = await _read_line(reader, limits.max_line_bytes)
        if not raw:
            raise ProtocolError(400, "bad-request", "empty request line")
    try:
        line = raw.decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError(400, "bad-request", "non-ASCII request line") from None
    parts = line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ProtocolError(400, "bad-request", f"malformed request line: {line!r}")
    method, target, _version = parts
    if method not in _METHODS:
        raise ProtocolError(400, "bad-request", f"unknown method {method!r}")

    headers: dict[str, str] = {}
    while True:
        line_bytes = await _read_line(reader, limits.max_line_bytes)
        if not line_bytes:
            break
        if len(headers) >= limits.max_headers:
            raise ProtocolError(431, "too-many-headers", "header count exceeds limit")
        try:
            text = line_bytes.decode("latin-1")
        except UnicodeDecodeError:  # latin-1 cannot fail; defensive only
            raise ProtocolError(400, "bad-request", "undecodable header") from None
        name, sep, value = text.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(400, "bad-header", f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "transfer-encoding" in headers:
        raise ProtocolError(
            501, "unsupported", "chunked request bodies are not supported"
        )
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "bad-header", "non-numeric content-length") from None
        if length < 0:
            raise ProtocolError(400, "bad-header", "negative content-length")
        if length > limits.max_body_bytes:
            raise ProtocolError(
                413,
                "payload-too-large",
                f"body of {length} bytes exceeds the {limits.max_body_bytes}-byte limit",
            )
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), limits.header_timeout_s
            )
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "bad-request", "truncated request body") from None
        except asyncio.TimeoutError:
            raise ProtocolError(408, "timeout", "request body timed out") from None
    path, params = _parse_target(target)
    return Request(
        method=method,
        target=target,
        path=path,
        params=params,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """A complete fixed-length HTTP/1.1 response as bytes."""
    reason = HTTP_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


class ChunkedWriter:
    """Stream a response body of unknown length via chunked encoding.

    The server writes the status line and headers through
    :meth:`start`, then any number of :meth:`send` chunks (each awaiting
    ``drain()``, so a slow client back-pressures the producer instead of
    buffering the whole answer), then :meth:`finish` for the terminal
    chunk.  ``bytes_sent`` counts payload bytes for the metrics layer.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self.bytes_sent = 0
        self._started = False

    async def start(
        self,
        status: int = 200,
        content_type: str = "application/x-ndjson",
        keep_alive: bool = True,
    ) -> None:
        reason = HTTP_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("ascii")
        self._writer.write(head)
        await self._writer.drain()
        self._started = True

    async def send(self, payload: bytes) -> None:
        if not payload:
            return
        self._writer.write(f"{len(payload):x}\r\n".encode("ascii"))
        self._writer.write(payload)
        self._writer.write(b"\r\n")
        await self._writer.drain()
        self.bytes_sent += len(payload)

    async def finish(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()

"""Row-oriented RDBMS baseline (Section 7.2, system (i)).

The straightforward relational design for graph records in a row store:
one triplet table ``T(recid, edgeid, measure)`` with a clustered B-tree
index on ``edgeid`` (and a secondary on ``recid``).  A graph query with
edges ``e1..ek`` becomes a k-way self-join::

    SELECT t1.recid, t1.m, ..., tk.m
    FROM T t1 JOIN T t2 ON t1.recid = t2.recid ... JOIN T tk ...
    WHERE t1.edgeid = e1 AND ... AND tk.edgeid = ek

We execute that plan honestly: an index range scan per edge predicate,
then successive hash joins on ``recid`` processing one tuple at a time —
the row-at-a-time pipeline that makes this design orders of magnitude
slower than bitmap ANDing (Figure 3).  Storage is modeled at 8 bytes per
field plus per-row and index overhead, so size grows linearly with record
density (Figure 4).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable

from ..core.paths import Path
from ..core.query import GraphQuery, PathAggregationQuery
from ..core.record import Edge, GraphRecord
from ..core.aggregates import get_function
from .base import BaselineResult, BaselineStore

__all__ = ["RowStore"]

# Storage model constants (bytes): a heap row holds recid, edgeid, measure
# (8 bytes each) plus row header; each of the two B-tree indexes costs one
# key + row pointer per row.
_ROW_BYTES = 8 * 3 + 8
_INDEX_ENTRY_BYTES = 8 + 8


class RowStore(BaselineStore):
    """Triplet-table row store with per-edge index range scans."""

    name = "row-store"

    def __init__(self) -> None:
        # Clustered index: edge id -> list of (recid position, measure).
        self._by_edge: dict[Edge, list[tuple[int, float]]] = {}
        self._record_ids: list[Hashable] = []
        self._n_rows = 0

    def load_records(self, records: Iterable[GraphRecord]) -> int:
        count = 0
        for record in records:
            position = len(self._record_ids)
            self._record_ids.append(record.record_id)
            for edge, value in record.measures().items():
                self._by_edge.setdefault(edge, []).append((position, value))
                self._n_rows += 1
            count += 1
        return count

    # -- query evaluation ------------------------------------------------------

    def _matching_rows(self, elements: Iterable[Edge]) -> dict[int, dict[Edge, float]]:
        """Successive tuple-at-a-time hash joins over the edge predicates."""
        elements = list(elements)
        if not elements:
            return {}
        # Index range scan for the first predicate seeds the intermediate.
        first = elements[0]
        intermediate: dict[int, dict[Edge, float]] = {}
        for position, value in self._by_edge.get(first, []):
            intermediate[position] = {first: value}
        # Each further predicate probes the intermediate, tuple by tuple,
        # building the next intermediate result (the join pipeline).
        for element in elements[1:]:
            if not intermediate:
                return {}
            next_intermediate: dict[int, dict[Edge, float]] = {}
            for position, value in self._by_edge.get(element, []):
                row = intermediate.get(position)
                if row is not None:
                    merged = dict(row)
                    merged[element] = value
                    next_intermediate[position] = merged
            intermediate = next_intermediate
        return intermediate

    def query(self, query: GraphQuery) -> BaselineResult:
        matches = self._matching_rows(sorted(query.elements, key=repr))
        positions = sorted(matches)
        return BaselineResult(
            record_ids=[self._record_ids[p] for p in positions],
            measures=[matches[p] for p in positions],
        )

    def aggregate(self, query: PathAggregationQuery) -> dict:
        function = get_function(query.function)
        matches = self._matching_rows(sorted(query.query.elements, key=repr))
        paths = query.maximal_paths()
        measured = frozenset(
            u for (u, v) in query.query.elements if u == v
        )
        out: dict = {}
        for position in sorted(matches):
            row = matches[position]
            per_path: dict[Path, float] = {}
            for path in paths:
                values = [row[e] for e in path.elements(measured) if e in row]
                if values:
                    import numpy as np

                    per_path[path] = float(
                        function([np.array([v]) for v in values])[0]
                    )
            out[self._record_ids[position]] = per_path
        return out

    def disk_size_bytes(self) -> int:
        return self._n_rows * (_ROW_BYTES + 2 * _INDEX_ENTRY_BYTES)

"""RDF triple-store baseline (Section 7.2, system (iii)).

Graph records shredded into RDF: each edge occurrence of record *r* yields
a statement node with three triples::

    (stmt, :record, r)   (stmt, :edge, e)   (stmt, :measure, value)

following the common reification pattern for edge-attributed graphs.  All
terms are dictionary-encoded to integer ids, and the triples are held in
the standard permutation indexes (SPO, POS, OSP) as sorted arrays.

A graph query becomes a basic graph pattern with one ``(?s_i, :edge, e_i)``
+ ``(?s_i, :record, ?r)`` pair per query edge, joined on ``?r``.  The store
answers it like a typical SPARQL engine: a POS index range scan per
pattern, then iterative intersection of the record-id sets with a binary
search per solution, then per-solution measure lookups — value-at-a-time
processing, which lands its performance between the row store and the
column store as in Figure 3.

Disk model: 8 bytes per dictionary-compressed triple (delta-encoded term
ids, as RDF-3X-class stores achieve), times three index permutations, plus
the term dictionary — which lands the footprint between the row store and
the object-graph store, as in Figure 4.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable
from typing import Hashable

import numpy as np

from ..core.aggregates import get_function
from ..core.paths import Path
from ..core.query import GraphQuery, PathAggregationQuery
from ..core.record import Edge, GraphRecord
from .base import BaselineResult, BaselineStore

__all__ = ["RdfTripleStore"]

_TRIPLE_BYTES = 8
_N_INDEXES = 3
_DICT_ENTRY_BYTES = 24


class _Postings:
    """Sorted (record position, measure) pairs for one edge term."""

    __slots__ = ("keys", "values")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.values: list[float] = []

    def append(self, position: int, value: float) -> None:
        # Loading appends record positions in increasing order, so the
        # posting list stays sorted without an explicit sort.
        self.keys.append(position)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.keys)

    def lookup(self, position: int) -> float | None:
        i = bisect_left(self.keys, position)
        if i < len(self.keys) and self.keys[i] == position:
            return self.values[i]
        return None


class RdfTripleStore(BaselineStore):
    """Dictionary-encoded triple store with POS/SPO pattern evaluation."""

    name = "rdf-store"

    def __init__(self) -> None:
        self._record_ids: list[Hashable] = []
        self._postings: dict[Edge, _Postings] = {}
        self._n_triples = 0
        self._terms: set = set()

    def load_records(self, records: Iterable[GraphRecord]) -> int:
        count = 0
        for record in records:
            position = len(self._record_ids)
            self._record_ids.append(record.record_id)
            for edge, value in record.measures().items():
                self._postings.setdefault(edge, _Postings()).append(position, value)
                self._n_triples += 3  # :record, :edge, :measure
                self._terms.add(edge)
            self._terms.add(record.record_id)
            count += 1
        return count

    def _scan(self, element: Edge) -> _Postings | None:
        """POS range scan: the statement postings for an edge term."""
        return self._postings.get(element)

    def _join_records(self, elements: list[Edge]) -> list[int]:
        """Iterative intersection of per-pattern record-id lists."""
        if not elements:
            return []
        scans = []
        for element in elements:
            postings = self._scan(element)
            if postings is None:
                return []
            scans.append(postings)
        # Start from the most selective pattern, as a SPARQL optimizer would.
        scans.sort(key=len)
        current = list(scans[0].keys)
        for postings in scans[1:]:
            if not current:
                return []
            # Binary search per solution — value-at-a-time join.
            current = [p for p in current if postings.lookup(p) is not None]
        return current

    def query(self, query: GraphQuery) -> BaselineResult:
        elements = sorted(query.elements, key=repr)
        positions = self._join_records(elements)
        record_ids = []
        measures = []
        for position in positions:
            row: dict[Edge, float] = {}
            for element in elements:
                postings = self._scan(element)
                value = postings.lookup(position) if postings is not None else None
                if value is not None:
                    row[element] = value
            record_ids.append(self._record_ids[position])
            measures.append(row)
        return BaselineResult(record_ids=record_ids, measures=measures)

    def aggregate(self, query: PathAggregationQuery) -> dict:
        function = get_function(query.function)
        result = self.query(query.query)
        paths = query.maximal_paths()
        measured = frozenset(u for (u, v) in query.query.elements if u == v)
        out: dict = {}
        for record_id, row in zip(result.record_ids, result.measures):
            per_path: dict[Path, float] = {}
            for path in paths:
                values = [row[e] for e in path.elements(measured) if e in row]
                if values:
                    per_path[path] = float(
                        function([np.array([v]) for v in values])[0]
                    )
            out[record_id] = per_path
        return out

    def disk_size_bytes(self) -> int:
        return (
            self._n_triples * _TRIPLE_BYTES * _N_INDEXES
            + len(self._terms) * _DICT_ENTRY_BYTES
        )

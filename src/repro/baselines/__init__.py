"""Comparison systems of Section 7.2: row store, native graph DB, RDF store.

Each reproduces its system's storage layout and evaluation strategy (see
module docstrings); all share the :class:`BaselineStore` interface so the
benchmarks drive them uniformly.
"""

from .base import BaselineResult, BaselineStore
from .graphdb import NativeGraphStore
from .rdfstore import RdfTripleStore
from .rowstore import RowStore

__all__ = [
    "BaselineResult",
    "BaselineStore",
    "NativeGraphStore",
    "RdfTripleStore",
    "RowStore",
]

"""Native graph database baseline (Section 7.2, system (ii) — Neo4j-like).

Stores every graph record as a first-class object graph: node records,
relationship records and property records, with a global label index
mapping a node name to the records mentioning it (the analogue of Neo4j's
label/property index).

Query evaluation follows the native-graph strategy: use the index on the
query's least-frequent node to obtain candidate records, then *traverse*
each candidate's adjacency structure record-at-a-time to verify every
query edge and read its measure.  Traversal touches Python objects one hop
at a time — the pointer-chasing execution model whose cost Figure 3
captures.

The disk model uses Neo4j's fixed-size store records: 15 bytes per node,
34 per relationship, 41 per property — which is why this store shows the
largest footprint in Figure 4.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable

import numpy as np

from ..core.aggregates import get_function
from ..core.paths import Path
from ..core.query import GraphQuery, PathAggregationQuery
from ..core.record import Edge, GraphRecord
from .base import BaselineResult, BaselineStore

__all__ = ["NativeGraphStore"]

_NODE_BYTES = 15
_RELATIONSHIP_BYTES = 34
_PROPERTY_BYTES = 41


class _StoredGraph:
    """One record's object graph: adjacency + per-element properties."""

    __slots__ = ("record_id", "adjacency", "properties")

    def __init__(self, record: GraphRecord):
        self.record_id = record.record_id
        self.adjacency: dict[Hashable, dict[Hashable, float]] = {}
        self.properties: dict[Edge, float] = {}
        for (u, v), value in record.measures().items():
            self.adjacency.setdefault(u, {})[v] = value
            self.adjacency.setdefault(v, self.adjacency.get(v, {}))
            self.properties[(u, v)] = value

    def traverse_check(self, elements: Iterable[Edge]) -> dict[Edge, float] | None:
        """Walk the adjacency to verify each element; collect measures."""
        found: dict[Edge, float] = {}
        for u, v in elements:
            neighbors = self.adjacency.get(u)
            if neighbors is None:
                return None
            value = neighbors.get(v)
            if value is None:
                return None
            found[(u, v)] = value
        return found


class NativeGraphStore(BaselineStore):
    """Object-graph store with a node-label index and per-record traversal."""

    name = "graph-db"

    def __init__(self) -> None:
        self._graphs: list[_StoredGraph] = []
        self._label_index: dict[Hashable, list[int]] = {}
        self._n_nodes = 0
        self._n_relationships = 0
        self._n_properties = 0

    def load_records(self, records: Iterable[GraphRecord]) -> int:
        count = 0
        for record in records:
            stored = _StoredGraph(record)
            position = len(self._graphs)
            self._graphs.append(stored)
            for node in record.nodes():
                self._label_index.setdefault(node, []).append(position)
            self._n_nodes += len(record.nodes())
            self._n_relationships += len(record.edges())
            self._n_properties += len(record.measures())
            count += 1
        return count

    def _candidates(self, query: GraphQuery) -> list[int]:
        """Index lookup on the query's least-frequent node label."""
        best: list[int] | None = None
        for node in query.nodes():
            postings = self._label_index.get(node)
            if postings is None:
                return []
            if best is None or len(postings) < len(best):
                best = postings
        return best if best is not None else []

    def query(self, query: GraphQuery) -> BaselineResult:
        elements = sorted(query.elements, key=repr)
        record_ids = []
        measures = []
        for position in self._candidates(query):
            found = self._graphs[position].traverse_check(elements)
            if found is not None:
                record_ids.append(self._graphs[position].record_id)
                measures.append(found)
        return BaselineResult(record_ids=record_ids, measures=measures)

    def aggregate(self, query: PathAggregationQuery) -> dict:
        function = get_function(query.function)
        elements = sorted(query.query.elements, key=repr)
        paths = query.maximal_paths()
        measured = frozenset(u for (u, v) in query.query.elements if u == v)
        out: dict = {}
        for position in self._candidates(query.query):
            found = self._graphs[position].traverse_check(elements)
            if found is None:
                continue
            per_path: dict[Path, float] = {}
            for path in paths:
                values = [found[e] for e in path.elements(measured) if e in found]
                if values:
                    per_path[path] = float(
                        function([np.array([v]) for v in values])[0]
                    )
            out[self._graphs[position].record_id] = per_path
        return out

    def disk_size_bytes(self) -> int:
        return (
            self._n_nodes * _NODE_BYTES
            + self._n_relationships * _RELATIONSHIP_BYTES
            + self._n_properties * _PROPERTY_BYTES
            # label index: one pointer per (label, record) posting.
            + sum(len(p) for p in self._label_index.values()) * 8
        )

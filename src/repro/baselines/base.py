"""Common protocol for the comparison systems of Section 7.2.

The paper compares its column-store framework against (i) a row-oriented
RDBMS storing (recid, edgeid, measure) triplets, (ii) the Neo4j native
graph database and (iii) a commercial RDF store.  We reproduce each
system's *evaluation strategy* rather than a vendor binary: what makes the
architectures differ is how they store records and join structural
conditions, and that is what the simulations implement.

A deliberate modeling choice: the column store executes vectorized
(column-at-a-time, as MonetDB does), while the baselines process data
tuple-at-a-time through Python-level loops — mirroring the interpretive
row/record-at-a-time pipelines of the systems they stand in for.  The
orders-of-magnitude gaps of Figure 3 come from exactly this architectural
difference, reproduced here in miniature.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from ..core.query import GraphQuery, PathAggregationQuery
from ..core.record import GraphRecord

__all__ = ["BaselineStore"]


class BaselineStore(ABC):
    """Load / query / aggregate interface shared by all baselines."""

    name: str = "baseline"

    @abstractmethod
    def load_records(self, records: Iterable[GraphRecord]) -> int:
        """Ingest graph records; returns the number loaded."""

    @abstractmethod
    def query(self, query: GraphQuery) -> "BaselineResult":
        """Records containing the query graph, with their measures."""

    @abstractmethod
    def aggregate(self, query: PathAggregationQuery) -> dict:
        """Per matching record id, dict of maximal path → aggregate."""

    @abstractmethod
    def disk_size_bytes(self) -> int:
        """Modeled on-disk footprint (constants documented per store)."""


class BaselineResult:
    """Query answer: record ids plus per-record element measures."""

    __slots__ = ("record_ids", "measures")

    def __init__(self, record_ids: Sequence, measures: Sequence[dict]):
        self.record_ids = list(record_ids)
        self.measures = list(measures)

    def __len__(self) -> int:
        return len(self.record_ids)

    def n_measure_values(self) -> int:
        return sum(len(m) for m in self.measures)

"""Compatibility shim over the layered :mod:`repro.lang` front-end.

The original single-file DSL grew into a package — position-tracking
lexer, typed AST, lowering pass, canonical unparser — living in
:mod:`repro.lang`.  This module keeps the historical import surface
(``from repro.dsl import parse_query, parse_aggregation,
QuerySyntaxError``) working unchanged; new code should import from
:mod:`repro.lang`, which also exposes the AST, the unparser, and the
workload helpers.

The grammar is a superset of the original: paths gained open ends
(``A -> D ->``, ``-> G -> I``), composite steps (``[A,G] -> I``),
measured-node markers (``D!``), and the path-join (``p JOIN q``);
``AND``/``OR``/``NOT``/``JOIN`` became reserved words (quote them to use
them as labels); error messages now carry exact source positions.
"""

from __future__ import annotations

from .errors import QuerySyntaxError
from .lang import parse_aggregation, parse_query, parse_statement

__all__ = ["parse_query", "parse_aggregation", "parse_statement", "QuerySyntaxError"]

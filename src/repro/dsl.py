"""A small text language for graph queries.

The paper models queries as graphs; BI users type text.  The DSL covers
the whole query model with a compact grammar::

    A -> D -> E -> G -> I              a path query (the paper's Q1)
    {(C,H), (F,J), (J,K)}              an explicit element set (Q2's legs)
    {(D,D)}                            node D's own measure (self pair)
    A->B AND C->D                      boolean combinators over answers
    A->B OR C->D
    A->B AND NOT C->D
    (A->B OR C->D) AND NOT {(E,F)}     grouping
    SUM A -> C -> E -> F               a path-aggregation query (§3.4)
    MAX A -> B AND NOT C -> D          …any aggregate name works

Grammar (recursive descent, ``OR`` binds loosest)::

    aggregate := FUNC expr
    expr      := term ( OR term )*
    term      := factor ( AND [NOT] factor )*
    factor    := '(' expr ')' | chain | elements
    chain     := node ( '->' node )+
    elements  := '{' '(' node ',' node ')' ( ',' '(' node ',' node ')' )* '}'
    node      := bare word or 'quoted string'

``parse_query`` returns a :class:`~repro.core.query.QueryExpr` ready for
``engine.query``; ``parse_aggregation`` returns a
:class:`~repro.core.query.PathAggregationQuery` for ``engine.aggregate``.
"""

from __future__ import annotations

import re

from .core.aggregates import FUNCTIONS
from .core.query import And, AndNot, GraphQuery, Or, PathAggregationQuery, QueryExpr
from .errors import QuerySyntaxError

__all__ = ["parse_query", "parse_aggregation", "QuerySyntaxError"]


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<comma>,)
  | (?P<quoted>'[^']*')
  | (?P<word>(?:[A-Za-z0-9_.]|-(?!>))+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r} at position {position}"
            )
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind == "ws":
            continue
        if kind == "quoted":
            value = value[1:-1]
            kind = "word"
        tokens.append((kind, value, match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers --------------------------------------------------------

    def peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self.index += 1
        return token

    def expect(self, kind: str, what: str) -> str:
        token = self.next()
        if token[0] != kind:
            raise QuerySyntaxError(
                f"expected {what} at position {token[2]}, got {token[1]!r}"
            )
        return token[1]

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return (
            token is not None
            and token[0] == "word"
            and token[1].upper() == word
        )

    # -- grammar ---------------------------------------------------------------

    def parse_expr(self) -> QueryExpr:
        left = self.parse_term()
        while self.at_keyword("OR"):
            self.next()
            left = Or(left, self.parse_term())
        return left

    def parse_term(self) -> QueryExpr:
        left = self.parse_factor()
        while self.at_keyword("AND"):
            self.next()
            if self.at_keyword("NOT"):
                self.next()
                left = AndNot(left, self.parse_factor())
            else:
                left = And(left, self.parse_factor())
        return left

    def parse_factor(self) -> QueryExpr:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        if token[0] == "lparen":
            self.next()
            inner = self.parse_expr()
            self.expect("rparen", "')'")
            return inner
        if token[0] == "lbrace":
            return self.parse_elements()
        if token[0] == "word":
            return self.parse_chain()
        raise QuerySyntaxError(
            f"expected a path, element set or '(' at position {token[2]}, "
            f"got {token[1]!r}"
        )

    def parse_chain(self) -> GraphQuery:
        nodes = [self.expect("word", "a node name")]
        while True:
            token = self.peek()
            if token is not None and token[0] == "arrow":
                self.next()
                nodes.append(self.expect("word", "a node name"))
            else:
                break
        if len(nodes) < 2:
            raise QuerySyntaxError(
                f"a path needs at least two nodes (got only {nodes[0]!r}); "
                "use {(X,X)} for a single node's measure"
            )
        return GraphQuery.from_node_chain(*nodes)

    def parse_elements(self) -> GraphQuery:
        self.expect("lbrace", "'{'")
        elements = [self.parse_pair()]
        while True:
            token = self.peek()
            if token is not None and token[0] == "comma":
                self.next()
                elements.append(self.parse_pair())
            else:
                break
        self.expect("rbrace", "'}'")
        return GraphQuery(elements)

    def parse_pair(self) -> tuple[str, str]:
        self.expect("lparen", "'('")
        u = self.expect("word", "a node name")
        self.expect("comma", "','")
        v = self.expect("word", "a node name")
        self.expect("rparen", "')'")
        return (u, v)

    def finish(self) -> None:
        token = self.peek()
        if token is not None:
            raise QuerySyntaxError(
                f"unexpected {token[1]!r} at position {token[2]}"
            )


def parse_query(text: str) -> QueryExpr:
    """Parse query text into a (possibly compound) query expression."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.finish()
    return expr


def parse_aggregation(text: str) -> PathAggregationQuery:
    """Parse ``FUNC <query>`` into a path-aggregation query.

    The leading word must name a registered aggregate (SUM, MIN, MAX,
    COUNT, AVG, or anything added via ``register_function``); the rest
    must reduce to an atomic graph query (boolean combinations have no
    single path structure to aggregate over).
    """
    parser = _Parser(text)
    token = parser.peek()
    if token is None or token[0] != "word" or token[1].lower() not in FUNCTIONS:
        known = ", ".join(sorted(f.upper() for f in FUNCTIONS))
        raise QuerySyntaxError(
            f"an aggregation must start with a function name ({known})"
        )
    function = parser.next()[1].lower()
    expr = parser.parse_expr()
    parser.finish()
    if not isinstance(expr, GraphQuery):
        raise QuerySyntaxError(
            "path aggregation applies to a single graph query, not a "
            "boolean combination"
        )
    return PathAggregationQuery(expr, function)

"""Canonical unparser: query objects (and ASTs) → query text.

Two levels:

* :func:`unparse_ast` renders a :mod:`repro.lang.ast` tree back to
  source, preserving surface structure (composite steps, open ends,
  joins).  ``parse(unparse_ast(t))`` lowers to the same query as ``t`` —
  the property the grammar fuzzer exercises.
* :func:`unparse` renders a *core* query object
  (:class:`~repro.core.query.GraphQuery`, boolean combinators,
  :class:`~repro.core.query.PathAggregationQuery`) to its **canonical**
  text.  The canonical form is unique per query value:
  ``lower(parse(unparse(q))) == q`` and
  ``unparse(lower(parse(text))) `` is a fixpoint of itself
  (idempotency), which is what lets EXPLAIN output and formatted
  workload files round-trip.

Canonical-form rules:

* a query whose proper edges chain into one simple path (and whose
  measured nodes all lie on it) renders as the path ``A -> D! -> E``,
  with ``!`` marking measured nodes; a lone self-edge ``{(X,X)}``
  renders as ``X!``;
* anything else renders as a sorted element set ``{(C,H), (F,J)}``;
* identifiers render bare exactly when the lexer would read them back as
  one word and they don't collide with a keyword or aggregate-function
  name; everything else is quoted with escapes (this is the fix for the
  historical ``hub-1``-style hyphen ambiguity: ``unparse`` quotes any
  label the lexer could mis-split);
* parentheses are emitted only where precedence demands them
  (``OR`` loosest, operators left-associative).

Only string labels have a text form; anything else raises
:class:`UnparseError` (or returns ``None`` from :func:`try_unparse`).
"""

from __future__ import annotations

import re

from ..core.aggregates import FUNCTIONS
from ..core.query import (
    And,
    AndNot,
    GraphQuery,
    Or,
    PathAggregationQuery,
)
from .ast import (
    Aggregate,
    AndExpr,
    AndNotExpr,
    ElementSet,
    JoinExpr,
    Name,
    Node,
    OrExpr,
    PathPattern,
    Step,
)
from .parser import KEYWORDS

__all__ = [
    "UnparseError",
    "SAFE_BARE_RE",
    "render_name",
    "unparse",
    "try_unparse",
    "unparse_ast",
]


class UnparseError(ValueError):
    """The object has no text form (e.g. a non-string node label)."""


#: Exactly the lexer's bare-word rule: a label is safe to print unquoted
#: only when the tokenizer reads the printed text back as one word token.
SAFE_BARE_RE = re.compile(r"(?:[A-Za-z0-9_.]|-(?!>))+")

_ESCAPE_MAP = {
    "\\": "\\\\",
    "'": "\\'",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def render_name(label) -> str:
    """One identifier, quoted iff printing it bare would change meaning.

    Bare is only safe when the text is a single word token *and* is not
    a reserved keyword *and* does not spell an aggregate-function name
    (a leading bare ``sum`` would flip a statement into an aggregation).
    """
    if not isinstance(label, str):
        raise UnparseError(
            f"only string node labels have a text form, got {label!r}"
        )
    if (
        label
        and SAFE_BARE_RE.fullmatch(label)
        and label.upper() not in KEYWORDS
        and label.lower() not in FUNCTIONS
    ):
        return label
    body = "".join(_ESCAPE_MAP.get(ch, ch) for ch in label)
    return f"'{body}'"


# -- canonical form of core query objects -------------------------------------


def _chain_of(query: GraphQuery) -> list | None:
    """The node order of the query's proper edges when they form exactly
    one simple path covering every edge; None otherwise."""
    proper = query.edges()
    if not proper:
        return None
    succ: dict = {}
    pred: dict = {}
    for u, v in proper:
        if u in succ or v in pred:
            return None  # branching: not a single path
        succ[u] = v
        pred[v] = u
    starts = [u for u in succ if u not in pred]
    if len(starts) != 1:
        return None  # a cycle, or disconnected pieces
    chain = [starts[0]]
    while chain[-1] in succ:
        chain.append(succ[chain[-1]])
        if len(chain) > len(proper) + 1:  # pragma: no cover - defensive
            return None
    if len(chain) != len(proper) + 1:
        return None  # disconnected components
    return chain


def _unparse_graph_query(query: GraphQuery) -> str:
    measured = query.measured_nodes()
    chain = _chain_of(query)
    if chain is not None and measured <= set(chain):
        parts = [
            render_name(node) + ("!" if node in measured else "")
            for node in chain
        ]
        return " -> ".join(parts)
    if chain is None and len(measured) == 1 and len(query.elements) == 1:
        (node,) = measured
        return render_name(node) + "!"
    pairs = sorted(
        (render_name(u), render_name(v)) for u, v in query.elements
    )
    inner = ", ".join(f"({u},{v})" for u, v in pairs)
    return "{" + inner + "}"


def _unparse_expr(expr) -> str:
    if isinstance(expr, GraphQuery):
        return _unparse_graph_query(expr)
    if isinstance(expr, Or):
        left = _unparse_expr(expr.left)
        right = _unparse_expr(expr.right)
        if isinstance(expr.right, Or):
            right = f"({right})"
        return f"{left} OR {right}"
    if isinstance(expr, (And, AndNot)):
        left = _unparse_expr(expr.left)
        right = _unparse_expr(expr.right)
        if isinstance(expr.left, Or):
            left = f"({left})"
        if isinstance(expr.right, (And, Or, AndNot)):
            right = f"({right})"
        word = "AND NOT" if isinstance(expr, AndNot) else "AND"
        return f"{left} {word} {right}"
    raise UnparseError(f"cannot unparse {type(expr).__name__}: {expr!r}")


def unparse(obj) -> str:
    """Canonical text of a query expression or aggregation.

    Satisfies ``lower(parse(unparse(q))) == q`` for every query built
    from string labels; raises :class:`UnparseError` otherwise.
    """
    if isinstance(obj, PathAggregationQuery):
        return f"{obj.function.upper()} {_unparse_expr(obj.query)}"
    return _unparse_expr(obj)


def try_unparse(obj) -> str | None:
    """:func:`unparse`, or None for objects with no text form."""
    try:
        return unparse(obj)
    except UnparseError:
        return None


# -- surface form of AST nodes -------------------------------------------------


def _render_node(node: Node) -> str:
    return render_name(node.name.value) + ("!" if node.measured else "")


def _render_step(step: Step) -> str:
    if step.is_composite:
        return "[" + ", ".join(_render_node(n) for n in step.nodes) + "]"
    return _render_node(step.nodes[0])


def _render_path(path: PathPattern) -> str:
    text = " -> ".join(_render_step(s) for s in path.steps)
    if path.open_start:
        text = "-> " + text
    if path.open_end:
        text = text + " ->"
    return text


def unparse_ast(node) -> str:
    """Source text for an AST node; re-parses to an equal AST."""
    if isinstance(node, Aggregate):
        return f"{node.function.value.upper()} {unparse_ast(node.expr)}"
    if isinstance(node, PathPattern):
        return _render_path(node)
    if isinstance(node, JoinExpr):
        return f"{unparse_ast(node.left)} JOIN {_render_path(node.right)}"
    if isinstance(node, ElementSet):
        inner = ", ".join(
            f"({render_name(u.value)},{render_name(v.value)})"
            for u, v in node.pairs
        )
        return "{" + inner + "}"
    if isinstance(node, OrExpr):
        left = unparse_ast(node.left)
        right = unparse_ast(node.right)
        if isinstance(node.right, OrExpr):
            right = f"({right})"
        return f"{left} OR {right}"
    if isinstance(node, (AndExpr, AndNotExpr)):
        left = unparse_ast(node.left)
        right = unparse_ast(node.right)
        if isinstance(node.left, OrExpr):
            left = f"({left})"
        if isinstance(node.right, (AndExpr, OrExpr, AndNotExpr)):
            right = f"({right})"
        word = "AND NOT" if isinstance(node, AndNotExpr) else "AND"
        return f"{left} {word} {right}"
    if isinstance(node, Name):  # pragma: no cover - convenience
        return render_name(node.value)
    raise UnparseError(f"cannot unparse {type(node).__name__}: {node!r}")

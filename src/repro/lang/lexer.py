"""Position-tracking lexer for the path-algebra query language.

Every token remembers the character offset, line, and column where it
started, so the parser and the lowering pass can attach an exact source
location to any diagnostic.  The token stream also understands the two
workload-file conveniences: ``#`` comments run to end of line, and
quoted identifiers support backslash escapes (``\\'``, ``\\\\``,
``\\n``, ``\\r``, ``\\t``), which is what lets the canonical unparser
express *any* string label.

The bare-word rule is inherited from the original DSL: a word is a run
of ``[A-Za-z0-9_.]`` or ``-`` not followed by ``>`` (so ``hub-1`` is one
word while ``A->B`` splits around the arrow).  The unparser's quoting
rule (:data:`repro.lang.unparse.SAFE_BARE_RE`) is the exact complement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import QuerySyntaxError

__all__ = ["Token", "tokenize", "line_and_column"]


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<arrow>->)
  | (?P<join>⋈)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<comma>,)
  | (?P<bang>!)
  | (?P<quoted>'(?:\\.|[^'\\\n])*')
  | (?P<word>(?:[A-Za-z0-9_.]|-(?!>))+)
    """,
    re.VERBOSE,
)

_ESCAPES = {"'": "'", "\\": "\\", "n": "\n", "r": "\r", "t": "\t"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location.

    ``value`` is the decoded payload (quotes stripped and escapes
    resolved for ``quoted`` tokens); ``text`` is the raw source slice.
    """

    kind: str
    value: str
    text: str
    pos: int
    line: int
    column: int

    def __repr__(self) -> str:  # compact, for parser error messages
        return f"Token({self.kind}, {self.value!r} @{self.pos})"


def line_and_column(text: str, pos: int) -> tuple[int, int]:
    """1-based (line, column) of character offset ``pos`` in ``text``."""
    pos = max(0, min(pos, len(text)))
    line = text.count("\n", 0, pos) + 1
    last_nl = text.rfind("\n", 0, pos)
    return line, pos - last_nl  # column is 1-based because last_nl is -1 or \n


def _unescape(raw: str, pos: int) -> str:
    """Decode a quoted token's payload, rejecting unknown escapes."""
    body = raw[1:-1]
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):  # cannot happen with the token regex
                raise QuerySyntaxError(
                    f"dangling escape at position {pos + 1 + i}",
                    position=pos + 1 + i,
                )
            escape = body[i + 1]
            decoded = _ESCAPES.get(escape)
            if decoded is None:
                raise QuerySyntaxError(
                    f"unknown escape \\{escape} at position {pos + 1 + i}",
                    position=pos + 1 + i,
                )
            out.append(decoded)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize(text: str, keep_comments: bool = False) -> list[Token]:
    """Tokenize ``text``; raises :class:`QuerySyntaxError` with an exact
    position for any character the grammar has no use for.

    Comments are dropped unless ``keep_comments`` (the workload
    formatter wants them back).  Whitespace never reaches the caller.
    """
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            ch = text[position]
            if ch == "'":
                raise QuerySyntaxError(
                    f"unclosed quote starting at position {position}",
                    position=position,
                    source=text,
                )
            raise QuerySyntaxError(
                f"unexpected character {ch!r} at position {position}",
                position=position,
                source=text,
            )
        kind = match.lastgroup
        raw = match.group()
        start = match.start()
        position = match.end()
        if kind == "ws" or (kind == "comment" and not keep_comments):
            continue
        value = raw
        if kind == "quoted":
            try:
                value = _unescape(raw, start)
            except QuerySyntaxError as exc:
                raise QuerySyntaxError(
                    str(exc), position=exc.position, source=text
                ) from None
        line, column = line_and_column(text, start)
        tokens.append(Token(kind, value, raw, start, line, column))
    return tokens

"""Layered query-language front-end for the path algebra.

The pipeline is four small layers, each importable on its own::

    text ──tokenize──▶ tokens ──parse──▶ AST ──lower──▶ QueryExpr
                                          ▲                 │
                                          └──── unparse ◀───┘

* :mod:`repro.lang.lexer` — position-tracking tokens (``#`` comments,
  quoted labels with escapes);
* :mod:`repro.lang.parser` — recursive descent to the typed AST of
  :mod:`repro.lang.ast`: paths with open ends (``A -> D ->``,
  ``-> G -> I``), composite steps ``[A,G] -> I``, measured-node markers
  ``D!``, the path-join ``JOIN`` / ``⋈``, element sets, booleans;
* :mod:`repro.lang.lower` — AST to the core query objects, with
  positioned errors and :func:`diagnose` did-you-mean hints against an
  engine catalog;
* :mod:`repro.lang.unparse` — the canonical text of a query, satisfying
  the round-trip law ``lower(parse(unparse(q))) == q``.

:func:`parse_query` / :func:`parse_aggregation` keep the historical
:mod:`repro.dsl` signatures (text in, core query object out); that
module is now a thin compatibility shim over this package.
"""

from __future__ import annotations

from ..core.query import PathAggregationQuery, QueryExpr
from ..errors import QuerySyntaxError
from .ast import (
    Aggregate,
    AndExpr,
    AndNotExpr,
    ElementSet,
    JoinExpr,
    Name,
    Node,
    OrExpr,
    PathPattern,
    QueryNode,
    Span,
    Step,
)
from .lexer import Token, line_and_column, tokenize
from .lower import Diagnostic, diagnose, lower_query, lower_statement
from .parser import (
    KEYWORDS,
    parse_aggregation_ast,
    parse_query_ast,
    parse_statement_ast,
)
from .unparse import (
    SAFE_BARE_RE,
    UnparseError,
    render_name,
    try_unparse,
    unparse,
    unparse_ast,
)
from .workload import (
    WorkloadStatement,
    format_workload,
    iter_workload_lines,
    parse_workload,
    render_syntax_error,
)

__all__ = [
    # text → core objects (the historical repro.dsl surface)
    "parse_query",
    "parse_aggregation",
    "parse_statement",
    "QuerySyntaxError",
    # layers
    "tokenize",
    "Token",
    "line_and_column",
    "parse_query_ast",
    "parse_aggregation_ast",
    "parse_statement_ast",
    "lower_query",
    "lower_statement",
    "KEYWORDS",
    # AST
    "Span",
    "Name",
    "Node",
    "Step",
    "PathPattern",
    "JoinExpr",
    "ElementSet",
    "AndExpr",
    "OrExpr",
    "AndNotExpr",
    "Aggregate",
    "QueryNode",
    # canonical text
    "unparse",
    "try_unparse",
    "unparse_ast",
    "canonical",
    "UnparseError",
    "SAFE_BARE_RE",
    "render_name",
    # diagnostics & workloads
    "Diagnostic",
    "diagnose",
    "render_syntax_error",
    "WorkloadStatement",
    "parse_workload",
    "iter_workload_lines",
    "format_workload",
]


def parse_query(text: str) -> QueryExpr:
    """Parse query text into a (possibly compound) query expression."""
    return lower_query(parse_query_ast(text), source=text)


def parse_aggregation(text: str) -> PathAggregationQuery:
    """Parse ``FUNC <query>`` into a path-aggregation query.

    The leading word must name a registered aggregate (SUM, MIN, MAX,
    COUNT, AVG, or anything added via ``register_function``); the rest
    must reduce to an atomic graph query (boolean combinations have no
    single path structure to aggregate over).
    """
    result = lower_statement(parse_aggregation_ast(text), source=text)
    assert isinstance(result, PathAggregationQuery)
    return result


def parse_statement(text: str):
    """Parse one workload statement, auto-detecting aggregations.

    A statement whose leading bare word names a registered aggregate
    function parses as an aggregation; everything else as a query (a
    *quoted* leading word always starts a query).
    """
    return lower_statement(parse_statement_ast(text), source=text)


def canonical(text: str) -> str:
    """The canonical spelling of a statement: parse, lower, unparse.

    ``canonical`` is idempotent and canonical text lowers to the same
    query object as the original.
    """
    return unparse(parse_statement(text))

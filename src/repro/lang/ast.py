"""Typed AST for the path-algebra query language.

The AST mirrors the grammar one level above the core query objects: it
keeps *surface* structure — step order, endpoint openness, measured-node
markers, composite alternatives, path joins — that the lowered
:class:`~repro.core.query.QueryExpr` deliberately forgets (a
``GraphQuery`` is just a set of structural elements).  That is what
makes a canonical unparser and grammar-driven fuzzing possible: the
fuzzer generates these nodes, unparses them, and checks the parse →
lower pipeline against lowering the AST directly.

Every node carries a :class:`Span` (character offsets into the source)
so the lowering pass and diagnostics can point at the exact token.
Spans never participate in equality — two ASTs are equal when they
describe the same query, wherever they were written.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Name",
    "Node",
    "Step",
    "PathPattern",
    "JoinExpr",
    "ElementSet",
    "AndExpr",
    "OrExpr",
    "AndNotExpr",
    "Aggregate",
    "QueryNode",
    "walk_names",
]


@dataclass(frozen=True, eq=False)
class Span:
    """Half-open character range ``[start, end)`` in the source text."""

    start: int
    end: int

    # Spans are positional metadata only: all spans compare equal so the
    # dataclass-generated __eq__ of the owning nodes ignores them.
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Span)

    def __hash__(self) -> int:
        return 0


NO_SPAN = Span(0, 0)


@dataclass(frozen=True)
class Name:
    """An identifier: a node label or an aggregate-function name.

    ``quoted`` records only how the source spelled it; a quoted and a
    bare spelling of the same label are the same name.
    """

    value: str
    span: Span = NO_SPAN
    quoted: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class Node:
    """One node occurrence in a path: a label plus the optional ``!``
    measured-node marker (the node's self-edge joins the structural
    condition)."""

    name: Name
    measured: bool = False
    span: Span = NO_SPAN


@dataclass(frozen=True)
class Step:
    """One hop position in a path pattern.

    A single node, or a composite alternative set ``[A,G]`` — the
    pattern expands over the cartesian product of its steps.
    """

    nodes: tuple[Node, ...]
    span: Span = NO_SPAN

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a step needs at least one node alternative")

    @property
    def is_composite(self) -> bool:
        return len(self.nodes) > 1


@dataclass(frozen=True)
class PathPattern:
    """A (possibly composite, possibly open-ended) path.

    ``open_start`` / ``open_end`` are the leading / trailing ``->`` of
    the surface form: ``-> G -> I`` excludes G's own measure, ``A -> D
    ->`` excludes D's (the paper's parenthesis-vs-bracket endpoints).
    """

    steps: tuple[Step, ...]
    open_start: bool = False
    open_end: bool = False
    span: Span = NO_SPAN

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a path pattern needs at least one step")


@dataclass(frozen=True)
class JoinExpr:
    """The path-join ``left ⋈ right`` (spelled ``JOIN`` or ``⋈``).

    Parsing is left-associative, so ``a JOIN b JOIN c`` arrives as
    ``JoinExpr(JoinExpr(a, b), c)``; the right operand is always a
    :class:`PathPattern`.
    """

    left: "PathPattern | JoinExpr"
    right: PathPattern
    span: Span = NO_SPAN


@dataclass(frozen=True)
class ElementSet:
    """An explicit structural-element set ``{(C,H), (F,J)}``."""

    pairs: tuple[tuple[Name, Name], ...]
    span: Span = NO_SPAN

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("an element set needs at least one pair")


@dataclass(frozen=True)
class AndExpr:
    left: "QueryNode"
    right: "QueryNode"
    span: Span = NO_SPAN


@dataclass(frozen=True)
class OrExpr:
    left: "QueryNode"
    right: "QueryNode"
    span: Span = NO_SPAN


@dataclass(frozen=True)
class AndNotExpr:
    left: "QueryNode"
    right: "QueryNode"
    span: Span = NO_SPAN


@dataclass(frozen=True)
class Aggregate:
    """``FUNC <query>`` — a path aggregation statement."""

    function: Name
    expr: "QueryNode"
    span: Span = NO_SPAN


QueryNode = (
    PathPattern | JoinExpr | ElementSet | AndExpr | OrExpr | AndNotExpr
)


def walk_names(node) -> list[Name]:
    """Every node-label :class:`Name` in the tree, left to right (the
    aggregate function name is not a node label and is skipped)."""
    out: list[Name] = []

    def visit(n) -> None:
        if isinstance(n, Aggregate):
            visit(n.expr)
        elif isinstance(n, (AndExpr, OrExpr, AndNotExpr, JoinExpr)):
            visit(n.left)
            visit(n.right)
        elif isinstance(n, PathPattern):
            for step in n.steps:
                for alt in step.nodes:
                    out.append(alt.name)
        elif isinstance(n, ElementSet):
            for u, v in n.pairs:
                out.append(u)
                out.append(v)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not an AST node: {n!r}")

    visit(node)
    return out

"""Recursive-descent parser: token stream → typed AST.

Grammar (``OR`` binds loosest; ``JOIN`` only combines paths)::

    statement   := aggregation | query
    aggregation := FUNCTION query
    query       := term ( OR term )*
    term        := factor ( AND [NOT] factor )*
    factor      := '(' query ')' | elements | pathjoin
    pathjoin    := path ( (JOIN | '⋈') path )*
    path        := ['->'] step ( '->' step )* ['->']
    step        := node | '[' node ( ',' node )* ']'
    node        := ident ['!']
    elements    := '{' pair ( ',' pair )* '}'
    pair        := '(' ident ',' ident ')'
    ident       := WORD | QUOTED

``AND``, ``OR``, ``NOT`` and ``JOIN`` are reserved words
(case-insensitive); quote them to use them as node labels.  A statement
leads with a registered aggregate-function name to be an aggregation —
a *quoted* leading word is always a node label.

Every error is a :class:`~repro.errors.QuerySyntaxError` carrying the
offending position and the source text, so callers can render a caret.
"""

from __future__ import annotations

from ..core.aggregates import FUNCTIONS
from ..errors import QuerySyntaxError
from .ast import (
    Aggregate,
    AndExpr,
    AndNotExpr,
    ElementSet,
    JoinExpr,
    Name,
    Node,
    OrExpr,
    PathPattern,
    QueryNode,
    Span,
    Step,
)
from .lexer import Token, tokenize

__all__ = [
    "KEYWORDS",
    "parse_query_ast",
    "parse_aggregation_ast",
    "parse_statement_ast",
]

#: Reserved words: never bare node labels (quote them instead).
KEYWORDS = frozenset({"AND", "OR", "NOT", "JOIN"})


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token | None:
        index = self.index + ahead
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def next(self, what: str = "more input") -> Token:
        token = self.peek()
        if token is None:
            self.fail_eof(what)
        self.index += 1
        return token

    def fail(self, message: str, token: Token | None = None) -> None:
        if token is None:
            token = self.peek()
        if token is None:
            self.fail_eof(message)
        raise QuerySyntaxError(
            f"{message} at position {token.pos}, got {token.text!r}",
            position=token.pos,
            source=self.text,
        )

    def fail_eof(self, what: str) -> None:
        pos = len(self.text.rstrip())
        raise QuerySyntaxError(
            f"unexpected end of query (expected {what})",
            position=pos,
            source=self.text,
        )

    def expect(self, kind: str, what: str) -> Token:
        token = self.peek()
        if token is None:
            self.fail_eof(what)
        if token.kind != kind:
            self.fail(f"expected {what}", token)
        self.index += 1
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return (
            token is not None
            and token.kind == "word"
            and token.value.upper() == word
        )

    def at_join(self) -> bool:
        token = self.peek()
        if token is None:
            return False
        return token.kind == "join" or (
            token.kind == "word" and token.value.upper() == "JOIN"
        )

    # -- grammar ------------------------------------------------------------

    def parse_query(self) -> QueryNode:
        left = self.parse_term()
        while self.at_keyword("OR"):
            self.next()
            right = self.parse_term()
            left = OrExpr(left, right, Span(left.span.start, right.span.end))
        return left

    def parse_term(self) -> QueryNode:
        left = self.parse_factor()
        while self.at_keyword("AND"):
            self.next()
            if self.at_keyword("NOT"):
                self.next()
                right = self.parse_factor()
                left = AndNotExpr(
                    left, right, Span(left.span.start, right.span.end)
                )
            else:
                right = self.parse_factor()
                left = AndExpr(
                    left, right, Span(left.span.start, right.span.end)
                )
        return left

    def parse_factor(self) -> QueryNode:
        token = self.peek()
        if token is None:
            self.fail_eof("a path, element set or '('")
        if token.kind == "lparen":
            self.next()
            inner = self.parse_query()
            self.expect("rparen", "')'")
            return inner
        if token.kind == "lbrace":
            return self.parse_elements()
        if token.kind in ("word", "quoted", "lbracket", "arrow"):
            return self.parse_pathjoin()
        self.fail("expected a path, element set or '('", token)

    def parse_pathjoin(self) -> PathPattern | JoinExpr:
        left: PathPattern | JoinExpr = self.parse_path()
        while self.at_join():
            self.next()
            right = self.parse_path()
            left = JoinExpr(left, right, Span(left.span.start, right.span.end))
        return left

    def parse_path(self) -> PathPattern:
        start_token = self.peek()
        if start_token is None:
            self.fail_eof("a path")
        open_start = False
        if start_token.kind == "arrow":
            open_start = True
            self.next()
        steps = [self.parse_step()]
        open_end = False
        while True:
            token = self.peek()
            if token is None or token.kind != "arrow":
                break
            self.next()
            nxt = self.peek()
            if (
                nxt is None
                or nxt.kind not in ("word", "quoted", "lbracket")
                or (nxt.kind == "word" and nxt.value.upper() in KEYWORDS)
            ):
                # trailing arrow: the path's end is open
                open_end = True
                break
            steps.append(self.parse_step())
        end = steps[-1].span.end
        if open_end:
            token = self.tokens[self.index - 1]
            end = token.pos + len(token.text)
        return PathPattern(
            tuple(steps),
            open_start=open_start,
            open_end=open_end,
            span=Span(start_token.pos, end),
        )

    def parse_step(self) -> Step:
        token = self.peek()
        if token is None:
            self.fail_eof("a node name")
        if token.kind == "lbracket":
            self.next()
            closer = self.peek()
            if closer is not None and closer.kind == "rbracket":
                self.fail("a composite step needs at least one node", closer)
            nodes = [self.parse_node()]
            while True:
                nxt = self.peek()
                if nxt is not None and nxt.kind == "comma":
                    self.next()
                    nodes.append(self.parse_node())
                else:
                    break
            close = self.expect("rbracket", "']'")
            return Step(tuple(nodes), Span(token.pos, close.pos + 1))
        node = self.parse_node()
        return Step((node,), node.span)

    def parse_node(self) -> Node:
        name = self.parse_ident("a node name")
        measured = False
        end = name.span.end
        token = self.peek()
        if token is not None and token.kind == "bang":
            self.next()
            measured = True
            end = token.pos + 1
        return Node(name, measured=measured, span=Span(name.span.start, end))

    def parse_ident(self, what: str) -> Name:
        token = self.peek()
        if token is None:
            self.fail_eof(what)
        if token.kind == "quoted":
            self.next()
            return Name(
                token.value,
                Span(token.pos, token.pos + len(token.text)),
                quoted=True,
            )
        if token.kind == "word":
            if token.value.upper() in KEYWORDS:
                self.fail(
                    f"expected {what} (quote {token.value!r} to use a "
                    "keyword as a label)",
                    token,
                )
            self.next()
            return Name(token.value, Span(token.pos, token.pos + len(token.text)))
        self.fail(f"expected {what}", token)

    def parse_elements(self) -> ElementSet:
        opener = self.expect("lbrace", "'{'")
        closer = self.peek()
        if closer is not None and closer.kind == "rbrace":
            self.fail("an element set cannot be empty", closer)
        pairs = [self.parse_pair()]
        while True:
            token = self.peek()
            if token is not None and token.kind == "comma":
                self.next()
                pairs.append(self.parse_pair())
            else:
                break
        close = self.expect("rbrace", "'}'")
        return ElementSet(tuple(pairs), Span(opener.pos, close.pos + 1))

    def parse_pair(self) -> tuple[Name, Name]:
        self.expect("lparen", "'(' opening a (u,v) pair")
        u = self.parse_ident("a node name")
        self.expect("comma", "','")
        v = self.parse_ident("a node name")
        self.expect("rparen", "')' closing the (u,v) pair")
        return (u, v)

    def finish(self) -> None:
        token = self.peek()
        if token is not None:
            raise QuerySyntaxError(
                f"unexpected {token.text!r} at position {token.pos} "
                "(trailing input after a complete query)",
                position=token.pos,
                source=self.text,
            )

    def empty(self) -> bool:
        return not self.tokens


def _checked(parser: _Parser, what: str) -> None:
    if parser.empty():
        raise QuerySyntaxError(
            f"empty query (expected {what})", position=0, source=parser.text
        )


def parse_query_ast(text: str) -> QueryNode:
    """Parse query text into an AST (no aggregation head allowed)."""
    parser = _Parser(text)
    _checked(parser, "a path, element set or '('")
    expr = parser.parse_query()
    parser.finish()
    return expr


def parse_aggregation_ast(text: str) -> Aggregate:
    """Parse ``FUNC <query>`` into an aggregation AST.

    The leading word must name a registered aggregate function
    (case-insensitive); everything else is a syntax error with a
    position.
    """
    parser = _Parser(text)
    _checked(parser, "an aggregate function name")
    token = parser.peek()
    if (
        token is None
        or token.kind != "word"
        or token.value.lower() not in FUNCTIONS
    ):
        known = ", ".join(sorted(f.upper() for f in FUNCTIONS))
        raise QuerySyntaxError(
            f"an aggregation must start with a function name ({known})",
            position=token.pos if token is not None else 0,
            source=text,
        )
    parser.next()
    function = Name(
        token.value, Span(token.pos, token.pos + len(token.text))
    )
    expr = parser.parse_query()
    parser.finish()
    return Aggregate(function, expr, Span(token.pos, expr.span.end))


def parse_statement_ast(text: str) -> QueryNode | Aggregate:
    """Parse one workload statement, auto-detecting the kind.

    A statement whose first token is a bare word naming a registered
    aggregate function is an aggregation; anything else is a query.  A
    *quoted* leading word is always a node label (that is how a label
    that happens to spell ``sum`` stays a query).
    """
    parser = _Parser(text)
    _checked(parser, "a query")
    head = parser.peek()
    if (
        head is not None
        and head.kind == "word"
        and head.value.lower() in FUNCTIONS
    ):
        return parse_aggregation_ast(text)
    return parse_query_ast(text)

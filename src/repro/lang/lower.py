"""Lowering: typed AST → executable core query objects.

The lowering pass is where surface structure becomes the paper's query
model:

* a :class:`~.ast.PathPattern` expands its composite steps over the
  cartesian product, keeps the simple-path expansions, turns each into a
  :class:`~repro.core.query.GraphQuery` via
  :meth:`~repro.core.query.GraphQuery.from_path` (measured markers feed
  the ``measured_nodes`` set, endpoint openness decides whether the end
  nodes' self-edges participate), and ``OR``-folds multiple expansions;
* a :class:`~.ast.JoinExpr` applies the path-join ``⋈`` over the two
  operands' expansions (:meth:`repro.core.paths.Path.join_composites`)
  *before* building graph queries, so the joined path's measure
  accounting is exact;
* boolean nodes map 1:1 onto :class:`~repro.core.query.And` /
  :class:`Or` / :class:`AndNot`; an :class:`~.ast.Aggregate` must reduce
  to an atomic graph query and becomes a
  :class:`~repro.core.query.PathAggregationQuery`.

Every refusal is a :class:`~repro.errors.QuerySyntaxError` pointing at
the AST node's span.  :func:`diagnose` additionally checks node labels
against an engine's :class:`~repro.core.catalog.EdgeCatalog` and
produces non-fatal did-you-mean diagnostics (an unknown label is a
legitimate empty-answer query, so it warns instead of failing).
"""

from __future__ import annotations

import difflib
import itertools
from dataclasses import dataclass

from ..core.aggregates import FUNCTIONS
from ..core.paths import Path, PathJoinError
from ..core.query import (
    And,
    AndNot,
    GraphQuery,
    Or,
    PathAggregationQuery,
    QueryExpr,
)
from ..errors import QuerySyntaxError
from .ast import (
    Aggregate,
    AndExpr,
    AndNotExpr,
    ElementSet,
    JoinExpr,
    Name,
    OrExpr,
    PathPattern,
    walk_names,
)

__all__ = ["lower_query", "lower_statement", "Diagnostic", "diagnose"]

# Cap on composite-path expansion: |step1| × |step2| × ... products.
MAX_EXPANSIONS = 4096


def _fail(message: str, span, source: str | None = None) -> None:
    raise QuerySyntaxError(
        message, position=getattr(span, "start", None), source=source
    )


@dataclass(frozen=True)
class _Expansion:
    """One concrete path drawn from a pattern: the node labels plus the
    set of labels carrying a measured-node marker."""

    nodes: tuple[str, ...]
    measured: frozenset


def _expand_pattern(pattern: PathPattern, source: str | None) -> list[_Expansion]:
    """All simple-path expansions of a (possibly composite) pattern, in
    left-to-right product order."""
    total = 1
    for step in pattern.steps:
        total *= len(step.nodes)
        if total > MAX_EXPANSIONS:
            _fail(
                f"composite path expands to more than {MAX_EXPANSIONS} "
                "combinations",
                pattern.span,
                source,
            )
    out: list[_Expansion] = []
    single = all(not step.is_composite for step in pattern.steps)
    for combo in itertools.product(*(step.nodes for step in pattern.steps)):
        labels = tuple(node.name.value for node in combo)
        if len(set(labels)) != len(labels):
            if single:
                _fail(
                    f"path repeats node {_dup_label(labels)!r} (paths are "
                    "simple: each node at most once)",
                    pattern.span,
                    source,
                )
            continue  # composite combo that is not a simple path: skip
        measured = frozenset(
            node.name.value for node in combo if node.measured
        )
        out.append(_Expansion(labels, measured))
    if not out:
        _fail(
            "composite path has no simple expansion (every combination "
            "repeats a node)",
            pattern.span,
            source,
        )
    return out


def _dup_label(labels: tuple[str, ...]) -> str:
    seen = set()
    for label in labels:
        if label in seen:
            return label
        seen.add(label)
    return labels[0]  # pragma: no cover - guarded by caller


def _paths_of(node, source: str | None) -> list[tuple[Path, frozenset]]:
    """The composite-path value of a path-level AST node: concrete
    :class:`Path` objects (openness applied) with their measured sets."""
    if isinstance(node, PathPattern):
        out: list[tuple[Path, frozenset]] = []
        for expansion in _expand_pattern(node, source):
            if len(expansion.nodes) == 1:
                label = expansion.nodes[0]
                if node.open_start or node.open_end:
                    _fail(
                        f"an open-ended single node has no elements "
                        f"(write {label!r} closed, e.g. {label}!)",
                        node.span,
                        source,
                    )
                if not expansion.measured:
                    _fail(
                        f"a path needs at least two nodes (got only "
                        f"{label!r}); mark a measured node as {label}! "
                        "or use {(X,X)} for a single node's measure",
                        node.span,
                        source,
                    )
                out.append((Path.node(label), expansion.measured))
                continue
            out.append(
                (
                    Path(
                        expansion.nodes,
                        open_start=node.open_start,
                        open_end=node.open_end,
                    ),
                    expansion.measured,
                )
            )
        return out
    if isinstance(node, JoinExpr):
        left = _paths_of(node.left, source)
        right = _paths_of(node.right, source)
        joined: list[tuple[Path, frozenset]] = []
        for lp, lm in left:
            for rp, rm in right:
                if lp.can_join(rp):
                    joined.append((lp.join(rp), lm | rm))
        if not joined:
            try:
                # Re-raise the core operator's own explanation for the
                # single-pair case; composite joins get the generic text.
                if len(left) == 1 and len(right) == 1:
                    left[0][0].join(right[0][0])
            except PathJoinError as exc:
                _fail(f"path join is undefined: {exc}", node.span, source)
            _fail(
                "path join produced no result (no end/start node pair "
                "with the shared measure counted exactly once)",
                node.span,
                source,
            )
        return joined
    raise TypeError(f"not a path-level AST node: {node!r}")  # pragma: no cover


def _graph_query_of(path: Path, measured: frozenset) -> GraphQuery:
    if path.is_single_node():
        node = path.start
        return GraphQuery([(node, node)])
    return GraphQuery.from_path(path, measured_nodes=measured)


def _or_fold(queries: list[GraphQuery]) -> QueryExpr:
    expr: QueryExpr = queries[0]
    for query in queries[1:]:
        expr = Or(expr, query)
    return expr


def lower_query(node, source: str | None = None) -> QueryExpr:
    """Lower a query AST to a :class:`~repro.core.query.QueryExpr`."""
    if isinstance(node, (PathPattern, JoinExpr)):
        parts = [
            _graph_query_of(path, measured)
            for path, measured in _paths_of(node, source)
        ]
        return _or_fold(parts)
    if isinstance(node, ElementSet):
        return GraphQuery(
            [(u.value, v.value) for u, v in node.pairs]
        )
    if isinstance(node, AndExpr):
        return And(lower_query(node.left, source), lower_query(node.right, source))
    if isinstance(node, OrExpr):
        return Or(lower_query(node.left, source), lower_query(node.right, source))
    if isinstance(node, AndNotExpr):
        return AndNot(
            lower_query(node.left, source), lower_query(node.right, source)
        )
    raise TypeError(f"cannot lower {type(node).__name__}")


def lower_statement(node, source: str | None = None):
    """Lower a statement AST: queries pass through :func:`lower_query`,
    :class:`~.ast.Aggregate` nodes become
    :class:`~repro.core.query.PathAggregationQuery`."""
    if not isinstance(node, Aggregate):
        return lower_query(node, source)
    function = node.function.value.lower()
    if function not in FUNCTIONS:
        suggestion = _closest(function, FUNCTIONS)
        hint = f"; did you mean {suggestion.upper()!r}?" if suggestion else ""
        known = ", ".join(sorted(f.upper() for f in FUNCTIONS))
        _fail(
            f"unknown aggregate function {node.function.value!r} "
            f"({known}){hint}",
            node.function.span,
            source,
        )
    expr = lower_query(node.expr, source)
    if not isinstance(expr, GraphQuery):
        _fail(
            "path aggregation applies to a single graph query, not a "
            "boolean combination",
            node.expr.span,
            source,
        )
    return PathAggregationQuery(expr, function)


# -- did-you-mean diagnostics -------------------------------------------------


@dataclass(frozen=True)
class Diagnostic:
    """A non-fatal finding about a parsed query: the label it concerns,
    its position in the source, and a human message."""

    label: str
    position: int
    message: str


def _closest(word: str, candidates) -> str | None:
    matches = difflib.get_close_matches(word, list(candidates), n=1, cutoff=0.6)
    return matches[0] if matches else None


def diagnose(node, known_nodes) -> list[Diagnostic]:
    """Check every node label of an AST against an engine's catalog.

    ``known_nodes`` is any iterable of labels (typically
    ``engine.catalog.nodes()``).  Unknown labels produce one diagnostic
    each (first occurrence), with a did-you-mean suggestion when a close
    catalog name exists.  Unknown labels are *not* errors — a query over
    an element never loaded simply has an empty answer — so callers
    surface these as warnings.
    """
    known = {str(label) for label in known_nodes}
    if not known:
        return []
    out: list[Diagnostic] = []
    seen: set[str] = set()
    for name in walk_names(node):
        if name.value in known or name.value in seen:
            continue
        seen.add(name.value)
        suggestion = _closest(name.value, known)
        message = f"unknown node {name.value!r}"
        if suggestion is not None:
            message += f"; did you mean {suggestion!r}?"
        out.append(Diagnostic(name.value, name.span.start, message))
    return out


def _name_value(name: Name) -> str:  # pragma: no cover - convenience
    return name.value

"""Workload files: line-oriented statements, comments, and formatting.

A workload file is one statement per line; blank lines and ``#``
comments (whole-line or trailing) are ignored by execution and preserved
verbatim by the formatter.  :func:`parse_workload` attaches 1-based line
numbers to both results and errors; :func:`format_workload` rewrites
every statement to its canonical text (``repro fmt``), which is
idempotent because the canonical form is a fixpoint of
parse → lower → unparse.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QuerySyntaxError
from .lexer import line_and_column, tokenize
from .lower import lower_statement
from .parser import parse_statement_ast
from .unparse import unparse

__all__ = [
    "WorkloadStatement",
    "parse_workload",
    "iter_workload_lines",
    "format_workload",
    "render_syntax_error",
]


@dataclass(frozen=True)
class WorkloadStatement:
    """One executable statement of a workload file."""

    line: int  #: 1-based line number in the file
    text: str  #: the statement's source text (comment stripped)
    query: object  #: the lowered QueryExpr / PathAggregationQuery


def _split_comment(line: str) -> tuple[str, str | None]:
    """``(code, comment)`` — the comment includes its ``#``; ``code`` is
    stripped.  A ``#`` inside a quoted label does not start a comment."""
    for token in tokenize(line, keep_comments=True):
        if token.kind == "comment":
            return line[: token.pos].strip(), line[token.pos :].rstrip()
    return line.strip(), None


def _with_line(exc: QuerySyntaxError, lineno: int) -> QuerySyntaxError:
    out = QuerySyntaxError(
        str(exc), position=exc.position, source=exc.source, line=lineno
    )
    return out


def iter_workload_lines(text: str):
    """Yield ``(lineno, code)`` for every non-empty statement line.

    Raises :class:`QuerySyntaxError` (with ``line`` set) when a line
    cannot even be tokenized — e.g. an unclosed quote.
    """
    for lineno, raw in enumerate(text.splitlines(), start=1):
        try:
            code, _ = _split_comment(raw)
        except QuerySyntaxError as exc:
            raise _with_line(exc, lineno) from None
        if code:
            yield lineno, code


def parse_workload(text: str) -> list[WorkloadStatement]:
    """Parse a whole workload file into lowered statements.

    Any syntax error is re-raised with the offending 1-based ``line``
    attached, so batch consumers can report ``line 7: …`` with a caret.
    """
    out: list[WorkloadStatement] = []
    for lineno, code in iter_workload_lines(text):
        try:
            query = lower_statement(parse_statement_ast(code), source=code)
        except QuerySyntaxError as exc:
            raise _with_line(exc, lineno) from None
        out.append(WorkloadStatement(lineno, code, query))
    return out


def format_workload(text: str) -> str:
    """Canonicalize every statement of a workload file.

    Statements are rewritten to their canonical text; blank lines and
    comments (whole-line and trailing) survive verbatim.  The result
    always ends with a newline, and formatting is idempotent.
    """
    out: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        try:
            code, comment = _split_comment(raw)
            if not code:
                out.append(raw.rstrip())
                continue
            canonical = unparse(
                lower_statement(parse_statement_ast(code), source=code)
            )
        except QuerySyntaxError as exc:
            raise _with_line(exc, lineno) from None
        if comment is not None:
            out.append(f"{canonical}  {comment}")
        else:
            out.append(canonical)
    return "\n".join(out) + "\n"


def render_syntax_error(exc: QuerySyntaxError) -> str:
    """The CLI's caret-annotated rendering of a syntax error.

    One line of message (prefixed ``line N:`` for workload errors), then
    — when the error knows its source and position — the offending
    source line with a ``^`` column marker::

        line 3: unexpected ')' at position 8 (trailing input …)
          A -> B )
                 ^
    """
    message = str(exc)
    prefix = f"line {exc.line}: " if exc.line is not None else ""
    lines = [prefix + message]
    if exc.source is not None and exc.position is not None:
        src_lineno, column = line_and_column(exc.source, exc.position)
        src_lines = exc.source.splitlines() or [""]
        src_line = src_lines[min(src_lineno, len(src_lines)) - 1]
        lines.append("  " + src_line)
        lines.append("  " + " " * (column - 1) + "^")
    return "\n".join(lines)

"""Background view maintenance driven by the observed workload.

The :class:`ViewMaintainer` closes the §5.2 selection loop against live
traffic.  Each refresh:

1. snapshots the :class:`~repro.adaptive.window.WorkloadWindow` the
   executor streams served queries into;
2. re-runs candidate generation (closed frequent element sets) and the
   greedy extended set cover over that window to get the *desired* view
   set;
3. **stages** each missing winner off-epoch — the bitmap is built under
   the executor's shared read lock, so queries keep flowing — and
   **commits** every add and drop in one exclusive-lock swap
   (:meth:`QueryExecutor.commit_view_swap`): rows appended while staging
   are covered by the append-delta, the epoch bump invalidates the
   bitmap cache, and readers observe the old view set or the new one,
   never a mix;
4. drops managed views that fell out of the desired set once their
   measured hit rate over the window decays below ``hit_rate_floor``
   (newly added views get ``grace_refreshes`` rounds to prove
   themselves).

Manually materialized views (not created by this maintainer) are never
dropped; the maintainer only manages its own.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..core.candidates import closed_candidates
from ..core.setcover import greedy_select_views
from .window import WorkloadWindow

__all__ = ["MaintenanceReport", "ViewMaintainer"]


@dataclass
class MaintenanceReport:
    """What one refresh observed and changed."""

    refreshed: bool = False          #: selection ran (window was big enough)
    reason: str = ""                 #: why selection was skipped, when it was
    window: int = 0                  #: entries in the snapshot
    desired: int = 0                 #: views the greedy chooser wanted
    added: list[str] = field(default_factory=list)
    dropped: list[str] = field(default_factory=list)
    kept: list[str] = field(default_factory=list)
    hit_rates: dict[str, float] = field(default_factory=dict)
    epoch: int | None = None         #: engine epoch after the swap, if one happened
    duration_s: float = 0.0

    @property
    def swapped(self) -> bool:
        return bool(self.added or self.dropped)


class ViewMaintainer:
    """Continuously adapt the materialized view set to observed traffic.

    Parameters
    ----------
    executor:
        The :class:`~repro.exec.QueryExecutor` to maintain.  The
        maintainer attaches its window to it and routes every
        stage/commit through the executor's locks.
    window:
        A ready :class:`WorkloadWindow` to observe (shared with other
        consumers), or None for a fresh default-sized one.
    budget:
        Maximum number of maintainer-managed graph views.
    interval_s:
        Sleep between background refreshes (``start``/``stop``); calling
        :meth:`refresh` directly is always allowed and thread-safe.
    min_support:
        Candidate generation threshold: an element set must occur in at
        least this many windowed queries to become a candidate.
    min_window:
        Skip selection entirely until the window holds this many
        queries — early traffic is too thin to justify builds.
    hit_rate_floor:
        A managed view that fell out of the desired set is dropped once
        the fraction of windowed queries whose plan used it sinks below
        this floor.
    grace_refreshes:
        Refresh rounds a newly added view is exempt from dropping (it
        needs a window's worth of traffic to accumulate hits).
    registry / tracer:
        Optional :class:`~repro.obs.MetricsRegistry` (defaults to the
        executor's) publishing ``adaptive.*`` metrics, and an optional
        :class:`~repro.obs.Tracer` given ``adaptive.refresh`` /
        ``adaptive.stage`` / ``adaptive.commit`` spans.
    """

    def __init__(
        self,
        executor,
        window: WorkloadWindow | None = None,
        budget: int = 8,
        interval_s: float = 5.0,
        min_support: int = 2,
        min_window: int = 16,
        hit_rate_floor: float = 0.05,
        grace_refreshes: int = 1,
        name_prefix: str = "adpt",
        registry=None,
        tracer=None,
    ):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if not 0.0 <= hit_rate_floor <= 1.0:
            raise ValueError("hit_rate_floor must be in [0, 1]")
        self.executor = executor
        self.window = window if window is not None else WorkloadWindow()
        executor.attach_window(self.window)
        self.budget = budget
        self.interval_s = interval_s
        self.min_support = min_support
        self.min_window = min_window
        self.hit_rate_floor = hit_rate_floor
        self.grace_refreshes = grace_refreshes
        self.name_prefix = name_prefix
        self.registry = registry if registry is not None else executor.registry
        self.tracer = tracer
        self._managed: dict[str, frozenset] = {}
        self._age: dict[str, int] = {}
        self._counter = 0
        self._refresh_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self.refreshes = 0
        self.views_added = 0
        self.views_dropped = 0
        self.last_report: MaintenanceReport | None = None
        self.last_error: BaseException | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Run :meth:`refresh` every ``interval_s`` in a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-view-maintainer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.refresh()
            except Exception as exc:  # keep the loop alive; surface via status
                self.last_error = exc
                if self.registry is not None:
                    self.registry.counter("adaptive.errors").inc()

    # -- maintenance ---------------------------------------------------------

    def _span(self, name: str, **meta):
        tracer = self.tracer
        return tracer.span(name, **meta) if tracer is not None else nullcontext()

    def _next_name(self) -> str:
        self._counter += 1
        return f"{self.name_prefix}{self._counter}"

    def managed_views(self) -> dict[str, frozenset]:
        with self._refresh_lock:
            return dict(self._managed)

    def refresh(self) -> MaintenanceReport:
        """One synchronous maintenance round (also what the loop runs)."""
        with self._refresh_lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> MaintenanceReport:
        t0 = time.perf_counter()
        entries = self.window.snapshot()
        report = MaintenanceReport(window=len(entries))
        with self._span("adaptive.refresh", window=len(entries)):
            # Forget managed views dropped behind our back (drop_all_views,
            # an external drop_decayed, ...).
            engine_views = self.executor.engine.graph_views
            for name in list(self._managed):
                if name not in engine_views:
                    del self._managed[name]
                    self._age.pop(name, None)
            for name in self._managed:
                self._age[name] += 1

            if len(entries) < self.min_window:
                report.reason = (
                    f"window {len(entries)} below minimum {self.min_window}"
                )
                return self._finish(report, t0)
            report.refreshed = True

            workload = [entry.query for entry in entries]
            with self._span("adaptive.select"):
                candidate_sets = closed_candidates(workload, self.min_support)
                candidates = dict(enumerate(candidate_sets))
                selection = greedy_select_views(
                    [q.elements for q in workload], candidates, self.budget
                )
                desired = [candidates[key] for key in selection.selected]
            report.desired = len(desired)
            desired_set = set(desired)

            n = len(entries)
            uses = Counter(
                name for entry in entries for name in entry.views_used
            )
            report.hit_rates = {
                name: uses.get(name, 0) / n for name in self._managed
            }
            drops = [
                name
                for name, elems in self._managed.items()
                if elems not in desired_set
                and report.hit_rates[name] < self.hit_rate_floor
                and self._age[name] > self.grace_refreshes
            ]
            report.kept = [
                name for name in self._managed if name not in drops
            ]
            # Never duplicate a bitmap that already exists — including
            # manually materialized views the maintainer does not manage.
            existing = {
                frozenset(view.elements) for view in engine_views.values()
            }
            room = self.budget - (len(self._managed) - len(drops))
            adds = [elems for elems in desired if elems not in existing]
            if len(adds) > room:
                adds = adds[: max(room, 0)]

            staged: list[tuple] = []
            if adds:
                with self._span("adaptive.stage", views=len(adds)):
                    for elems in adds:
                        name = self._next_name()
                        _, bitmap, rows = self.executor.stage_view(elems)
                        staged.append((name, elems, bitmap, rows))
            if staged or drops:
                with self._span(
                    "adaptive.commit", adds=len(staged), drops=len(drops)
                ):
                    swap = self.executor.commit_view_swap(
                        adds=staged, drops=drops
                    )
                report.added = swap["added"]
                report.dropped = swap["dropped"]
                report.epoch = swap["epoch"]
                for name, elems, _, _ in staged:
                    self._managed[name] = elems
                    self._age[name] = 0
                for name in swap["dropped"]:
                    self._managed.pop(name, None)
                    self._age.pop(name, None)
            return self._finish(report, t0)

    def _finish(self, report: MaintenanceReport, t0: float) -> MaintenanceReport:
        report.duration_s = time.perf_counter() - t0
        self.refreshes += 1
        self.views_added += len(report.added)
        self.views_dropped += len(report.dropped)
        self.last_report = report
        registry = self.registry
        if registry is not None:
            registry.counter("adaptive.refreshes").inc()
            if report.added:
                registry.counter("adaptive.views_added").inc(len(report.added))
            if report.dropped:
                registry.counter("adaptive.views_dropped").inc(len(report.dropped))
            registry.gauge("adaptive.managed_views").set(len(self._managed))
            registry.gauge("adaptive.window_size").set(report.window)
            registry.histogram("adaptive.maintenance_seconds").observe(
                report.duration_s
            )
            if report.epoch is not None:
                registry.gauge("adaptive.swap_epoch").set(report.epoch)
        return report

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        """JSON-serializable state for ``/views`` and ``repro views``."""
        with self._refresh_lock:
            managed = dict(self._managed)
            last = self.last_report
        payload = {
            "running": self.running,
            "interval_s": self.interval_s,
            "budget": self.budget,
            "hit_rate_floor": self.hit_rate_floor,
            "refreshes": self.refreshes,
            "views_added": self.views_added,
            "views_dropped": self.views_dropped,
            "window": {
                "size": self.window.size,
                "filled": len(self.window),
                "observed": self.window.observed,
            },
            "managed": {
                name: {
                    "elements": [list(e) for e in sorted(elems, key=repr)],
                    "hit_rate": (last.hit_rates.get(name) if last else None),
                }
                for name, elems in sorted(managed.items())
            },
            "last_refresh": None,
            "last_error": repr(self.last_error) if self.last_error else None,
        }
        if last is not None:
            payload["last_refresh"] = {
                "refreshed": last.refreshed,
                "reason": last.reason,
                "window": last.window,
                "desired": last.desired,
                "added": list(last.added),
                "dropped": list(last.dropped),
                "epoch": last.epoch,
                "duration_s": last.duration_s,
            }
        return payload

"""Sliding window over the live query stream.

The executor records every served structural query here (via
:meth:`repro.exec.QueryExecutor.attach_window`), together with the names
of the materialized views its plan used.  The maintainer snapshots the
window to get (a) the observed workload for candidate generation and
(b) per-view hit rates for decay-based dropping.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from ..core.query import GraphQuery

__all__ = ["WindowEntry", "WorkloadWindow"]


@dataclass(frozen=True)
class WindowEntry:
    """One served query and the views its plan consulted."""

    query: GraphQuery
    views_used: tuple[str, ...] = field(default=())


class WorkloadWindow:
    """Thread-safe bounded window of recently served queries.

    ``size`` bounds how much history shapes the next maintenance round: a
    small window adapts fast but thrashes on noise, a large one smooths
    drift.  Recording is a deque append under a lock — cheap enough for
    the per-query hot path.
    """

    def __init__(self, size: int = 512):
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self._entries: deque[WindowEntry] = deque(maxlen=size)
        self._lock = threading.Lock()
        self._observed = 0

    def record(self, query: GraphQuery, views_used: tuple[str, ...] = ()) -> None:
        entry = WindowEntry(query, tuple(views_used))
        with self._lock:
            self._entries.append(entry)
            self._observed += 1

    def snapshot(self) -> list[WindowEntry]:
        """A consistent copy of the current window contents."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def observed(self) -> int:
        """Total queries ever recorded (not capped by the window size)."""
        with self._lock:
            return self._observed

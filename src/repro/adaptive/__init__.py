"""Continuous workload-adaptive view maintenance.

The paper's advisor (§5.2) selects views for a *fixed* workload; this
package closes the loop against live traffic.  A
:class:`WorkloadWindow` attached to a :class:`~repro.exec.QueryExecutor`
captures every served query together with the views its plan actually
used; a background :class:`ViewMaintainer` periodically re-runs candidate
generation + greedy set cover over that window, materializes winning
views incrementally (append-delta over the staged bitmap, built
off-epoch under the read lock), drops views whose measured hit rate
decays below a floor, and commits the whole swap atomically so readers
never block and never observe a half-applied view set.
"""

from .maintainer import MaintenanceReport, ViewMaintainer
from .window import WindowEntry, WorkloadWindow

__all__ = [
    "MaintenanceReport",
    "ViewMaintainer",
    "WindowEntry",
    "WorkloadWindow",
]

"""Graph queries and boolean combinations of them.

A *graph query* ``Gq(V, E)`` (Section 3.2) is a directed graph over the
same universe of named nodes as the data; a record belongs to its answer
iff it contains every structural element of the query (containment by
identity — no isomorphism).  Queries compose with set logic over their
answer sets:

    [Gq1 AND Gq2] = [Gq1] ∩ [Gq2]
    [Gq1 OR  Gq2] = [Gq1] ∪ [Gq2]
    [Gq1 AND NOT Gq2] = [Gq1] − [Gq2]

which the engine evaluates as bitmap algebra (Section 4.2).  The expression
tree classes here (:class:`And`, :class:`Or`, :class:`AndNot`) capture that
composition; :class:`PathAggregationQuery` pairs a graph query with an
aggregate function per Section 3.4.
"""

from __future__ import annotations

from collections.abc import Iterable, Set
from typing import Hashable

from .paths import Path, maximal_paths, source_nodes, terminal_nodes
from .record import Edge, GraphRecord

__all__ = [
    "GraphQuery",
    "QueryExpr",
    "And",
    "Or",
    "AndNot",
    "PathAggregationQuery",
]


class QueryExpr:
    """Base for boolean combinations of graph queries."""

    def __and__(self, other: "QueryExpr") -> "And":
        return And(self, other)

    def __or__(self, other: "QueryExpr") -> "Or":
        return Or(self, other)

    def __sub__(self, other: "QueryExpr") -> "AndNot":
        return AndNot(self, other)

    def atoms(self) -> list["GraphQuery"]:
        """All leaf graph queries in the expression, left to right."""
        raise NotImplementedError


class GraphQuery(QueryExpr):
    """An atomic graph query: a set of structural elements.

    Nodes with measures are represented, as everywhere in the framework, by
    self-edges ``(x, x)``.
    """

    __slots__ = ("_elements",)

    def __init__(self, elements: Iterable[Edge]):
        elems = frozenset(elements)
        if not elems:
            raise ValueError("a graph query must reference at least one element")
        for edge in elems:
            if not isinstance(edge, tuple) or len(edge) != 2:
                raise TypeError(f"structural element must be a (u, v) tuple: {edge!r}")
        self._elements = elems

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_path(
        cls, path: Path, measured_nodes: Set[Hashable] = frozenset()
    ) -> "GraphQuery":
        """Query matching records that contain the given path.

        ``measured_nodes`` lists nodes that carry their own measures in the
        database, so their self-edges become part of the structural
        condition.
        """
        elements = path.elements(measured_nodes)
        if not elements:
            elements = path.edges()
        return cls(elements)

    @classmethod
    def from_node_chain(cls, *nodes: Hashable) -> "GraphQuery":
        """Query for the closed path through the given nodes, edges only.

        The convenient spelling for the paper's Q1-style queries:
        ``GraphQuery.from_node_chain("A", "D", "E", "G", "I")``.
        """
        if len(nodes) < 2:
            raise ValueError("a node chain needs at least two nodes")
        return cls(tuple(zip(nodes, nodes[1:])))

    @classmethod
    def from_record(cls, record: GraphRecord) -> "GraphQuery":
        """Query whose structure is exactly the record's element set."""
        return cls(record.elements())

    # -- protocol ----------------------------------------------------------------

    @property
    def elements(self) -> frozenset[Edge]:
        return self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphQuery):
            return NotImplemented
        return self._elements == other._elements

    def __hash__(self) -> int:
        return hash(self._elements)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._elements

    def __repr__(self) -> str:
        shown = sorted(self._elements, key=repr)
        if len(shown) > 6:
            inner = ", ".join(map(repr, shown[:6])) + ", ..."
        else:
            inner = ", ".join(map(repr, shown))
        return f"GraphQuery({{{inner}}})"

    def atoms(self) -> list["GraphQuery"]:
        return [self]

    # -- structure -----------------------------------------------------------------

    def nodes(self) -> frozenset[Hashable]:
        out: set[Hashable] = set()
        for u, v in self._elements:
            out.add(u)
            out.add(v)
        return frozenset(out)

    def edges(self) -> frozenset[Edge]:
        """Proper edges only."""
        return frozenset(e for e in self._elements if e[0] != e[1])

    def measured_nodes(self) -> frozenset[Hashable]:
        return frozenset(u for (u, v) in self._elements if u == v)

    def sources(self) -> frozenset[Hashable]:
        """``Src(Gq)`` — nodes without incoming proper edges."""
        return source_nodes(self._elements)

    def terminals(self) -> frozenset[Hashable]:
        """``Ter(Gq)`` — nodes without outgoing proper edges."""
        return terminal_nodes(self._elements)

    def maximal_paths(self, max_length: int | None = None) -> list[Path]:
        """Decomposition into maximal source→terminal paths (Section 3.3)."""
        return maximal_paths(self._elements, max_length=max_length)

    def matches(self, record: GraphRecord) -> bool:
        """Reference containment semantics (used by tests and baselines)."""
        return record.contains_subgraph(self._elements)

    # -- set operations (candidate-view generation building blocks) ----------------

    def intersect(self, other: "GraphQuery") -> "GraphQuery | None":
        """Common subgraph ``Gqi ∩ Gqj``, or None when empty (Section 5.2)."""
        common = self._elements & other._elements
        if not common:
            return None
        return GraphQuery(common)

    def union(self, other: "GraphQuery") -> "GraphQuery":
        return GraphQuery(self._elements | other._elements)

    def is_subquery_of(self, other: "GraphQuery") -> bool:
        return self._elements <= other._elements


class _Binary(QueryExpr):
    """Shared plumbing for binary boolean operators."""

    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left: QueryExpr, right: QueryExpr):
        if not isinstance(left, QueryExpr) or not isinstance(right, QueryExpr):
            raise TypeError("operands must be graph queries or expressions")
        self.left = left
        self.right = right

    def atoms(self) -> list[GraphQuery]:
        return self.left.atoms() + self.right.atoms()

    def __repr__(self) -> str:
        return f"({self.left!r} {self._symbol} {self.right!r})"

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.left == other.left and self.right == other.right

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right))


class And(_Binary):
    """``[Gq1 AND Gq2] = [Gq1] ∩ [Gq2]``."""

    _symbol = "AND"


class Or(_Binary):
    """``[Gq1 OR Gq2] = [Gq1] ∪ [Gq2]``."""

    _symbol = "OR"


class AndNot(_Binary):
    """``[Gq1 AND NOT Gq2] = [Gq1] − [Gq2]``."""

    _symbol = "AND NOT"


class PathAggregationQuery:
    """``F_Gq`` — retrieve records matching ``Gq`` and apply ``function``
    along every maximal source→terminal path (Section 3.4).

    ``function`` is a name resolved in :mod:`repro.core.aggregates`
    (``"sum"``, ``"max"``, …).
    """

    __slots__ = ("query", "function")

    def __init__(self, query: GraphQuery, function: str = "sum"):
        if not isinstance(query, GraphQuery):
            raise TypeError("query must be an atomic GraphQuery")
        self.query = query
        self.function = function.lower()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathAggregationQuery):
            return NotImplemented
        return self.query == other.query and self.function == other.function

    def __hash__(self) -> int:
        return hash((self.query, self.function))

    def __repr__(self) -> str:
        return f"{self.function.upper()}_{self.query!r}"

    def maximal_paths(self, max_length: int | None = None) -> list[Path]:
        return self.query.maximal_paths(max_length=max_length)

"""The graph-analytics engine: the paper's full stack behind one facade.

Split into three layers (the facade keeps the original module's public
surface, so ``from repro.core.engine import GraphAnalyticsEngine`` and
previously saved engine directories keep working):

* :mod:`.planner` — query → :class:`PhysicalPlan`, the serializable IR
  shared by execution, EXPLAIN, and tracing;
* :mod:`.operators` — physical operators (bitmap fetch, memoized
  conjunction fold) that run against one storage backend or once per
  record-range shard;
* :mod:`.facade` — :class:`GraphAnalyticsEngine` itself: ingest,
  persistence, view materialization, and result assembly over either a
  plain or a sharded master relation.
"""

from .facade import (
    GraphAnalyticsEngine,
    GraphQueryResult,
    MaterializationReport,
    PathAggregationResult,
)
from .operators import ShardTask, shard_tasks
from .planner import PhysicalPlan, Planner

__all__ = [
    "GraphAnalyticsEngine",
    "GraphQueryResult",
    "PathAggregationResult",
    "MaterializationReport",
    "PhysicalPlan",
    "Planner",
    "ShardTask",
    "shard_tasks",
]

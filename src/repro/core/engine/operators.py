"""The operator layer: plan execution primitives over one storage backend.

These are the physical operators the engine's facade composes: fetch one
conjunction input's bitmap column, fold a canonical part list into a
structural bitmap (memoizing every prefix when a cache is installed), and
describe the record-range shards a backend exposes so the same fold can
run once per shard and merge by concatenation.

Every operator takes the backend (a relation or one shard of one) and the
catalog explicitly instead of reaching back into the engine, so the exact
same code path serves three callers: the unsharded engine (``shard=0``
over the whole relation), the serial per-shard loop (tracing installed),
and the executor's shard pool (each worker runs ``conjunction`` against
its own :class:`ShardTask`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from contextlib import nullcontext
from dataclasses import dataclass

from ...columnstore.bitmap import Bitmap
from ..record import Edge
from ..rewrite import ConjunctionPart

__all__ = [
    "MERGED_SHARD",
    "NULL_SPAN",
    "ShardTask",
    "shard_tasks",
    "part_token",
    "fetch_part",
    "conjunction",
    "serial_map",
]

# Shared no-op context for the tracing hooks: reusable and reentrant, so
# one instance serves every untraced span site without allocation.
NULL_SPAN = nullcontext()

# Cache-key shard id for a conjunction already merged across every shard.
# Real shards are numbered from 0, so -1 can never collide; a warm sharded
# query is then a single lookup instead of a fan-out plus concatenation.
MERGED_SHARD = -1


def part_token(part: ConjunctionPart) -> str:
    """Stable display string for a conjunction part's bitmap column."""
    token = part.token
    if isinstance(token, str):
        return token
    try:
        u, v = token
        return f"{u}->{v}"
    except (TypeError, ValueError):
        return repr(token)


@dataclass(frozen=True)
class ShardTask:
    """One unit of shard-parallel work: a record-range shard plus its
    global row offset (global row = ``start`` + shard-local row)."""

    shard: int
    start: int
    relation: object

    def __repr__(self) -> str:  # keep worker logs short
        return f"ShardTask(shard={self.shard}, start={self.start})"


def shard_tasks(backend) -> list[ShardTask]:
    """The backend's record-range shards as ordered work items.

    A plain :class:`MasterRelation` yields one task covering everything;
    a :class:`~repro.columnstore.sharded.ShardedTable` yields one per
    shard, in record order — so ``Bitmap.concat`` over per-task results is
    always the order-preserving merge.
    """
    return [
        ShardTask(i, start, relation)
        for i, (relation, start) in enumerate(
            zip(backend.shard_relations(), backend.shard_starts(), strict=True)
        )
    ]


def serial_map(fn: Callable, items: Sequence) -> list:
    """The default shard mapper: run tasks in submission order, inline.
    The executor swaps in a thread-pool mapper with the same contract
    (results in input order, first exception propagated)."""
    return [fn(item) for item in items]


def fetch_part(relation, catalog, part: ConjunctionPart, tracer=None) -> Bitmap:
    """Fetch one conjunction input's bitmap column (counted as I/O).

    ``relation`` may be one shard of a sharded backend: an element column
    the shard never saw contributes an all-zero segment with no I/O charge
    (there is no column file there to fetch) — the planner has already
    verified the element exists globally.
    """
    if part.kind == "element":
        edge_id = catalog.get_id(part.token)
        if edge_id is None or not relation.has_element(edge_id):
            return Bitmap.zeros(relation.n_records)
        bitmap = relation.bitmap(edge_id)
    elif part.kind == "graph-view":
        bitmap = relation.view_bitmap(part.token)
    else:
        bitmap = relation.aggregate_view_bitmap(part.token)
    if tracer is not None:
        tracer.add("bitmaps_fetched")
        tracer.add("bytes_touched", bitmap.nbytes())
    return bitmap


def conjunction(
    relation,
    catalog,
    parts: list[ConjunctionPart],
    keys: list[frozenset[Edge]] | None,
    cache,
    epoch: int,
    shard: int = 0,
    tracer=None,
    ctx=None,
) -> Bitmap:
    """AND the parts' bitmaps over ``relation``, memoizing intermediates
    when a cache is installed.

    Cached entries are keyed on ``(epoch, shard, cumulative covered
    edge-set)`` — well-defined because every part's bitmap equals the AND
    of its covered elements' base bitmaps restricted to the shard's record
    range.  Evaluation folds left in canonical part order, looking up each
    running prefix, so overlapping queries (ordered together by the
    executor) extend each other's cached prefixes instead of recomputing
    from scratch.

    ``ctx`` is the query's :class:`repro.resilience.QueryContext` (or
    None); the fold checks it before every part fetch, so an expired
    deadline or a fired cancel token stops the query one operator step
    past the event.  Prefixes completed before the stop are exact and stay
    cached — an aborted fold never leaves a partial bitmap behind because
    insertion only happens after a part's compute returns.
    """
    if ctx is not None:
        ctx.check()
    if cache is None or any(not part.covered for part in parts):

        def fetch_checked(part: ConjunctionPart) -> Bitmap:
            if ctx is not None:
                ctx.check()
            return fetch_part(relation, catalog, part)

        if tracer is None:
            return Bitmap.and_all(fetch_checked(part) for part in parts)

        def fetch_traced(part: ConjunctionPart) -> Bitmap:
            if ctx is not None:
                ctx.check()
            with tracer.span("and", kind=part.kind, part=part_token(part)):
                return fetch_part(relation, catalog, part, tracer)

        return Bitmap.and_all(fetch_traced(part) for part in parts)

    def build(i: int) -> Bitmap:
        def compute() -> Bitmap:
            if ctx is not None:
                ctx.check()
            if tracer is not None:
                tracer.add("cache_miss")
            bitmap = fetch_part(relation, catalog, parts[i], tracer)
            return bitmap if i == 0 else build(i - 1) & bitmap

        if tracer is None:
            return cache.get_or_compute(epoch, keys[i], compute, shard=shard)
        # One span per conjunction part: a prefix served from cache
        # closes immediately with cache_hit=1; a miss nests the fetch
        # (and the shorter prefix's span) inside it.
        with tracer.span(
            "and", kind=parts[i].kind, part=part_token(parts[i])
        ) as span:
            result = cache.get_or_compute(epoch, keys[i], compute, shard=shard)
            if "cache_miss" not in span.counters:
                span.add("cache_hit")
            return result

    return build(len(parts) - 1)

"""The engine facade: plan, execute, and persist behind one object.

:class:`GraphAnalyticsEngine` keeps the public surface the repo has always
had, but internally delegates to the three layers this package separates:

* the **planner** (:mod:`.planner`) turns queries into serializable
  :class:`PhysicalPlan` objects — the same object the operator layer
  executes, the EXPLAIN renderer serializes, and the tracer annotates;
* the **operator layer** (:mod:`.operators`) evaluates a plan's canonical
  conjunction against one storage backend — or once per record-range
  shard, merged by order-preserving concatenation;
* the **storage backend** (:class:`~repro.columnstore.backend.StorageBackend`)
  is either a plain :class:`MasterRelation` or a
  :class:`~repro.columnstore.sharded.ShardedTable` (``shards > 1``); all
  measure gathers, view maintenance, and persistence route through its
  interface, so the facade's query code is shard-agnostic.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path as FsPath
from typing import Hashable

import numpy as np

from ...columnstore.bitmap import Bitmap
from ...columnstore.column import MeasureColumn
from ...columnstore.iostats import IOStats, IOStatsCollector
from ...columnstore.persistence import load_relation, save_relation
from ...columnstore.sharded import (
    SHARD_MANIFEST,
    ShardedTable,
    is_sharded_dir,
    load_sharded,
    save_sharded,
)
from ...columnstore.table import MasterRelation
from ...errors import (
    IngestError,
    ManifestError,
    PersistenceError,
    ResilienceError,
    ShardExecutionError,
)
from ..aggregates import get_function
from ..candidates import (
    apriori_candidates,
    candidate_aggregate_paths,
    closed_candidates,
    intersection_closure_candidates,
)
from ..catalog import EdgeCatalog
from ..paths import Path
from ..query import And, AndNot, GraphQuery, Or, PathAggregationQuery, QueryExpr
from ..record import Edge, GraphRecord
from ..rewrite import (
    AggregationPlan,
    GraphQueryPlan,
    prune_unavailable_views,
)
from ..setcover import greedy_select_views
from ..views import AggregateGraphView, GraphView
from .operators import MERGED_SHARD, NULL_SPAN, conjunction, shard_tasks
from .planner import PhysicalPlan, Planner

__all__ = [
    "GraphAnalyticsEngine",
    "GraphQueryResult",
    "PathAggregationResult",
    "MaterializationReport",
]


@dataclass
class GraphQueryResult:
    """Answer of a graph query: matching records and their measures."""

    query: GraphQuery
    rows: np.ndarray
    record_ids: list
    measures: dict[Edge, np.ndarray]
    plan: GraphQueryPlan | None = None
    epoch: int | None = None
    #: Degraded-mode report (repro.resilience.DegradedReport) when shards
    #: were skipped under partial_ok; None for a complete answer.
    degraded: object | None = None

    def __len__(self) -> int:
        return int(self.rows.size)

    def n_measure_values(self) -> int:
        return sum(int(a.size) for a in self.measures.values())


@dataclass
class PathAggregationResult:
    """Answer of a path-aggregation query: one aggregate per maximal path
    per matching record."""

    query: PathAggregationQuery
    rows: np.ndarray
    record_ids: list
    path_values: dict[Path, np.ndarray]
    plan: AggregationPlan | None = None
    epoch: int | None = None
    #: Degraded-mode report (repro.resilience.DegradedReport) when shards
    #: were skipped under partial_ok; None for a complete answer.
    degraded: object | None = None

    def __len__(self) -> int:
        return int(self.rows.size)


@dataclass
class MaterializationReport:
    """What a materialization run considered and chose."""

    kind: str
    n_candidates: int
    selected: list[str] = field(default_factory=list)
    stopped_on_singleton: bool = False


class GraphAnalyticsEngine:
    """Store and analyze a massive collection of small graph records.

    With ``shards > 1`` the master relation is horizontally partitioned
    into that many contiguous record-range shards; query answers are
    bit-identical to the unsharded engine, but structural conjunctions can
    evaluate shard-by-shard (in parallel under a
    :class:`~repro.exec.QueryExecutor`) and incremental appends rebuild
    only the last shard.
    """

    def __init__(self, partition_width: int = 1000, shards: int = 1):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.catalog = EdgeCatalog()
        self.collector = IOStatsCollector()
        if shards > 1:
            self.relation = ShardedTable(
                shards, partition_width=partition_width, collector=self.collector
            )
        else:
            self.relation = MasterRelation(
                partition_width=partition_width, collector=self.collector
            )
        self._record_ids: list = []
        self._graph_views: dict[str, GraphView] = {}
        self._agg_views: dict[str, AggregateGraphView] = {}
        self._measured_nodes: set[Hashable] = set()
        self._view_counter = 0
        # The planner owns the plan memo, invalidated whenever the data or
        # view set changes: rewriting is pure in (query, views, backend),
        # so repeated queries — the common case in the paper's workloads —
        # plan once.
        self._views_epoch = 0
        self._planner = Planner(self)
        # State epoch: bumps on every data or view mutation.  Cached
        # structural bitmaps are keyed on it, so concurrent readers can
        # never be served a conjunction computed against an older state.
        self._epoch = 0
        # Optional shared bitmap-conjunction cache (see repro.exec.cache),
        # installed by use_bitmap_cache(); None keeps the original
        # uncached evaluation path.
        self._bitmap_cache = None
        # Optional tracer (repro.obs.Tracer), installed by use_tracer();
        # None keeps every hot path on a single attribute check.
        self._tracer = None
        # Optional parallel shard mapper, installed by a QueryExecutor via
        # use_shard_mapper(); None evaluates shards serially in the
        # calling thread.
        self._shard_map = None
        # Optional out-of-process shard compute, installed via
        # use_shard_compute(); None folds conjunctions in-process.
        self._shard_compute = None
        # Optional resilience policy (repro.resilience.ResiliencePolicy),
        # installed by use_resilience(); supervises per-shard execution
        # with retries, circuit breakers, and partial_ok degraded mode.
        # None propagates shard failures wrapped as ShardExecutionError.
        self._resilience = None

    # -- loading ------------------------------------------------------------

    @property
    def n_records(self) -> int:
        return self.relation.n_records

    @property
    def n_shards(self) -> int:
        """Record-range shards in the backend (1 = unsharded)."""
        return len(self.relation.shard_relations())

    @property
    def measured_nodes(self) -> frozenset[Hashable]:
        """Nodes that carry their own measures anywhere in the data."""
        return frozenset(self._measured_nodes)

    @property
    def graph_views(self) -> dict[str, GraphView]:
        return dict(self._graph_views)

    @property
    def aggregate_views(self) -> dict[str, AggregateGraphView]:
        return dict(self._agg_views)

    def _ingest_rows(self, records: Iterable[GraphRecord]) -> int:
        """Append rows without rebalancing (sharded appends grow the last
        shard only); bumps the epoch and invalidates cached plans."""
        count = 0
        for record in records:
            cells = {
                self.catalog.intern(edge): value
                for edge, value in record.measures().items()
            }
            self.relation.append_row(cells)
            self._record_ids.append(record.record_id)
            self._measured_nodes.update(record.measured_nodes())
            count += 1
        self._planner.invalidate()
        self._bump_epoch()
        return count

    def load_records(self, records: Iterable[GraphRecord]) -> int:
        """Append graph records row by row; returns how many were loaded.

        On a sharded engine a bulk load lands in the last shard first and
        is then rebalanced into even record ranges (record order, and thus
        query answers, are unchanged).  Use :meth:`append_records` for
        incremental growth that must not move shard boundaries.
        """
        count = self._ingest_rows(records)
        if self.n_shards > 1:
            self.relation.rebalance()
            self._bump_epoch()
        return count

    def load_records_parallel(
        self, records: Iterable[GraphRecord], jobs: int | None = None
    ) -> int:
        """Bulk-load into an *empty* sharded engine with one ingest worker
        per shard.

        The record list is split into contiguous chunks (chunk *i* becomes
        shard *i*'s record range, so global record order matches
        :meth:`load_records` exactly) and the per-shard row appends run on
        a thread pool.  Falls back to the serial :meth:`load_records` when
        the engine is unsharded, already holds records, or the batch is
        smaller than the shard count.
        """
        records = list(records)
        shards = self.relation.shard_relations()
        k = len(shards)
        if k == 1 or self.n_records or len(records) < k:
            return self.load_records(records)
        # Interning mutates the shared catalog, so build each row's cell
        # dict serially; only the per-shard row appends fan out.
        prepared: list[list[dict[int, float]]] = [[] for _ in range(k)]
        base, extra = divmod(len(records), k)
        offset = 0
        for i in range(k):
            size = base + (1 if i < extra else 0)
            chunk = records[offset : offset + size]
            offset += size
            for record in chunk:
                prepared[i].append(
                    {
                        self.catalog.intern(edge): value
                        for edge, value in record.measures().items()
                    }
                )
                self._record_ids.append(record.record_id)
                self._measured_nodes.update(record.measured_nodes())

        def ingest(i: int) -> None:
            shard = shards[i]
            for cells in prepared[i]:
                shard.append_row(cells)

        with ThreadPoolExecutor(max_workers=jobs or k) as pool:
            list(pool.map(ingest, range(k)))
        self._planner.invalidate()
        self._bump_epoch()
        return len(records)

    def append_records(self, records: Iterable[GraphRecord]) -> int:
        """Append records *and incrementally maintain all views*.

        Each graph view gains one bit per new record (1 iff the record
        contains every view element); each aggregate view gains the
        record's pre-computed path aggregate, or NULL when the record
        lacks the path.  Equivalent to rebuilding the views from scratch,
        at O(new records × views) maintenance cost.  On a sharded engine
        only the last shard grows — earlier shard boundaries (and their
        persisted files) are untouched.
        """
        records = list(records)
        loaded = self._ingest_rows(records)
        measured = frozenset(self._measured_nodes)
        for name, view in self._graph_views.items():
            flags = [record.contains_subgraph(view.elements) for record in records]
            self.relation.extend_graph_view(name, flags)
        for name, view in self._agg_views.items():
            elements = view.elements(measured) or view.path.edges()
            for stored_fn in view.stored_functions():
                fn = get_function(stored_fn)
                cells: list[float | None] = []
                for record in records:
                    if record.contains_subgraph(elements):
                        arrays = [
                            np.array([record.measure(e)]) for e in elements
                        ]
                        cells.append(float(fn(arrays)[0]))
                    else:
                        cells.append(None)
                self.relation.extend_aggregate_view(f"{name}:{stored_fn}", cells)
        # _ingest_rows() already bumped the epoch, but the view extensions
        # above changed bitmap contents again; bump once more so nothing
        # cached between the two phases can ever be served.
        self._bump_epoch()
        return loaded

    def load_columnar(
        self,
        record_ids: Sequence,
        columns: Mapping[Edge, tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Vectorized bulk load: per element, parallel (row, value) arrays.

        The fast path used by the workload generators; equivalent to
        :meth:`load_records` on the corresponding records.  On an empty
        sharded engine the rows split evenly into the shards' record
        ranges; each sparse column is routed shard-by-shard.
        """
        base = self.relation.n_records
        self.relation.set_record_count(base + len(record_ids))
        self._record_ids.extend(record_ids)
        for edge, (rows, values) in columns.items():
            edge_id = self.catalog.intern(edge)
            self.relation.load_sparse_column(
                edge_id, np.asarray(rows, dtype=np.int64) + base, values
            )
            if edge[0] == edge[1]:
                self._measured_nodes.add(edge[0])
        self._planner.invalidate()
        self._bump_epoch()

    def record_ids_at(self, rows: np.ndarray) -> list:
        return [self._record_ids[i] for i in np.asarray(rows, dtype=np.int64)]

    # -- sharding ------------------------------------------------------------

    def reshard(self, shards: int) -> None:
        """Re-partition the backend into ``shards`` record-range shards.

        ``shards=1`` merges back into a plain in-memory relation.  Record
        order, columns, and views are preserved bit-for-bit; the epoch
        bumps (shard-keyed cache entries from the old geometry can never
        be served) and cached plans are rebuilt.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shards == self.n_shards:
            return
        if shards == 1:
            self.relation = self.relation.to_relation()
        else:
            self.relation = ShardedTable.from_relation(self.relation, shards)
        self.relation.collector = self.collector
        self._planner.invalidate()
        self._bump_epoch()

    def rebalance(self) -> None:
        """Re-split a sharded backend into even record ranges (no-op when
        unsharded); useful after many incremental appends."""
        if self.n_shards > 1:
            self.relation.rebalance()
            self._planner.invalidate()
            self._bump_epoch()

    def use_shard_mapper(self, mapper) -> None:
        """Install (or with ``None`` remove) a parallel shard mapper:
        ``mapper(fn, tasks) -> list`` with results in task order.  A
        :class:`~repro.exec.QueryExecutor` installs a thread-pool mapper;
        without one, shards evaluate serially in the calling thread."""
        self._shard_map = mapper

    def use_shard_compute(self, compute) -> None:
        """Install (or with ``None`` remove) a remote shard compute:
        ``compute(task, parts, keys, ctx) -> Bitmap``, evaluating one
        shard's conjunction out-of-process (see
        :class:`~repro.exec.ProcessShardPool`).  Supervision — retries,
        breakers, deadlines, ``partial_ok`` — stays in this process; only
        the fold itself moves.  Traced queries always run in-process so
        spans keep their operator-level detail."""
        self._shard_compute = compute

    # -- persistence ----------------------------------------------------------

    _CHECKPOINT = "ingest_checkpoint.json"

    @staticmethod
    def _atomic_write_json(path: FsPath, payload: dict) -> None:
        staged = path.with_name(path.name + ".tmp")
        staged.write_text(json.dumps(payload))
        os.replace(staged, path)

    @staticmethod
    def is_saved_engine(directory: str | FsPath) -> bool:
        """Whether ``directory`` looks like a saved engine database
        (either the plain single-relation layout or the sharded one)."""
        directory = FsPath(directory)
        return (directory / "manifest.json").is_file() or (
            directory / SHARD_MANIFEST
        ).is_file()

    def _engine_meta(self) -> dict:
        return {
            "record_ids": [str(r) for r in self._record_ids],
            "edges": [list(edge) for edge in self.catalog],
            "measured_nodes": sorted(str(n) for n in self._measured_nodes),
            "graph_views": [
                {
                    "name": view.name,
                    "elements": [list(e) for e in sorted(view.elements, key=repr)],
                }
                for _, view in sorted(self._graph_views.items())
            ],
            "aggregate_views": [
                {
                    "name": view.name,
                    "nodes": list(view.path.nodes),
                    "open_start": view.path.open_start,
                    "open_end": view.path.open_end,
                    "function": view.function,
                }
                for _, view in sorted(self._agg_views.items())
            ],
            "view_counter": self._view_counter,
        }

    def save(self, directory: str | FsPath) -> None:
        """Persist the full engine (relation + catalog + view definitions)
        under ``directory``, crash-safely.

        The engine metadata rides inside the relation manifest (the root
        shard manifest when sharded), so columns, views, and catalog commit
        in *one* atomic swap — an interrupted save leaves the previous
        state loadable, never a torn mix.  A sharded engine writes one
        full per-shard relation layout (own manifest + CRCs) per shard.
        """
        directory = FsPath(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = self._engine_meta()
        if isinstance(self.relation, ShardedTable):
            save_sharded(self.relation, directory, app_meta=meta)
        else:
            save_relation(self.relation, directory, app_meta=meta)

    @classmethod
    def load(
        cls, directory: str | FsPath, shards: int | None = None
    ) -> "GraphAnalyticsEngine":
        """Reconstruct an engine saved by :meth:`save` (either layout).

        Base columns are integrity-checked (corruption raises
        :class:`~repro.errors.CorruptionError`); views whose files were
        damaged are dropped with a warning and queries transparently fall
        back to base bitmaps.  Pass ``shards`` to re-partition the loaded
        engine (``shards=1`` flattens a sharded save; any other count
        re-splits it evenly).
        """
        directory = FsPath(directory)
        engine = cls()
        if is_sharded_dir(directory):
            relation = load_sharded(directory)
        else:
            relation = load_relation(directory)
        relation.collector = engine.collector
        engine.relation = relation
        meta = relation.app_meta
        if meta is None:
            raise PersistenceError(
                f"{directory} carries no engine metadata; was this relation "
                "saved with GraphAnalyticsEngine.save()?"
            )
        try:
            engine._record_ids = list(meta["record_ids"])
            for edge in meta["edges"]:
                engine.catalog.intern(tuple(edge))
            engine._measured_nodes = set(meta["measured_nodes"])
            for spec in meta.get("graph_views", []):
                view = GraphView(
                    spec["name"], frozenset(tuple(e) for e in spec["elements"])
                )
                engine._graph_views[view.name] = view
            for spec in meta.get("aggregate_views", []):
                path = Path(
                    spec["nodes"],
                    open_start=spec["open_start"],
                    open_end=spec["open_end"],
                )
                view = AggregateGraphView(spec["name"], path, spec["function"])
                engine._agg_views[view.name] = view
            engine._view_counter = int(meta.get("view_counter", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(
                f"{directory}: malformed engine metadata: {exc}"
            ) from None
        if len(engine._record_ids) != relation.n_records:
            raise ManifestError(
                f"{directory}: {len(engine._record_ids)} record ids for "
                f"{relation.n_records} stored records"
            )
        engine.sync_views_with_relation()
        if shards is not None:
            engine.reshard(shards)
        return engine

    def sync_views_with_relation(self) -> list[str]:
        """Drop view definitions whose backing columns the relation lacks
        (e.g. refused at load time as corrupt, in any shard), so the
        rewriter degrades to base bitmaps instead of planning against
        phantom views.  Returns the dropped view names."""
        dropped = prune_unavailable_views(
            self._graph_views, self._agg_views, self.relation
        )
        self._bump_views_epoch()
        return dropped

    def load_records_resumable(
        self,
        records: Iterable[GraphRecord],
        directory: str | FsPath,
        batch_size: int = 1000,
    ) -> int:
        """Bulk-load ``records`` in batches, persisting a checkpoint after
        each batch so a crashed load can resume.

        After every ``batch_size`` records the engine is saved to
        ``directory`` (atomically) and ``ingest_checkpoint.json`` records
        how far the input stream got.  To resume after a crash, reload the
        persisted engine with :meth:`load` and call this again with the
        *same* record stream: already-persisted records are skipped and
        loading continues from the first unsaved one.  Re-running a
        finished load with the same stream is a no-op, and a stream that
        has since grown (an appended log file) loads only the new tail.
        Returns the number of records loaded by *this* call.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        directory = FsPath(directory)
        directory.mkdir(parents=True, exist_ok=True)
        checkpoint = directory / self._CHECKPOINT
        if checkpoint.is_file():
            try:
                state = json.loads(checkpoint.read_text())
                base = int(state["base"])
                loaded_before = int(state["loaded"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                raise ManifestError(
                    f"{checkpoint}: corrupt ingest checkpoint; delete it to "
                    "restart the load from scratch"
                ) from None
            # The engine may hold a few more records than the checkpoint
            # says (a crash can land between the save and the checkpoint
            # write); the saved engine is the source of truth.
            if self.n_records < base + loaded_before:
                raise IngestError(
                    f"engine holds {self.n_records} records but "
                    f"{checkpoint} expects at least {base + loaded_before}; "
                    f"resume from the saved engine: GraphAnalyticsEngine.load({str(directory)!r})"
                )
            skip = self.n_records - base
        else:
            base = self.n_records
            skip = 0
        stream = iter(records)
        if skip:
            consumed = sum(1 for _ in islice(stream, skip))
            if consumed < skip:
                raise IngestError(
                    f"record stream has only {consumed} records but "
                    f"{skip} were already loaded; resume with the same source"
                )
        loaded = 0
        while batch := list(islice(stream, batch_size)):
            loaded += self.load_records(batch)
            self.save(directory)
            self._atomic_write_json(
                checkpoint, {"base": base, "loaded": self.n_records - base}
            )
        if loaded == 0 and not self.is_saved_engine(directory):
            self.save(directory)
        self._atomic_write_json(
            checkpoint,
            {"base": base, "loaded": self.n_records - base, "complete": True},
        )
        return loaded

    # -- structural evaluation -------------------------------------------------

    def _empty_bitmap(self) -> Bitmap:
        return Bitmap.zeros(self.relation.n_records)

    def _bump_views_epoch(self) -> None:
        self._views_epoch += 1
        self._planner.invalidate()
        self._bump_epoch()

    def _bump_epoch(self) -> None:
        """Advance the state epoch after any data/view mutation.

        The bitmap-conjunction cache keys on the epoch, so bumping it
        atomically invalidates every cached intermediate; stale entries are
        also proactively dropped to release their budget.
        """
        self._epoch += 1
        if self._bitmap_cache is not None:
            self._bitmap_cache.drop_stale(self._epoch)

    @property
    def epoch(self) -> int:
        """Monotonic state epoch: bumps on every append/load/view change."""
        return self._epoch

    @property
    def bitmap_cache(self):
        return self._bitmap_cache

    def use_bitmap_cache(self, cache) -> None:
        """Install (or with ``None`` remove) a shared bitmap-conjunction
        cache (:class:`repro.exec.BitmapCache`); its hit/miss/eviction
        traffic is reported to this engine's stats collector."""
        self._bitmap_cache = cache
        if cache is not None:
            cache.collector = self.collector

    @property
    def tracer(self):
        return self._tracer

    def use_tracer(self, tracer) -> None:
        """Install (or with ``None`` remove) a :class:`repro.obs.Tracer`.

        Tracing is purely observational — query answers are identical with
        and without it — and with no tracer installed every hook is a
        single attribute check, so the disabled cost is negligible."""
        self._tracer = tracer

    def use_metrics(self, registry) -> None:
        """Publish this engine's I/O accounting (and an installed bitmap
        cache's traffic) into a :class:`repro.obs.MetricsRegistry`; pass
        ``None`` to stop publishing."""
        self.collector.registry = registry
        if self._bitmap_cache is not None:
            self._bitmap_cache.registry = registry
        if self._resilience is not None:
            self._resilience.registry = registry

    @property
    def resilience(self):
        return self._resilience

    def use_resilience(self, policy) -> None:
        """Install (or with ``None`` remove) a
        :class:`repro.resilience.ResiliencePolicy` supervising per-shard
        execution: bounded retries with backoff, a per-shard circuit
        breaker keyed on the engine generation, and ``partial_ok``
        degraded answers.  Without one, a failing shard fails the query
        with a typed :class:`~repro.errors.ShardExecutionError` on the
        first attempt."""
        self._resilience = policy
        if policy is not None and self.collector.registry is not None:
            policy.registry = self.collector.registry

    def _span(self, name: str, **meta):
        """A tracer span when tracing is on, the shared no-op otherwise."""
        tracer = self._tracer
        return tracer.span(name, **meta) if tracer is not None else NULL_SPAN

    # -- planning --------------------------------------------------------------

    def physical_plan(self, query: GraphQuery | PathAggregationQuery) -> PhysicalPlan:
        """The serializable physical plan for ``query`` — the single source
        of truth shared by execution, ``repro explain``, and the tracer.
        Memoized until the next mutation; computing it has no side effect
        beyond warming that memo."""
        return self._planner.physical_plan(query)

    def plan_query(self, query: GraphQuery) -> GraphQueryPlan:
        """The rewrite chosen for ``query`` given current views (§5.3)."""
        return self._planner.plan_query(query)

    def plan_aggregation(self, query: PathAggregationQuery) -> AggregationPlan:
        return self._planner.plan_aggregation(query)

    def conjunction_inputs(self, query: GraphQuery | PathAggregationQuery):
        """Public introspection: ``(plan, canonical parts, prefix keys)``.

        The exact inputs :meth:`query`/:meth:`aggregate` AND together —
        ``parts`` is None when a residual element has no column (the
        answer is empty without touching any bitmap).  These are fields of
        the memoized :meth:`physical_plan`, kept as a tuple for backwards
        compatibility.
        """
        plan = self._planner.physical_plan(query)
        return plan.logical, plan.parts, plan.prefix_keys

    # -- conjunction execution -------------------------------------------------

    def _conjunction(self, parts, keys, ctx=None) -> Bitmap:
        """Legacy single-backend fold (also shard 0 of the key space)."""
        return conjunction(
            self.relation,
            self.catalog,
            parts,
            keys,
            self._bitmap_cache,
            self._epoch,
            shard=0,
            tracer=self._tracer,
            ctx=ctx,
        )

    def _conjunction_over_backend(self, parts, keys, ctx=None) -> Bitmap:
        """Evaluate the canonical conjunction over the storage backend.

        Unsharded backends use the single fold unchanged.  Sharded ones
        fold once per record-range shard — through the executor-installed
        parallel mapper when present, else serially — and concatenate the
        per-shard segments, which *is* the order-preserving merge because
        shards partition the record space contiguously and in order.  With
        a tracer installed the shards run serially so each shard's spans
        nest as children of the current query span.

        The *merged* bitmap is additionally cached under the
        :data:`~repro.core.engine.operators.MERGED_SHARD` sentinel key, so
        a warm repeat of a hot query skips the whole fan-out and merge —
        with many shards the per-query concatenation costs as much as the
        conjunctions it combines.  Traced queries bypass the merged entry
        (never the per-shard ones) so their span tree always shows the
        real per-shard execution.
        """
        tasks = shard_tasks(self.relation)
        if len(tasks) == 1:
            return self._conjunction(parts, keys, ctx)
        cache = self._bitmap_cache
        if cache is not None and keys and self._tracer is None:
            cached = cache.lookup(self._epoch, keys[-1], shard=MERGED_SHARD)
            if cached is not None:
                return cached
            merged = self._merge_shards(parts, keys, tasks, ctx)
            # A degraded merge (any shard skipped under partial_ok) is a
            # partial answer — caching it would poison later healthy
            # queries, so the merged entry is keyed off the degraded flag.
            if ctx is None or not ctx.degraded:
                cache.put(self._epoch, keys[-1], merged, shard=MERGED_SHARD)
            return merged
        return self._merge_shards(parts, keys, tasks, ctx)

    def _merge_shards(self, parts, keys, tasks, ctx=None) -> Bitmap:
        """Fold the conjunction once per shard and concatenate in order.

        Each shard task runs under the installed resilience policy when
        there is one: bounded retries with backoff, the per-shard circuit
        breaker, and — when the query's context says ``partial_ok`` — an
        all-zero substitute segment for a persistently failing shard (the
        skipped record range lands on the context's degraded ledger).
        Without a policy, the first shard failure raises a typed
        :class:`~repro.errors.ShardExecutionError` naming the shard and
        the record range it would have answered for.
        """
        cache, epoch, catalog = self._bitmap_cache, self._epoch, self.catalog
        tracer = self._tracer
        policy = self._resilience
        remote = self._shard_compute
        lengths = [task.relation.n_records for task in tasks]

        def run_supervised(task, length, task_tracer):
            if ctx is not None:
                ctx.check()
            start, stop = task.start, task.start + length

            def compute():
                # Traced queries stay in-process: operator spans need the
                # local fold.  Everything else may run out-of-process.
                if remote is not None and task_tracer is None:
                    return remote(task, parts, keys, ctx)
                return conjunction(
                    task.relation,
                    catalog,
                    parts,
                    keys,
                    cache,
                    epoch,
                    shard=task.shard,
                    tracer=task_tracer,
                    ctx=ctx,
                )

            if policy is not None:
                segment = policy.run_shard(
                    task.shard, start, stop, compute, ctx, generation=epoch
                )
                # None = skipped under partial_ok: contribute an all-zero
                # segment (never cached — it is not the shard's answer).
                return Bitmap.zeros(length) if segment is None else segment
            try:
                return compute()
            except ResilienceError:
                raise
            except Exception as exc:
                raise ShardExecutionError(
                    f"shard {task.shard} failed: {exc} "
                    f"(records [{start}:{stop}) unavailable)",
                    shard=task.shard,
                    start=start,
                    stop=stop,
                ) from exc

        if tracer is not None:
            segments = []
            for task, length in zip(tasks, lengths, strict=True):
                skips_before = len(ctx.skipped) if ctx is not None else 0
                with tracer.span("shard", shard=task.shard) as span:
                    segments.append(run_supervised(task, length, tracer))
                    if ctx is not None and len(ctx.skipped) > skips_before:
                        span.meta["degraded"] = "skipped"
            return Bitmap.concat(segments)

        def run(task):
            return run_supervised(task, lengths[task.shard], None)

        mapper = self._shard_map
        segments = [run(t) for t in tasks] if mapper is None else mapper(run, tasks)
        return Bitmap.concat(segments)

    def _structural_bitmap(
        self, query: GraphQuery, ctx=None
    ) -> tuple[Bitmap, GraphQueryPlan]:
        tracer = self._tracer
        if tracer is None:
            plan, parts, keys = self.conjunction_inputs(query)
            if not parts:
                return self._empty_bitmap(), plan
            return self._conjunction_over_backend(parts, keys, ctx), plan
        with tracer.span("rewrite"):
            plan, parts, keys = self.conjunction_inputs(query)
            tracer.add("views_used", len(plan.view_names))
            tracer.add("residual_elements", len(plan.residual_elements))
        with tracer.span("conjunction") as span:
            if not parts:
                span.add("rows_matched", 0)
                span.meta["short_circuit"] = "unindexed-element"
                return self._empty_bitmap(), plan
            bitmap = self._conjunction_over_backend(parts, keys, ctx)
            span.add("bitmaps_anded", len(parts))
            span.add("rows_matched", bitmap.count())
            return bitmap, plan

    def evaluate(self, expr: QueryExpr, ctx=None) -> Bitmap:
        """Evaluate a boolean combination of graph queries to a bitmap.

        Implements ``[Gq1 AND Gq2] = [Gq1] ∩ [Gq2]`` and friends as binary
        calculations on the stored bitmaps (Section 3.2).  ``ctx`` (a
        :class:`repro.resilience.QueryContext`) is checked between atoms,
        so deadlines and cancellation cover the whole expression tree.
        """
        if ctx is not None:
            ctx.check()
        if isinstance(expr, GraphQuery):
            bitmap, _ = self._structural_bitmap(expr, ctx)
            return bitmap
        if isinstance(expr, And):
            return self.evaluate(expr.left, ctx) & self.evaluate(expr.right, ctx)
        if isinstance(expr, Or):
            return self.evaluate(expr.left, ctx) | self.evaluate(expr.right, ctx)
        if isinstance(expr, AndNot):
            return self.evaluate(expr.left, ctx) - self.evaluate(expr.right, ctx)
        raise TypeError(f"cannot evaluate {type(expr).__name__}")

    # -- graph queries ---------------------------------------------------------------

    def query(
        self, query: GraphQuery | QueryExpr, fetch_measures: bool = True, ctx=None
    ) -> GraphQueryResult:
        """Answer a graph query: matching records with their measures.

        For a boolean expression, measures are fetched for the union of the
        atoms' elements that each matching record actually contains.

        With a tracer installed (:meth:`use_tracer`) the call produces one
        :class:`~repro.obs.QueryTrace` with nested rewrite / conjunction /
        measure-materialization spans; answers are identical either way.

        ``ctx`` is an optional :class:`repro.resilience.QueryContext`
        carrying the query's deadline, cancel token, and ``partial_ok``
        policy; when shards were skipped under it, the result's
        ``degraded`` field holds the skipped-range report.
        """
        tracer = self._tracer
        if tracer is None:
            return self._query_impl(query, fetch_measures, ctx)
        with tracer.span("query", query=repr(query), epoch=self._epoch) as span:
            result = self._query_impl(query, fetch_measures, ctx)
            tracer.add("rows_matched", len(result))
            if result.degraded is not None:
                span.meta["degraded"] = result.degraded.summary()
            return result

    def _query_impl(
        self, query: GraphQuery | QueryExpr, fetch_measures: bool, ctx=None
    ) -> GraphQueryResult:
        if isinstance(query, GraphQuery):
            bitmap, plan = self._structural_bitmap(query, ctx)
            elements = sorted(query.elements, key=repr)
        else:
            bitmap = self.evaluate(query, ctx)
            plan = None
            seen: set[Edge] = set()
            elements = []
            for atom in query.atoms():
                for element in sorted(atom.elements, key=repr):
                    if element not in seen:
                        seen.add(element)
                        elements.append(element)
        rows = bitmap.to_indices()
        measures: dict[Edge, np.ndarray] = {}
        if fetch_measures and rows.size:
            tracer = self._tracer
            with self._span("measures"):
                known_ids = []
                for element in elements:
                    if ctx is not None:
                        ctx.check()
                    edge_id = self.catalog.get_id(element)
                    if edge_id is None or not self.relation.has_element(edge_id):
                        measures[element] = np.full(rows.size, np.nan)
                        continue
                    known_ids.append(edge_id)
                    measures[element] = self.relation.measures(edge_id, rows)
                if known_ids:
                    self.relation.simulate_partition_join(known_ids, rows)
                if tracer is not None:
                    tracer.add("measure_columns", len(known_ids))
                    tracer.add("measure_values", rows.size * len(known_ids))
                    tracer.add(
                        "partitions_spanned",
                        len(self.relation.partitions_for(known_ids))
                        if known_ids
                        else 0,
                    )
        base_query = query if isinstance(query, GraphQuery) else None
        return GraphQueryResult(
            query=base_query if base_query is not None else GraphQuery(elements),
            rows=rows,
            record_ids=self.record_ids_at(rows),
            measures=measures,
            plan=plan,
            epoch=self._epoch,
            degraded=ctx.report() if ctx is not None else None,
        )

    # -- path aggregation ---------------------------------------------------------------

    def _segment_partial(
        self,
        view: AggregateGraphView,
        sub_function: str,
        rows: np.ndarray,
    ) -> np.ndarray:
        """Partial-aggregate array contributed by a view tile.

        Fetches the stored ``mp`` column when the view materializes
        ``sub_function``; a COUNT partial over matched rows is the tile's
        element count (every element is present by the structural
        condition), so it needs no storage at all.
        """
        if sub_function in view.stored_functions():
            column = f"{view.name}:{sub_function}"
            return self.relation.aggregate_view_measures(column, rows)
        if sub_function == "count":
            n_elements = len(view.elements(frozenset(self._measured_nodes)))
            return np.full(rows.size, float(n_elements))
        raise KeyError(
            f"view {view.name!r} stores {view.stored_functions()}, "
            f"cannot provide {sub_function!r}"
        )

    def aggregate(self, query: PathAggregationQuery, ctx=None) -> PathAggregationResult:
        """Answer ``F_Gq``: per matching record, apply the aggregate along
        every maximal source→terminal path of the query graph (§3.4).

        Traced like :meth:`query`, with an extra ``aggregation`` span
        covering the per-path partial-merge stage.  ``ctx`` works exactly
        as in :meth:`query`.
        """
        tracer = self._tracer
        if tracer is None:
            return self._aggregate_impl(query, ctx)
        with tracer.span("aggregate", query=repr(query), epoch=self._epoch) as span:
            result = self._aggregate_impl(query, ctx)
            tracer.add("rows_matched", len(result))
            if result.degraded is not None:
                span.meta["degraded"] = result.degraded.summary()
            return result

    def _aggregate_impl(
        self, query: PathAggregationQuery, ctx=None
    ) -> PathAggregationResult:
        tracer = self._tracer
        with self._span("rewrite"):
            plan, parts, keys = self.conjunction_inputs(query)
            if tracer is not None:
                tracer.add("views_used", len(plan.structural_view_names))
                tracer.add("agg_views_used", len(plan.structural_agg_view_names))
                tracer.add("residual_elements", len(plan.residual_elements))
        if not parts:
            rows = np.empty(0, dtype=np.int64)
        else:
            with self._span("conjunction") as span:
                bitmap = self._conjunction_over_backend(parts, keys, ctx)
                rows = bitmap.to_indices()
                if tracer is not None:
                    span.add("bitmaps_anded", len(parts))
                    span.add("rows_matched", int(rows.size))

        function = get_function(query.function)
        needed = (
            (function.name,) if function.distributive else function.sub_aggregates
        )
        path_values: dict[Path, np.ndarray] = {}
        raw_cache: dict[Edge, np.ndarray] = {}
        with self._span("aggregation"):
            for path_plan in plan.path_plans:
                if ctx is not None:
                    ctx.check()
                partials: dict[str, list[np.ndarray]] = {fn: [] for fn in needed}
                for segment in path_plan.segments:
                    if segment.kind == "view":
                        view = self._agg_views[segment.view_name]
                        for fn in needed:
                            partials[fn].append(self._segment_partial(view, fn, rows))
                        if tracer is not None:
                            tracer.add("view_segments")
                    else:
                        element = segment.element
                        if element not in raw_cache:
                            edge_id = self.catalog.get_id(element)
                            if edge_id is None or not self.relation.has_element(edge_id):
                                raw_cache[element] = np.full(rows.size, np.nan)
                            else:
                                raw_cache[element] = self.relation.measures(edge_id, rows)
                        for fn in needed:
                            partials[fn].append(get_function(fn).lift(raw_cache[element]))
                        if tracer is not None:
                            tracer.add("raw_segments")
                if not any(partials.values()):
                    continue
                if function.distributive:
                    value = function.merge_partials(partials[function.name])
                else:
                    sub = {
                        fn: get_function(fn).merge_partials(arrays)
                        for fn, arrays in partials.items()
                    }
                    value = function.finalize(sub)
                path_values[path_plan.path] = value
            if tracer is not None:
                tracer.add("paths", len(plan.path_plans))
        return PathAggregationResult(
            query=query,
            rows=rows,
            record_ids=self.record_ids_at(rows),
            path_values=path_values,
            plan=plan,
            epoch=self._epoch,
            degraded=ctx.report() if ctx is not None else None,
        )

    # -- materialization ---------------------------------------------------------------

    def _fresh_view_name(self, prefix: str) -> str:
        self._view_counter += 1
        return f"{prefix}{self._view_counter}"

    def _unaccounted_bitmap(self, elements: Iterable[Edge]) -> Bitmap:
        """Conjunction of element bitmaps without touching query I/O stats
        (materialization is load-time work, not query cost)."""
        result: Bitmap | None = None
        for element in elements:
            edge_id = self.catalog.get_id(element)
            if edge_id is None or not self.relation.has_element(edge_id):
                return self._empty_bitmap()
            validity = self.relation.column_for_persistence(edge_id).validity
            result = validity if result is None else (result & validity)
        return result if result is not None else self._empty_bitmap()

    def add_graph_view(self, elements: Iterable[Edge], name: str | None = None) -> str:
        """Manually materialize one graph view (or index feature) over the
        given element set; returns the bitmap column's name."""
        elements = frozenset(elements)
        view_name = name if name is not None else self._fresh_view_name("gv")
        bitmap = self._unaccounted_bitmap(elements)
        self.relation.add_graph_view(view_name, bitmap)
        self._graph_views[view_name] = GraphView(view_name, elements)
        self._bump_views_epoch()
        return view_name

    def compute_view_bitmap(self, elements: Iterable[Edge]) -> Bitmap:
        """The view bitmap for ``elements`` over the current rows, without
        registering anything.  Used by the adaptive maintainer to *stage*
        a view off-epoch (under a read lock) before committing it."""
        return self._unaccounted_bitmap(frozenset(elements))

    def view_delta_bitmap(self, elements: Iterable[Edge], start: int) -> Bitmap:
        """Bits of the view bitmap for rows ``[start, n_records)`` only —
        the append-delta of a staged build.

        Rows are immutable and append-only, so a bitmap staged when the
        relation had ``start`` rows stays correct for ``[0, start)``; only
        the delta must be computed at commit time.  The delta conjoins the
        per-shard element validity bitmaps of just the shards overlapping
        the range — a small tail delta reads only the last shard's columns
        instead of rebuilding over every row.
        """
        elements = frozenset(elements)
        if not elements:
            raise ValueError("a view needs at least one element")
        n = self.relation.n_records
        if not 0 <= start <= n:
            raise ValueError(f"delta start {start} outside [0, {n}]")
        segments: list[Bitmap] = []
        for shard_start, shard in zip(
            self.relation.shard_starts(), self.relation.shard_relations()
        ):
            length = shard.n_records
            if length == 0 or shard_start + length <= start:
                continue
            seg: Bitmap | None = None
            for element in elements:
                edge_id = self.catalog.get_id(element)
                if edge_id is None or not shard.has_element(edge_id):
                    seg = Bitmap.zeros(length)
                    break
                validity = shard.column_for_persistence(edge_id).validity
                seg = validity if seg is None else (seg & validity)
            lo = max(start - shard_start, 0)
            segments.append(seg.slice(lo, length) if lo else seg)
        return Bitmap.concat(segments) if segments else Bitmap.zeros(n - start)

    def materialize_incremental(
        self,
        elements: Iterable[Edge],
        name: str | None = None,
        staged: Bitmap | None = None,
        staged_rows: int = 0,
    ) -> str:
        """Commit one graph view from a staged bitmap plus its append-delta.

        ``staged`` is a bitmap previously built over the first
        ``staged_rows`` rows (e.g. via :meth:`compute_view_bitmap` outside
        the writer lock); rows appended since are covered by
        :meth:`view_delta_bitmap`, so commit cost is proportional to the
        append tail, not the relation.  With ``staged=None`` this is a
        full build.  Returns the view name.
        """
        elements = frozenset(elements)
        if not elements:
            raise ValueError("a view needs at least one element")
        if staged is None:
            staged, staged_rows = Bitmap.zeros(0), 0
        if staged.length != staged_rows:
            raise ValueError(
                f"staged bitmap has {staged.length} bits for {staged_rows} rows"
            )
        delta = self.view_delta_bitmap(elements, staged_rows)
        bitmap = Bitmap.concat([staged, delta]) if staged_rows else delta
        view_name = name if name is not None else self._fresh_view_name("gv")
        self.relation.add_graph_view(view_name, bitmap)
        self._graph_views[view_name] = GraphView(view_name, elements)
        self._bump_views_epoch()
        return view_name

    def drop_decayed(self, names: Iterable[str]) -> list[str]:
        """Drop the named views individually (graph or aggregate), leaving
        every other view untouched; unknown names are ignored.  Returns
        the names actually dropped.  A single views-epoch bump covers the
        whole batch, so readers see one atomic transition."""
        dropped: list[str] = []
        for view_name in names:
            if view_name in self._graph_views:
                self.relation.drop_graph_view(view_name)
                del self._graph_views[view_name]
                dropped.append(view_name)
            elif view_name in self._agg_views:
                view = self._agg_views.pop(view_name)
                for stored_fn in view.stored_functions():
                    self.relation.drop_aggregate_view(f"{view_name}:{stored_fn}")
                dropped.append(view_name)
        if dropped:
            self._bump_views_epoch()
        return dropped

    def materialize_graph_views(
        self,
        workload: Sequence[GraphQuery],
        budget: int,
        method: str = "closure",
        min_support: int = 1,
    ) -> MaterializationReport:
        """Select and materialize up to ``budget`` graph views (§5.2).

        ``method`` picks the candidate generator: ``"closure"`` (iterated
        query intersections), ``"apriori"`` (level-wise frequent itemsets),
        or ``"closed"`` (closed frequent sets — apriori's post-filter
        output, computed directly; the scalable default for big workloads).
        """
        if method == "closure":
            candidate_sets = intersection_closure_candidates(workload, min_support)
        elif method == "apriori":
            candidate_sets = apriori_candidates(workload, max(min_support, 1))
        elif method == "closed":
            candidate_sets = closed_candidates(workload, min_support)
        else:
            raise ValueError(f"unknown candidate method {method!r}")
        candidates = {f"cand{i}": elems for i, elems in enumerate(candidate_sets)}
        selection = greedy_select_views(
            [q.elements for q in workload], candidates, budget
        )
        report = MaterializationReport(
            kind="graph", n_candidates=len(candidate_sets)
        )
        report.stopped_on_singleton = selection.stopped_on_singleton
        for key in selection.selected:
            elements = candidates[key]
            name = self._fresh_view_name("gv")
            bitmap = self._unaccounted_bitmap(elements)
            self.relation.add_graph_view(name, bitmap)
            self._graph_views[name] = GraphView(name, elements)
            report.selected.append(name)
        self._bump_views_epoch()
        return report

    def materialize_aggregate_views(
        self,
        workload: Sequence[PathAggregationQuery],
        budget: int,
        function: str = "sum",
        max_path_length: int | None = 32,
    ) -> MaterializationReport:
        """Select and materialize up to ``budget`` aggregate views (§5.4).

        Candidates are paths between interesting nodes of the workload
        union graph; the greedy chooser weighs coverage by path length, per
        the benefit model (longer pre-aggregated paths replace more
        columns).
        """
        measured = frozenset(self._measured_nodes)
        paths = candidate_aggregate_paths(workload, max_length=max_path_length)
        candidates: dict[str, frozenset[Edge]] = {}
        weights: dict[str, float] = {}
        keyed_paths: dict[str, Path] = {}
        for i, path in enumerate(paths):
            elements = frozenset(path.elements(measured) or path.edges())
            if len(elements) < 2:
                continue
            key = f"cand{i}"
            candidates[key] = elements
            weights[key] = float(len(path.edges()))
            keyed_paths[key] = path
        selection = greedy_select_views(
            [q.query.elements for q in workload], candidates, budget, weights
        )
        report = MaterializationReport(kind="aggregate", n_candidates=len(candidates))
        report.stopped_on_singleton = selection.stopped_on_singleton
        fn = get_function(function)
        for key in selection.selected:
            path = keyed_paths[key]
            name = self._fresh_view_name("av")
            view = AggregateGraphView(name, path, function)
            elements = path.elements(measured) or path.edges()
            bitmap = self._unaccounted_bitmap(elements)
            rows = bitmap.to_indices()
            raw = []
            for element in elements:
                edge_id = self.catalog.get_id(element)
                if edge_id is None or not self.relation.has_element(edge_id):
                    raw.append(np.full(rows.size, np.nan))
                else:
                    column = self.relation.column_for_persistence(edge_id)
                    raw.append(column.take(rows))
            for stored_fn in view.stored_functions():
                values = np.full(self.relation.n_records, np.nan)
                if rows.size:
                    values[rows] = get_function(stored_fn).combine(raw)
                column = MeasureColumn(values, bitmap)
                self.relation.add_aggregate_view(f"{name}:{stored_fn}", column)
            self._agg_views[name] = view
            report.selected.append(name)
        self._bump_views_epoch()
        return report

    def drop_all_views(self) -> None:
        """Remove every materialized view (benchmark budget sweeps)."""
        self.relation.drop_views()
        self._graph_views.clear()
        self._agg_views.clear()
        self._bump_views_epoch()

    # -- introspection ---------------------------------------------------------------

    def explain(
        self,
        query: GraphQuery | PathAggregationQuery,
        analyze: bool = False,
        fmt: str = "text",
    ) -> str:
        """EXPLAIN-style description: the chosen plan, its cost in the
        paper's units, and the SQL the column store would execute.

        With ``analyze=True`` the query is also executed under a temporary
        tracer and the measured counters + span tree are attached
        (EXPLAIN ANALYZE).  ``fmt`` selects ``"text"`` or ``"json"``.
        """
        from ...obs.explain import explain as _explain

        return _explain(self, query, analyze=analyze, fmt=fmt)

    def reset_stats(self) -> None:
        self.collector.reset()

    @property
    def stats(self) -> IOStats:
        return self.collector.stats

    def disk_size_bytes(self) -> int:
        return self.relation.disk_size_bytes()

"""The planner layer: one serializable physical plan per query.

:class:`Planner` turns a :class:`GraphQuery` or
:class:`PathAggregationQuery` into a :class:`PhysicalPlan` — the *single*
source of truth consumed by the operator layer (which ANDs
``plan.parts`` under ``plan.prefix_keys``), by the EXPLAIN renderer
(:mod:`repro.obs.explain` serializes ``plan.to_dict()`` instead of
re-deriving anything), and by the tracer (whose rewrite-span counters
read the same plan).  A physical plan bundles:

* the **logical rewrite** (:class:`GraphQueryPlan` /
  :class:`AggregationPlan`) the §5.3 set-cover rewriter chose;
* the **canonical conjunction parts** — views first, then residual base
  bitmaps, in :func:`canonical_parts` order — or ``None`` when a residual
  element has no column anywhere (the answer is empty without touching a
  bitmap);
* the **prefix keys** — cumulative covered edge-sets, one per
  canonical-order prefix — which are exactly the bitmap-cache keys;
* fetch/aggregation metadata (measure elements, needed sub-aggregates);
* an eagerly built **IR dict**: the JSON-serializable plan description,
  including cost estimates, the generated SQL, and the backend's shard
  count.

Plans are memoized per query; the facade invalidates the memo on *every*
mutation (loads, appends, view changes, resharding), so a cached plan is
always consistent with the engine state it will execute against.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..aggregates import get_function
from ..query import GraphQuery, PathAggregationQuery
from ..record import Edge
from ..rewrite import (
    AggregationPlan,
    ConjunctionPart,
    GraphQueryPlan,
    canonical_parts,
    plan_aggregation,
    plan_graph_query,
)
from ..sqlgen import render_aggregation, render_graph_query

__all__ = ["PhysicalPlan", "Planner", "prefix_keys"]


def prefix_keys(parts: list[ConjunctionPart]) -> list[frozenset[Edge]]:
    """Cumulative covered edge-sets, one per canonical-order prefix.

    These are the conjunction cache keys.  Building them is O(k^2) in
    query size, so the planner memoizes the result inside the physical
    plan — repeated queries then pay a single cached-hash dict lookup.
    """
    keys: list[frozenset[Edge]] = []
    covered: frozenset[Edge] = frozenset()
    for part in parts:
        covered = covered | part.covered
        keys.append(covered)
    return keys


@dataclass
class PhysicalPlan:
    """Everything needed to execute — or faithfully describe — one query."""

    kind: str  # "graph" | "aggregation"
    query: GraphQuery | PathAggregationQuery
    logical: GraphQueryPlan | AggregationPlan
    parts: list[ConjunctionPart] | None
    prefix_keys: list[frozenset[Edge]] | None
    fetch_elements: tuple
    needed_functions: tuple[str, ...]
    shards: int
    epoch: int  # engine epoch at plan time (informational; execution
    # always keys caches on the engine's *current* epoch)
    ir: dict = field(repr=False)

    @property
    def answerable(self) -> bool:
        """False when a residual element has no column: empty answer."""
        return self.parts is not None

    def to_dict(self) -> dict:
        """The serializable plan IR (a private copy — callers may annotate
        it, e.g. EXPLAIN ANALYZE attaches an ``execution`` section)."""
        return copy.deepcopy(self.ir)


# -- IR construction ---------------------------------------------------------


def _edge_str(edge) -> str:
    try:
        u, v = edge
        return f"{u}->{v}"
    except (TypeError, ValueError):
        return repr(edge)


def _edges(elements) -> list[str]:
    return sorted(_edge_str(e) for e in elements)


def _token_str(part: ConjunctionPart) -> str:
    return part.token if isinstance(part.token, str) else _edge_str(part.token)


def _conjunction_dicts(parts) -> list[dict]:
    out = []
    for part in parts or []:
        out.append(
            {
                "kind": part.kind,
                "token": _token_str(part),
                "covers": _edges(part.covered),
            }
        )
    return out


class Planner:
    """Plans queries against one engine's views, catalog, and backend.

    Owns the plan memo the engine used to keep inline; the facade calls
    :meth:`invalidate` on every mutation.
    """

    def __init__(self, engine):
        self._engine = engine
        self._memo: dict = {}

    def invalidate(self) -> None:
        self._memo.clear()

    # -- public entry points -------------------------------------------------

    def physical_plan(
        self, query: GraphQuery | PathAggregationQuery
    ) -> PhysicalPlan:
        plan = self._memo.get(query)
        if plan is None:
            if isinstance(query, PathAggregationQuery):
                plan = self._plan_aggregation(query)
            elif isinstance(query, GraphQuery):
                plan = self._plan_graph(query)
            else:
                raise TypeError(f"cannot plan {type(query).__name__}")
            self._memo[query] = plan
        return plan

    def plan_query(self, query: GraphQuery) -> GraphQueryPlan:
        return self.physical_plan(query).logical

    def plan_aggregation(self, query: PathAggregationQuery) -> AggregationPlan:
        return self.physical_plan(query).logical

    # -- graph queries -------------------------------------------------------

    def _plan_graph(self, query: GraphQuery) -> PhysicalPlan:
        engine = self._engine
        logical = plan_graph_query(query, engine._graph_views)
        parts = self._graph_parts(logical)
        keys = prefix_keys(parts) if parts else None
        return PhysicalPlan(
            kind="graph",
            query=query,
            logical=logical,
            parts=parts,
            prefix_keys=keys,
            fetch_elements=tuple(logical.fetch_elements),
            needed_functions=(),
            shards=engine.n_shards,
            epoch=engine.epoch,
            ir=self._graph_ir(query, logical, parts),
        )

    def _graph_parts(
        self, plan: GraphQueryPlan
    ) -> list[ConjunctionPart] | None:
        """Conjunction inputs for a graph-query plan, canonically ordered;
        None when a residual element has no column (empty answer)."""
        engine = self._engine
        parts = [
            ConjunctionPart("graph-view", name, engine._graph_views[name].elements)
            for name in plan.view_names
        ]
        for element in plan.residual_elements:
            edge_id = engine.catalog.get_id(element)
            if edge_id is None or not engine.relation.has_element(edge_id):
                return None
            parts.append(ConjunctionPart("element", element, frozenset((element,))))
        return canonical_parts(parts)

    def _graph_ir(self, query, plan, parts) -> dict:
        engine = self._engine
        views = engine._graph_views
        return {
            "type": "graph-query",
            "query": " & ".join(_edges(query.elements)),
            "elements": _edges(query.elements),
            "views": [
                {"name": name, "covers": _edges(views[name].elements)}
                for name in sorted(plan.view_names)
            ],
            "residual_elements": _edges(plan.residual_elements),
            "conjunction": _conjunction_dicts(parts),
            "answerable": parts is not None,
            "structural_columns": plan.n_structural_columns(),
            "saved_columns": plan.saved_columns(),
            "measure_columns": len(plan.fetch_elements),
            "partitions": self._partition_estimate(plan.fetch_elements),
            "shards": engine.n_shards,
            "sql": render_graph_query(plan, engine.catalog),
        }

    # -- path aggregation ----------------------------------------------------

    def _plan_aggregation(self, query: PathAggregationQuery) -> PhysicalPlan:
        engine = self._engine
        logical = plan_aggregation(
            query,
            engine._agg_views,
            engine._graph_views,
            frozenset(engine._measured_nodes),
        )
        parts = self._aggregation_parts(logical)
        keys = prefix_keys(parts) if parts else None
        function = get_function(query.function)
        needed = (
            (function.name,)
            if function.distributive
            else tuple(function.sub_aggregates)
        )
        return PhysicalPlan(
            kind="aggregation",
            query=query,
            logical=logical,
            parts=parts,
            prefix_keys=keys,
            fetch_elements=tuple(query.query.elements),
            needed_functions=needed,
            shards=engine.n_shards,
            epoch=engine.epoch,
            ir=self._aggregation_ir(query, logical, parts),
        )

    def _aggregation_parts(
        self, plan: AggregationPlan
    ) -> list[ConjunctionPart] | None:
        """Conjunction inputs for an aggregation plan's structural condition;
        None when a residual element has no column (empty answer)."""
        engine = self._engine
        measured = frozenset(engine._measured_nodes)
        parts = []
        for name in plan.structural_agg_view_names:
            view = engine._agg_views[name]
            parts.append(
                ConjunctionPart(
                    "agg-view",
                    view.column_names()[0],
                    frozenset(view.elements(measured)),
                )
            )
        for name in plan.structural_view_names:
            parts.append(
                ConjunctionPart(
                    "graph-view", name, engine._graph_views[name].elements
                )
            )
        for element in plan.residual_elements:
            edge_id = engine.catalog.get_id(element)
            if edge_id is None or not engine.relation.has_element(edge_id):
                return None
            parts.append(ConjunctionPart("element", element, frozenset((element,))))
        return canonical_parts(parts)

    def _aggregation_ir(self, query, plan, parts) -> dict:
        engine = self._engine
        measured = frozenset(engine._measured_nodes)
        agg_views = engine._agg_views
        graph_views = engine._graph_views
        path_dicts = []
        for path_plan in plan.path_plans:
            segments = []
            for segment in path_plan.segments:
                if segment.kind == "view":
                    view = agg_views[segment.view_name]
                    segments.append(
                        {
                            "kind": "view",
                            "name": segment.view_name,
                            "covers": _edges(view.elements(measured)),
                        }
                    )
                else:
                    segments.append(
                        {"kind": "raw", "element": _edge_str(segment.element)}
                    )
            path_dicts.append({"path": str(path_plan.path), "segments": segments})
        return {
            "type": "path-aggregation",
            "query": " & ".join(_edges(query.query.elements)),
            "function": query.function,
            "elements": _edges(query.query.elements),
            "aggregate_views": [
                {
                    "name": name,
                    "columns": list(agg_views[name].column_names()),
                    "covers": _edges(agg_views[name].elements(measured)),
                }
                for name in sorted(plan.structural_agg_view_names)
            ],
            "views": [
                {"name": name, "covers": _edges(graph_views[name].elements)}
                for name in sorted(plan.structural_view_names)
            ],
            "residual_elements": _edges(plan.residual_elements),
            "conjunction": _conjunction_dicts(parts),
            "answerable": parts is not None,
            "paths": path_dicts,
            "structural_columns": plan.n_structural_columns(),
            "measure_columns": plan.n_measure_columns(),
            "segments": dict(
                zip(("view", "raw"), plan.segment_counts(), strict=True)
            ),
            "partitions": self._partition_estimate(query.query.elements),
            "shards": engine.n_shards,
            "sql": render_aggregation(plan, engine.catalog),
        }

    # -- shared estimates ----------------------------------------------------

    def _partition_estimate(self, elements) -> dict:
        """Partitions the query's element columns span, per the §6.1 layout.

        Unknown elements (no column) occupy no partition; a query spanning
        k partitions pays k-1 recid re-joins at measure-fetch time.
        """
        engine = self._engine
        known_ids = []
        for element in elements:
            edge_id = engine.catalog.get_id(element)
            if edge_id is not None and engine.relation.has_element(edge_id):
                known_ids.append(edge_id)
        spanned = (
            len(engine.relation.partitions_for(known_ids)) if known_ids else 0
        )
        return {"spanned": spanned, "estimated_joins": max(spanned - 1, 0)}

"""Candidate view generation (Sections 5.2 and 5.4).

**Graph views.**  The naive candidate space — all subgraphs of the union of
the workload queries — is exponential in the number of edges.  Section 5.2
shows the useful candidates are exactly

* every workload query itself, and
* every common subgraph (intersection) of two or more workload queries,

with views *superseded* by a larger view (monotonicity property) removed.
A superseded view is one with a strict superset view contained in exactly
the same workload queries — i.e. the surviving candidates are precisely the
**closed** element sets of the workload, where the closure of a set is the
intersection of all queries containing it.  :func:`intersection_closure_candidates`
computes them by the paper's iterated-intersection procedure (including the
reviewer's refinement of intersecting previously found intersections).

For heavily overlapping workloads Section 5.2 proposes an a-priori
formulation: treat each query as a transaction of edge "items" and mine
frequent itemsets with support ≥ ``minSup``, then filter superseded views.
:func:`apriori_candidates` implements the level-wise miner literally (for
moderate workloads and tests); :func:`closed_candidates` produces the same
post-filter output directly — closed frequent sets — and is what the large
benchmarks use.

**Aggregate graph views.**  Candidates are paths between *interesting
nodes* of the workload union graph ``GAll`` (Section 5.4):
path origins/endpoints and branch-in/branch-out nodes of the maximal paths.
:func:`candidate_aggregate_paths` enumerates all simple paths of length ≥ 2
between interesting nodes, reproducing the paper's Figure 2 example
(5 candidates instead of the naive 11).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import combinations
from typing import Hashable

from .paths import Path, adjacency_of
from .query import GraphQuery, PathAggregationQuery
from .record import Edge
from .views import graph_view_supersedes

__all__ = [
    "intersection_closure_candidates",
    "apriori_candidates",
    "closed_candidates",
    "filter_superseded",
    "interesting_nodes",
    "candidate_aggregate_paths",
]


def _support(elements: frozenset[Edge], queries: Sequence[GraphQuery]) -> int:
    """Number of workload queries that contain the element set."""
    return sum(1 for q in queries if elements <= q.elements)


def filter_superseded(
    candidates: Iterable[frozenset[Edge]], queries: Sequence[GraphQuery]
) -> list[frozenset[Edge]]:
    """Drop candidates superseded by a larger candidate (monotonicity)."""
    pool = list(dict.fromkeys(candidates))
    out: list[frozenset[Edge]] = []
    for cand in pool:
        superseded = any(
            other != cand and graph_view_supersedes(other, cand, queries)
            for other in pool
        )
        if not superseded:
            out.append(cand)
    return out


def intersection_closure_candidates(
    queries: Sequence[GraphQuery], min_support: int = 1
) -> list[frozenset[Edge]]:
    """Candidate graph views by the Section 5.2 construction.

    Starts from the query element sets, iteratively adds pairwise
    intersections (of queries, then of previously found intersections —
    footnote 1), until a fixpoint; then filters superseded views and
    candidates with support below ``min_support`` queries.  Candidates with
    fewer than two elements are excluded: their bitmaps already exist.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    current: set[frozenset[Edge]] = {q.elements for q in queries}
    frontier = list(current)
    while frontier:
        new: set[frozenset[Edge]] = set()
        pool = list(current)
        for a, b in combinations(pool, 2):
            common = a & b
            if len(common) >= 2 and common not in current:
                new.add(common)
        if not new:
            break
        current |= new
        frontier = list(new)
    sized = [c for c in current if len(c) >= 2]
    supported = [c for c in sized if _support(c, queries) >= min_support]
    return sorted(filter_superseded(supported, queries), key=lambda s: (-len(s), sorted(map(repr, s))))


def apriori_candidates(
    queries: Sequence[GraphQuery],
    min_support: int = 2,
    max_size: int | None = None,
) -> list[frozenset[Edge]]:
    """Literal a-priori frequent edge-set mining (Section 5.2 workaround).

    Transactions are the query element sets; an itemset is frequent when at
    least ``min_support`` queries contain it.  Returns frequent itemsets of
    size ≥ 2 with superseded ones removed.  ``max_size`` optionally bounds
    the level-wise expansion (a safety valve; the paper needs none because
    it applies this to query workloads, not records).
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    transactions = [q.elements for q in queries]
    # L1: frequent single elements.
    item_counts: dict[Edge, int] = {}
    for t in transactions:
        for item in t:
            item_counts[item] = item_counts.get(item, 0) + 1
    level: set[frozenset[Edge]] = {
        frozenset([item])
        for item, count in item_counts.items()
        if count >= min_support
    }
    frequent: list[frozenset[Edge]] = []
    size = 1
    while level and (max_size is None or size < max_size):
        size += 1
        # Candidate generation: join level-(k-1) sets sharing k-2 items.
        candidates: set[frozenset[Edge]] = set()
        level_list = sorted(level, key=lambda s: sorted(map(repr, s)))
        for a, b in combinations(level_list, 2):
            union = a | b
            if len(union) == size:
                # Prune: all (k-1)-subsets must be frequent.
                if all(union - {item} in level for item in union):
                    candidates.add(union)
        next_level: set[frozenset[Edge]] = set()
        for cand in candidates:
            if _support(cand, queries) >= min_support:
                next_level.add(cand)
        frequent.extend(next_level)
        level = next_level
    return sorted(
        filter_superseded(frequent, queries),
        key=lambda s: (-len(s), sorted(map(repr, s))),
    )


def closed_candidates(
    queries: Sequence[GraphQuery], min_support: int = 1
) -> list[frozenset[Edge]]:
    """Closed frequent element sets — the a-priori output after the
    supersession filter, computed directly.

    A candidate survives the monotonicity filter exactly when no strict
    superset is contained in the same set of queries, i.e. when it is
    *closed*.  Closed sets are intersections of groups of transactions, so
    we enumerate them by intersecting each query with every known closed
    set — polynomial in the output size rather than in ``2^|items|``.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    closed: set[frozenset[Edge]] = set()
    for query in queries:
        additions = {query.elements}
        for existing in closed:
            common = existing & query.elements
            if len(common) >= 2:
                additions.add(common)
        closed |= additions
    sized = [c for c in closed if len(c) >= 2]
    out = [c for c in sized if _support(c, queries) >= min_support]
    return sorted(out, key=lambda s: (-len(s), sorted(map(repr, s))))


# -- aggregate graph views (Section 5.4) ---------------------------------------


def interesting_nodes(agg_queries: Sequence[PathAggregationQuery]) -> frozenset[Hashable]:
    """Interesting nodes of the workload union graph ``GAll``.

    A node is interesting when it is (a) the origin or endpoint of a
    maximal path of some query, (b) the starting node of two or more
    distinct edges traversed by maximal paths (branch-out), or (c) the
    ending node of two or more distinct traversed edges (branch-in).
    """
    maximal: list[Path] = []
    for query in agg_queries:
        maximal.extend(query.maximal_paths())
    interesting: set[Hashable] = set()
    out_edges: dict[Hashable, set[Hashable]] = {}
    in_edges: dict[Hashable, set[Hashable]] = {}
    for path in maximal:
        interesting.add(path.start)
        interesting.add(path.end)
        for u, v in path.edges():
            out_edges.setdefault(u, set()).add(v)
            in_edges.setdefault(v, set()).add(u)
    interesting.update(u for u, vs in out_edges.items() if len(vs) >= 2)
    interesting.update(v for v, us in in_edges.items() if len(us) >= 2)
    return frozenset(interesting)


def candidate_aggregate_paths(
    agg_queries: Sequence[PathAggregationQuery],
    max_length: int | None = 32,
) -> list[Path]:
    """Candidate paths for aggregate graph views (Section 5.4).

    All simple paths of length ≥ 2 edges between interesting nodes, walking
    the union graph ``GAll`` of the workload queries.  By the aggregate
    monotonicity property any omitted path is dominated by a candidate.
    ``max_length`` bounds the enumeration depth for pathological unions.
    """
    union_edges: set[Edge] = set()
    for query in agg_queries:
        union_edges |= query.query.edges()
    nodes_of_interest = interesting_nodes(agg_queries)
    adjacency = adjacency_of(union_edges)
    out: list[Path] = []

    def walk(trail: list[Hashable], visited: set[Hashable]) -> None:
        node = trail[-1]
        if len(trail) >= 3 and node in nodes_of_interest:
            out.append(Path(tuple(trail)))
        if max_length is not None and len(trail) - 1 >= max_length:
            return
        for succ in adjacency.get(node, []):
            if succ in visited:
                continue
            visited.add(succ)
            trail.append(succ)
            walk(trail, visited)
            trail.pop()
            visited.remove(succ)

    for start in sorted(nodes_of_interest, key=repr):
        walk([start], {start})
    return out

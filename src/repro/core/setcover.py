"""Greedy (extended) set cover — view selection and query rewriting.

Section 5.2 maps view selection to an **extended set cover problem with
multiple universes**: every workload query is a universe ``Ui`` (its set of
elements); the available sets ``S`` are the single-element sets ``E`` (the
``b_i`` bitmaps that always exist) plus the candidate views ``Cv``.  Pick
the minimum number of sets covering all universes — under a budget of
``k`` views, run the greedy chooser and stop after ``k`` views are picked
or when a single-element set wins a round (no candidate view helps more
than an existing bitmap, so further view materialization is pointless).

A view may cover a universe only when it is a subset of it (its bitmap is
the conjunction of *all* its elements; using it for a query lacking one of
them would over-constrain the answer).

Section 5.3 reuses the same greedy chooser at query time with a single
universe to decide how to answer a query from the materialized views —
the classic greedy set cover with its H(n) approximation guarantee.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass, field

__all__ = ["SelectionResult", "greedy_select_views", "greedy_cover_query"]


def _content_order(elems: frozenset) -> tuple:
    """Deterministic rank of a candidate by *content*, not by key.

    On equal gain the greedy choosers prefer the larger element set (one
    fetch replaces more bitmap reads), then the lexicographically smallest
    canonical element listing.  Keys (``cand7`` vs a frozenset) carry
    enumeration order, so ranking by them made the chosen view set depend
    on how the candidates happened to be keyed.
    """
    return (-len(elems), tuple(sorted(repr(e) for e in elems)))


@dataclass
class SelectionResult:
    """Outcome of a greedy multi-universe selection run.

    ``selected`` holds the chosen candidate keys in pick order;
    ``coverage`` maps each universe index to the candidate keys usable for
    it; ``rounds`` records (key, marginal benefit) per greedy round,
    including the terminating singleton round if one occurred.
    """

    selected: list[Hashable] = field(default_factory=list)
    coverage: dict[int, list[Hashable]] = field(default_factory=dict)
    rounds: list[tuple[Hashable, int]] = field(default_factory=list)
    stopped_on_singleton: bool = False


def greedy_select_views(
    universes: Sequence[frozenset],
    candidates: Mapping[Hashable, frozenset],
    budget: int,
    weights: Mapping[Hashable, float] | None = None,
) -> SelectionResult:
    """Greedy extended set cover under a budget of ``budget`` views.

    ``candidates`` maps a view key to its element set.  Marginal benefit of
    a view in a round is the total number of still-uncovered elements it
    covers across all universes that contain it (optionally scaled by
    ``weights`` — used to bias aggregate-view selection by path length /
    query frequency).  Single-element sets are implicit: when no candidate
    beats the best implicit singleton's benefit, selection stops (the
    paper's termination rule).
    """
    if budget < 0:
        raise ValueError("budget must be >= 0")
    uncovered: list[set] = [set(u) for u in universes]
    usable: dict[Hashable, list[int]] = {
        key: [i for i, u in enumerate(universes) if elems <= u]
        for key, elems in candidates.items()
    }
    result = SelectionResult()
    remaining = dict(candidates)

    while len(result.selected) < budget and remaining:
        best_key = None
        best_gain = 0.0
        best_coverage = 0
        best_order: tuple | None = None
        for key, elems in remaining.items():
            coverage = sum(
                len(elems & uncovered[i]) for i in usable[key]
            )
            gain = float(coverage)
            if weights is not None:
                gain = gain * weights.get(key, 1.0)
            if gain <= 0.0:
                continue
            order = (_content_order(elems), repr(key))
            if (
                best_key is None
                or gain > best_gain
                or (gain == best_gain and order < best_order)
            ):
                best_gain = gain
                best_key = key
                best_coverage = coverage
                best_order = order
        # Benefit of the best implicit singleton: the most universes any
        # single uncovered element appears in (weight 1 per universe).
        singleton_gain = 0
        element_counts: dict[Hashable, int] = {}
        for u in uncovered:
            for element in u:
                element_counts[element] = element_counts.get(element, 0) + 1
        if element_counts:
            singleton_gain = max(element_counts.values())
        # Stop when an existing single-edge bitmap would win the greedy
        # round (the paper's termination rule).  Ties go to the view: a
        # view covering c >= 2 elements replaces c bitmap fetches with one,
        # while "choosing" a singleton changes nothing — its bitmap is
        # already in the schema.
        useless = best_key is None or best_coverage < 2
        if useless or best_gain < singleton_gain:
            result.stopped_on_singleton = bool(element_counts)
            if result.stopped_on_singleton:
                top = max(sorted(element_counts, key=repr), key=element_counts.get)
                result.rounds.append((("singleton", top), singleton_gain))
            break
        result.selected.append(best_key)
        result.rounds.append((best_key, int(best_gain)))
        for i in usable[best_key]:
            uncovered[i] -= remaining[best_key]
        del remaining[best_key]

    for i, universe in enumerate(universes):
        result.coverage[i] = [
            key for key in result.selected if candidates[key] <= universe
        ]
    return result


def greedy_cover_query(
    universe: frozenset,
    views: Mapping[Hashable, frozenset],
) -> tuple[list[Hashable], frozenset]:
    """Single-universe greedy set cover for query answering (Section 5.3).

    Returns the chosen view keys (each a subset of the universe, picked
    largest-marginal-coverage-first) and the residue of elements left to
    cover with their own ``b_i`` bitmaps.  The greedy solution is an
    H(n)-approximation of the optimal rewrite.
    """
    uncovered = set(universe)
    usable = {k: v for k, v in views.items() if v <= universe}
    chosen: list[Hashable] = []
    while uncovered and usable:
        best_key = None
        best_set: frozenset = frozenset()
        best_order: tuple | None = None
        gain = 0
        for key, elems in usable.items():
            key_gain = len(elems & uncovered)
            if key_gain == 0 or key_gain < gain:
                continue
            if key_gain > gain:
                gain = key_gain
                best_key, best_set = key, elems
                best_order = None
                continue
            # Equal gain: content-based tie-break so the rewrite does not
            # depend on view creation order.  Ranks are computed lazily —
            # ties only — to keep repr off this per-query hot path.
            if best_order is None:
                best_order = (_content_order(best_set), repr(best_key))
            order = (_content_order(elems), repr(key))
            if order < best_order:
                best_key, best_set, best_order = key, elems, order
        if best_key is None or gain <= 1:
            # An existing single-element bitmap covers as much; stop using
            # views — fetching them would not reduce column retrievals.
            break
        chosen.append(best_key)
        uncovered -= best_set
        del usable[best_key]
    return chosen, frozenset(uncovered)

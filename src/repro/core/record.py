"""Graph records — the unit of data in the paper's target applications.

A *graph record* (Section 3.1) is a small directed graph whose nodes are
named business entities (hubs, workflow states, …) drawn from a universal
naming scheme, annotated with a numeric measure on nodes and/or edges.

Two modeling conventions from the paper are implemented here:

* **Nodes are self-edges.**  A node ``X`` carrying a measure is stored as
  the special edge ``(X, X)`` (Section 4.1), so storage and querying treat
  nodes and edges uniformly ("edges" below means structural elements).
* **Cycle flattening.**  Path aggregation requires DAGs; records with
  cycles are flattened by renaming repeat visits (``A`` → ``A'`` → ``A''``)
  during a deterministic traversal (Sections 3.1 and 6.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any, Hashable

__all__ = ["Edge", "GraphRecord", "flatten_walk", "occurrence_name"]

# A structural element: directed edge (u, v); u == v encodes node u itself.
Edge = tuple[Hashable, Hashable]


def occurrence_name(node: Hashable, occurrence: int) -> Hashable:
    """Name for the ``occurrence``-th visit of ``node`` when flattening.

    The first visit keeps the original name; later visits get primes, e.g.
    ``A``, ``A'``, ``A''`` — mirroring the paper's ``(C, A')`` example.
    """
    if occurrence == 0:
        return node
    return f"{node}{chr(39) * occurrence}"


def flatten_walk(nodes: Iterable[Hashable]) -> list[Hashable]:
    """Flatten a node walk that may revisit nodes into unique names.

    The paper's example: a product shipped through A, B, C, A, D, E becomes
    the node sequence A, B, C, A', D, E so that the resulting edge sequence
    (A,B), (B,C), (C,A'), (A',D), (D,E) is a simple path (a DAG).
    """
    seen: dict[Hashable, int] = {}
    out: list[Hashable] = []
    for node in nodes:
        count = seen.get(node, 0)
        out.append(occurrence_name(node, count))
        seen[node] = count + 1
    return out


class GraphRecord:
    """A directed graph with one numeric measure per structural element.

    Parameters
    ----------
    record_id:
        Application-level identifier (the ``recid`` key of the master
        relation).
    measures:
        Mapping from structural element — a ``(u, v)`` edge, with
        ``(x, x)`` denoting node ``x`` — to its measure value.
    metadata:
        Optional free-form annotations (order type, region, sub-order
        links, …); not interpreted by the storage layer (Section 3.1).
    """

    __slots__ = ("_record_id", "_measures", "_metadata")

    def __init__(
        self,
        record_id: Hashable,
        measures: Mapping[Edge, float],
        metadata: Mapping[str, Any] | None = None,
    ):
        if not measures:
            raise ValueError("a graph record must contain at least one element")
        cleaned: dict[Edge, float] = {}
        for edge, value in measures.items():
            if not isinstance(edge, tuple) or len(edge) != 2:
                raise TypeError(f"structural element must be a (u, v) tuple, got {edge!r}")
            cleaned[edge] = float(value)
        self._record_id = record_id
        self._measures = cleaned
        self._metadata = dict(metadata) if metadata else {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_walk(
        cls,
        record_id: Hashable,
        nodes: Iterable[Hashable],
        edge_measures: Iterable[float],
        node_measures: Iterable[float] | None = None,
        flatten: bool = True,
        metadata: Mapping[str, Any] | None = None,
    ) -> "GraphRecord":
        """Build a record from a walk (the generators in Section 7 do this).

        ``edge_measures`` gives one value per consecutive node pair;
        ``node_measures``, if provided, one value per node.  With
        ``flatten=True`` revisited nodes are renamed so the record is a DAG.
        """
        node_list = list(nodes)
        if flatten:
            node_list = flatten_walk(node_list)
        edge_vals = list(edge_measures)
        if len(edge_vals) != max(len(node_list) - 1, 0):
            raise ValueError(
                f"need {len(node_list) - 1} edge measures, got {len(edge_vals)}"
            )
        measures: dict[Edge, float] = {}
        for (u, v), val in zip(zip(node_list, node_list[1:]), edge_vals):
            measures[(u, v)] = float(val)
        if node_measures is not None:
            node_vals = list(node_measures)
            if len(node_vals) != len(node_list):
                raise ValueError(
                    f"need {len(node_list)} node measures, got {len(node_vals)}"
                )
            for node, val in zip(node_list, node_vals):
                measures[(node, node)] = float(val)
        if not measures:
            raise ValueError("walk produced an empty record")
        return cls(record_id, measures, metadata)

    # -- protocol ---------------------------------------------------------------

    @property
    def record_id(self) -> Hashable:
        return self._record_id

    @property
    def metadata(self) -> dict[str, Any]:
        return self._metadata

    def __len__(self) -> int:
        """Number of structural elements (measured nodes + edges)."""
        return len(self._measures)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._measures

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphRecord):
            return NotImplemented
        return (
            self._record_id == other._record_id
            and self._measures == other._measures
        )

    def __repr__(self) -> str:
        return f"GraphRecord(id={self._record_id!r}, elements={len(self)})"

    # -- structure ----------------------------------------------------------------

    def elements(self) -> frozenset[Edge]:
        """All structural elements (edges; nodes as self-edges)."""
        return frozenset(self._measures)

    def edges(self) -> frozenset[Edge]:
        """Proper edges only (u != v)."""
        return frozenset(e for e in self._measures if e[0] != e[1])

    def measured_nodes(self) -> frozenset[Hashable]:
        """Nodes that carry their own measure (stored as self-edges)."""
        return frozenset(u for (u, v) in self._measures if u == v)

    def nodes(self) -> frozenset[Hashable]:
        """All nodes appearing in any structural element."""
        out: set[Hashable] = set()
        for u, v in self._measures:
            out.add(u)
            out.add(v)
        return frozenset(out)

    def measure(self, edge: Edge) -> float:
        """Measure on a structural element; KeyError if absent."""
        return self._measures[edge]

    def get_measure(self, edge: Edge) -> float | None:
        return self._measures.get(edge)

    def measures(self) -> dict[Edge, float]:
        """A copy of the element → measure mapping."""
        return dict(self._measures)

    def successors(self, node: Hashable) -> frozenset[Hashable]:
        return frozenset(v for (u, v) in self._measures if u == node and u != v)

    def predecessors(self, node: Hashable) -> frozenset[Hashable]:
        return frozenset(u for (u, v) in self._measures if v == node and u != v)

    def contains_subgraph(self, elements: Iterable[Edge]) -> bool:
        """Record containment test: is every element present?

        Because nodes are globally named, the paper's subgraph condition is
        plain element-set containment — no isomorphism search (Section 1).
        """
        return all(e in self._measures for e in elements)

    def is_dag(self) -> bool:
        """True iff the proper-edge graph has no directed cycle."""
        adjacency: dict[Hashable, list[Hashable]] = {}
        for u, v in self.edges():
            adjacency.setdefault(u, []).append(v)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[Hashable, int] = {}
        for start in list(adjacency):
            if color.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[Hashable, int]] = [(start, 0)]
            color[start] = GRAY
            while stack:
                node, child_index = stack[-1]
                children = adjacency.get(node, [])
                if child_index < len(children):
                    stack[-1] = (node, child_index + 1)
                    child = children[child_index]
                    state = color.get(child, WHITE)
                    if state == GRAY:
                        return False
                    if state == WHITE:
                        color[child] = GRAY
                        stack.append((child, 0))
                else:
                    color[node] = BLACK
                    stack.pop()
        return True

    def source_nodes(self) -> frozenset[Hashable]:
        """Nodes with no incoming proper edge."""
        nodes = self.nodes()
        targets = {v for (u, v) in self.edges()}
        return frozenset(n for n in nodes if n not in targets)

    def terminal_nodes(self) -> frozenset[Hashable]:
        """Nodes with no outgoing proper edge."""
        nodes = self.nodes()
        sources = {u for (u, v) in self.edges()}
        return frozenset(n for n in nodes if n not in sources)

"""Node hierarchies and record rollup (§3.1's granularity levels).

"Metadata on graph records are often utilized in order to form hierarchies
of nodes and edges that allow us to analyze the underlying measurements at
different granularity levels" — e.g. hub → province → country in the SCM
example, where all region-2 hubs can be treated as one aggregate node with
coalesced measures (the zoom-in/out operators of Kotidis [9] the paper
builds on).

:class:`NodeHierarchy` maps base nodes to ancestors per level;
:func:`rollup_record` rewrites a record at a coarser level: every node is
replaced by its ancestor, parallel edges between the same ancestor pair
merge with a chosen aggregate, and edges internal to one ancestor fold
into the ancestor's node measure.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Hashable

import numpy as np

from .aggregates import get_function
from .record import Edge, GraphRecord

__all__ = ["NodeHierarchy", "rollup_record", "rollup_records"]


class NodeHierarchy:
    """A fixed set of levels mapping each node upward.

    ``levels`` is an ordered sequence of level names, finest first (level
    0 is the base).  ``parents`` maps each node at level *i* to its parent
    at level *i + 1*; nodes without a mapping are their own ancestor (the
    common case for already-coarse nodes).
    """

    def __init__(
        self,
        levels: Sequence[str],
        parents: Sequence[Mapping[Hashable, Hashable]],
    ):
        if len(levels) < 2:
            raise ValueError("a hierarchy needs at least two levels")
        if len(parents) != len(levels) - 1:
            raise ValueError(
                f"need {len(levels) - 1} parent mappings for {len(levels)} levels"
            )
        self.levels = tuple(levels)
        self._parents = [dict(p) for p in parents]

    def level_index(self, level: str) -> int:
        try:
            return self.levels.index(level)
        except ValueError:
            raise KeyError(
                f"unknown level {level!r}; levels: {', '.join(self.levels)}"
            ) from None

    def ancestor(self, node: Hashable, level: str) -> Hashable:
        """The node's ancestor at ``level`` (itself at the base level)."""
        target = self.level_index(level)
        current = node
        for step in range(target):
            current = self._parents[step].get(current, current)
        return current

    def members(self, ancestor: Hashable, level: str, nodes) -> frozenset[Hashable]:
        """Which of ``nodes`` roll up into ``ancestor`` at ``level``."""
        return frozenset(n for n in nodes if self.ancestor(n, level) == ancestor)


def rollup_record(
    record: GraphRecord,
    hierarchy: NodeHierarchy,
    level: str,
    function: str = "sum",
) -> GraphRecord:
    """Rewrite a record at a coarser granularity level.

    * every node becomes its ancestor at ``level``;
    * edges whose endpoints map to different ancestors merge with
      ``function`` when several base edges collapse onto the same pair;
    * edges *internal* to one ancestor — plus the node measures of its
      members — coalesce into the ancestor's own measure (the paper's
      "aggregate node" whose hidden structure is summarized, §2).
    """
    fn = get_function(function)
    grouped: dict[Edge, list[float]] = {}
    for (u, v), value in record.measures().items():
        up = hierarchy.ancestor(u, level)
        vp = hierarchy.ancestor(v, level)
        if up == vp:
            grouped.setdefault((up, up), []).append(value)
        else:
            grouped.setdefault((up, vp), []).append(value)
    measures = {
        edge: float(fn([np.array([v]) for v in values])[0])
        for edge, values in grouped.items()
    }
    metadata = dict(record.metadata)
    metadata["rollup_level"] = level
    return GraphRecord(record.record_id, measures, metadata)


def rollup_records(
    records, hierarchy: NodeHierarchy, level: str, function: str = "sum"
):
    """Roll up a whole collection (generator-friendly)."""
    for record in records:
        yield rollup_record(record, hierarchy, level, function)

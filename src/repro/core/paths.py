"""Path algebra — the fundamental structural unit for graph queries.

Section 3.3 (following Bleco & Kotidis, BEWEB 2012) models analysis targets
as *paths* with optionally **open ends**: ``[A,D,E]`` includes the measures
of both endpoint nodes, ``(D,E,G)`` excludes both endpoints' node measures
(like an open numerical interval), and ``[D,E,G)`` excludes only the right
endpoint.  A single node ``A`` is the degenerate closed path ``[A,A]``.

The module implements:

* :class:`Path` — node sequence + end-openness, with the element expansion
  used by storage (edges, plus self-edges for measure-carrying nodes);
* the **path-join** operator ``⋈`` (:meth:`Path.join`), defined when the
  end node of the left path equals the start node of the right path and the
  common node's measure is counted exactly once (one side open there);
* **composite paths** ``[S,T]*`` — enumeration of all simple paths between
  node sets inside a graph (:func:`enumerate_paths`);
* **maximal paths** of a query graph (:func:`maximal_paths`) — the
  decomposition of a graph query into paths from its sources to its
  terminals (Section 3.3).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence, Set
from typing import Hashable

from ..errors import PathJoinError
from .record import Edge

__all__ = [
    "Path",
    "PathJoinError",
    "adjacency_of",
    "enumerate_paths",
    "maximal_paths",
    "source_nodes",
    "terminal_nodes",
]


class Path:
    """A path with optionally open endpoints.

    ``open_start`` / ``open_end`` control whether the first / last node's
    own measure participates in the path (the bracket-vs-parenthesis
    notation of the paper).  Interior nodes are always included.
    """

    __slots__ = ("_nodes", "_open_start", "_open_end")

    def __init__(
        self,
        nodes: Sequence[Hashable],
        open_start: bool = False,
        open_end: bool = False,
    ):
        nodes = tuple(nodes)
        if not nodes:
            raise ValueError("a path needs at least one node")
        if len(set(nodes)) != len(nodes) and not (
            len(nodes) == 2 and nodes[0] == nodes[1]
        ):
            raise ValueError(f"path nodes must be distinct (simple path): {nodes}")
        if len(nodes) == 1:
            # Normalize the single-node path to the paper's [A, A] form.
            nodes = (nodes[0], nodes[0])
        self._nodes = nodes
        self._open_start = bool(open_start)
        self._open_end = bool(open_end)

    # -- constructors ------------------------------------------------------

    @classmethod
    def closed(cls, *nodes: Hashable) -> "Path":
        """``[a, b, …, z]`` — both endpoint node measures included."""
        return cls(nodes, open_start=False, open_end=False)

    @classmethod
    def open(cls, *nodes: Hashable) -> "Path":
        """``(a, b, …, z)`` — both endpoint node measures excluded."""
        return cls(nodes, open_start=True, open_end=True)

    @classmethod
    def half_open_right(cls, *nodes: Hashable) -> "Path":
        """``[a, …, z)`` — last node's measure excluded."""
        return cls(nodes, open_start=False, open_end=True)

    @classmethod
    def half_open_left(cls, *nodes: Hashable) -> "Path":
        """``(a, …, z]`` — first node's measure excluded."""
        return cls(nodes, open_start=True, open_end=False)

    @classmethod
    def node(cls, node: Hashable) -> "Path":
        """A single node as the closed path ``[X, X]``."""
        return cls((node, node))

    # -- protocol -----------------------------------------------------------

    @property
    def nodes(self) -> tuple[Hashable, ...]:
        return self._nodes

    @property
    def open_start(self) -> bool:
        return self._open_start

    @property
    def open_end(self) -> bool:
        return self._open_end

    @property
    def start(self) -> Hashable:
        return self._nodes[0]

    @property
    def end(self) -> Hashable:
        return self._nodes[-1]

    def is_single_node(self) -> bool:
        return len(self._nodes) == 2 and self._nodes[0] == self._nodes[1]

    def __len__(self) -> int:
        """Number of hops (edges); a single node has length 0."""
        if self.is_single_node():
            return 0
        return len(self._nodes) - 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._open_start == other._open_start
            and self._open_end == other._open_end
        )

    def __hash__(self) -> int:
        return hash((self._nodes, self._open_start, self._open_end))

    def __repr__(self) -> str:
        left = "(" if self._open_start else "["
        right = ")" if self._open_end else "]"
        inner = ",".join(str(n) for n in self._nodes)
        return f"{left}{inner}{right}"

    # -- structure -----------------------------------------------------------

    def edges(self) -> tuple[Edge, ...]:
        """The consecutive-pair edges traversed by the path."""
        if self.is_single_node():
            return ()
        return tuple(zip(self._nodes, self._nodes[1:]))

    def included_nodes(self) -> tuple[Hashable, ...]:
        """Nodes whose own measure participates (endpoint openness applied)."""
        if self.is_single_node():
            # [A, A] includes A; an open single node would be empty and is
            # not a meaningful path, so openness collapses to exclusion.
            if self._open_start or self._open_end:
                return ()
            return (self._nodes[0],)
        nodes = list(self._nodes)
        if self._open_end:
            nodes = nodes[:-1]
        if self._open_start:
            nodes = nodes[1:]
        return tuple(nodes)

    def elements(self, measured_nodes: Set[Hashable] = frozenset()) -> tuple[Edge, ...]:
        """Structural elements of the path in traversal order.

        All traversed edges, interleaved with self-edges ``(x, x)`` for each
        included node that actually carries a measure in the database
        (``measured_nodes``).  This is exactly the set of ``m_i`` columns a
        path-aggregation over this path must consolidate, and the set of
        ``b_i`` bitmaps forming its structural condition.
        """
        included = set(self.included_nodes()) & set(measured_nodes)
        out: list[Edge] = []
        if self.is_single_node():
            node = self._nodes[0]
            if node in included:
                out.append((node, node))
            return tuple(out)
        for position, node in enumerate(self._nodes):
            if node in included:
                out.append((node, node))
            if position < len(self._nodes) - 1:
                out.append((node, self._nodes[position + 1]))
        return tuple(out)

    def contains_subpath(self, other: "Path") -> bool:
        """True iff ``other``'s node sequence occurs contiguously in self."""
        mine, theirs = self._nodes, other.nodes
        if other.is_single_node():
            return theirs[0] in mine
        window = len(theirs)
        return any(
            mine[i : i + window] == theirs for i in range(len(mine) - window + 1)
        )

    # -- path-join -----------------------------------------------------------

    def can_join(self, other: "Path") -> bool:
        """Whether ``self ⋈ other`` is defined.

        Requires the end node of self to equal the start node of other, the
        common node's measure to be counted exactly once (exactly one of the
        two sides open there), and the concatenation to remain a simple
        path.
        """
        if self.end != other.start:
            return False
        if not (self._open_end ^ other.open_start):
            return False
        left_nodes = self._nodes[:-1] if not self.is_single_node() else ()
        right_nodes = other.nodes[1:] if not other.is_single_node() else ()
        combined = left_nodes + (self.end,) + right_nodes
        return len(set(combined)) == len(combined)

    def join(self, other: "Path") -> "Path":
        """The path-join ``self ⋈ other`` (Section 3.3).

        Example: ``[A,B,F) ⋈ [F,J,K] = [A,B,F,J,K]``.  Raises
        :class:`PathJoinError` when undefined — e.g. ``[A,D,E] ⋈ [E,G,I]``
        is invalid because node E's measure would be counted twice.
        """
        if not self.can_join(other):
            raise PathJoinError(f"cannot join {self!r} with {other!r}")
        if self.is_single_node():
            combined = other.nodes
        elif other.is_single_node():
            combined = self._nodes
        else:
            combined = self._nodes + other.nodes[1:]
        return Path(combined, open_start=self._open_start, open_end=other.open_end)

    def __matmul__(self, other: "Path") -> "Path":
        """``p1 @ p2`` spelling of the ⋈ operator."""
        return self.join(other)

    @staticmethod
    def join_composites(
        left: Iterable["Path"], right: Iterable["Path"]
    ) -> list["Path"]:
        """⋈ applied to composite paths: all joinable pairs (Section 3.3)."""
        right_list = list(right)
        out: list[Path] = []
        for p1 in left:
            for p2 in right_list:
                if p1.can_join(p2):
                    out.append(p1.join(p2))
        return out


# -- graph-level path utilities ------------------------------------------------


def adjacency_of(edges: Iterable[Edge]) -> dict[Hashable, list[Hashable]]:
    """Successor adjacency of the proper (non-self) edges, sorted for
    deterministic enumeration order."""
    adjacency: dict[Hashable, set[Hashable]] = {}
    for u, v in edges:
        if u == v:
            continue
        adjacency.setdefault(u, set()).add(v)
    return {u: sorted(vs, key=repr) for u, vs in adjacency.items()}


def source_nodes(edges: Iterable[Edge]) -> frozenset[Hashable]:
    """Nodes of the edge set with no incoming proper edge (``Src(Gq)``)."""
    edges = list(edges)
    nodes: set[Hashable] = set()
    targets: set[Hashable] = set()
    for u, v in edges:
        nodes.add(u)
        nodes.add(v)
        if u != v:
            targets.add(v)
    return frozenset(nodes - targets)


def terminal_nodes(edges: Iterable[Edge]) -> frozenset[Hashable]:
    """Nodes of the edge set with no outgoing proper edge (``Ter(Gq)``)."""
    edges = list(edges)
    nodes: set[Hashable] = set()
    origins: set[Hashable] = set()
    for u, v in edges:
        nodes.add(u)
        nodes.add(v)
        if u != v:
            origins.add(u)
    return frozenset(nodes - origins)


def enumerate_paths(
    edges: Iterable[Edge],
    sources: Iterable[Hashable],
    targets: Iterable[Hashable],
    open_start: bool = False,
    open_end: bool = False,
    max_length: int | None = None,
) -> list[Path]:
    """All simple paths from any source to any target: the composite path
    ``[S, T]*`` of Section 3.3 (bracket style given by the open flags).

    Enumeration is depth-first with deterministic node order.  A source
    that is itself a target contributes the single-node path ``[s, s]``.
    ``max_length`` bounds the hop count (safety valve for dense graphs).
    """
    adjacency = adjacency_of(edges)
    target_set = set(targets)
    out: list[Path] = []

    def walk(trail: list[Hashable], visited: set[Hashable]) -> None:
        node = trail[-1]
        if node in target_set and len(trail) > 1:
            out.append(Path(tuple(trail), open_start=open_start, open_end=open_end))
        if max_length is not None and len(trail) - 1 >= max_length:
            return
        for succ in adjacency.get(node, []):
            if succ in visited:
                continue
            visited.add(succ)
            trail.append(succ)
            walk(trail, visited)
            trail.pop()
            visited.remove(succ)

    for src in sorted(set(sources), key=repr):
        if src in target_set:
            out.append(Path.node(src))
        walk([src], {src})
    return out


def maximal_paths(edges: Iterable[Edge], max_length: int | None = None) -> list[Path]:
    """Maximal paths of a query graph: closed simple paths from its source
    nodes to its terminal nodes, none contained in another (Section 3.3).

    For a DAG query this is ``[Src(Gq), Ter(Gq)]*``; if cycles leave the
    graph without sources/terminals, every node on a cycle is used as a
    fallback start/end so decomposition still covers the graph.
    """
    edge_list = [e for e in edges if e[0] != e[1]]
    if not edge_list:
        # A query of bare nodes decomposes into single-node paths.
        nodes = {u for e in edges for u in e}
        return [Path.node(n) for n in sorted(nodes, key=repr)]
    sources = source_nodes(edge_list)
    targets = terminal_nodes(edge_list)
    all_nodes = {u for e in edge_list for u in e}
    if not sources:
        sources = frozenset(all_nodes)
    if not targets:
        targets = frozenset(all_nodes)
    candidates = enumerate_paths(edge_list, sources, targets, max_length=max_length)
    # Drop any path contained in another (maximality).
    out: list[Path] = []
    for path in candidates:
        if len(path) == 0:
            continue
        if not any(
            other is not path and other.contains_subpath(path) for other in candidates
        ):
            out.append(path)
    return out

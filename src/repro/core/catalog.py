"""Edge catalog: the universal naming scheme for structural elements.

Section 3.1 assumes nodes are labeled with a universally adopted schema so
records and queries can refer to the same identifiers.  Section 4.1 then
assigns each distinct structural element (edge, or node-as-self-edge) a
unique integer id *i*, which names the master relation's columns ``m_i``
and ``b_i``.  The catalog is the bidirectional element ↔ id mapping and
grows on demand as new elements appear in loaded records (Section 6.1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Hashable

from .record import Edge

__all__ = ["EdgeCatalog"]


class EdgeCatalog:
    """Bidirectional mapping between structural elements and column ids."""

    def __init__(self) -> None:
        self._edge_to_id: dict[Edge, int] = {}
        self._id_to_edge: list[Edge] = []

    def __len__(self) -> int:
        return len(self._id_to_edge)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._edge_to_id

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._id_to_edge)

    def intern(self, edge: Edge) -> int:
        """Return the id for ``edge``, assigning a fresh one if unseen."""
        existing = self._edge_to_id.get(edge)
        if existing is not None:
            return existing
        new_id = len(self._id_to_edge)
        self._edge_to_id[edge] = new_id
        self._id_to_edge.append(edge)
        return new_id

    def intern_all(self, edges: Iterable[Edge]) -> list[int]:
        return [self.intern(e) for e in edges]

    def id_of(self, edge: Edge) -> int:
        """Id of a known element; KeyError if never interned."""
        return self._edge_to_id[edge]

    def get_id(self, edge: Edge) -> int | None:
        return self._edge_to_id.get(edge)

    def edge_of(self, edge_id: int) -> Edge:
        """Element for a known id; IndexError if out of range."""
        if edge_id < 0:
            raise IndexError("edge id must be non-negative")
        return self._id_to_edge[edge_id]

    def ids_of(self, edges: Iterable[Edge]) -> list[int]:
        """Ids for known elements; KeyError if any is unknown."""
        return [self._edge_to_id[e] for e in edges]

    def known_ids(self, edges: Iterable[Edge]) -> list[int] | None:
        """Ids for the elements, or None if any element is unknown.

        A query mentioning an element never seen in any record has an empty
        answer; callers use the ``None`` to short-circuit.
        """
        out: list[int] = []
        for edge in edges:
            edge_id = self._edge_to_id.get(edge)
            if edge_id is None:
                return None
            out.append(edge_id)
        return out

    def nodes(self) -> frozenset[Hashable]:
        """All node names appearing in any catalogued element."""
        out: set[Hashable] = set()
        for u, v in self._id_to_edge:
            out.add(u)
            out.add(v)
        return frozenset(out)

"""The paper's primary contribution: graph records and queries over a
columnar master relation, bitmap evaluation, and materialized graph views.
"""

from .aggregates import AggregateFunction, get_function, register_function
from .candidates import (
    apriori_candidates,
    candidate_aggregate_paths,
    closed_candidates,
    filter_superseded,
    interesting_nodes,
    intersection_closure_candidates,
)
from .catalog import EdgeCatalog
from .hierarchy import NodeHierarchy, rollup_record, rollup_records
from .engine import (
    GraphAnalyticsEngine,
    GraphQueryResult,
    MaterializationReport,
    PathAggregationResult,
    PhysicalPlan,
)
from .paths import Path, PathJoinError, enumerate_paths, maximal_paths
from .query import And, AndNot, GraphQuery, Or, PathAggregationQuery, QueryExpr
from .record import Edge, GraphRecord, flatten_walk
from .regions import Region, paths_through_region, queries_through_region
from .rewrite import (
    AggregationPlan,
    GraphQueryPlan,
    PathPlan,
    PathSegment,
    plan_aggregation,
    plan_graph_query,
    tile_path,
)
from .setcover import SelectionResult, greedy_cover_query, greedy_select_views
from .sqlgen import render_aggregation, render_graph_query
from .views import (
    AggregateGraphView,
    GraphView,
    aggregate_benefit,
    graph_view_supersedes,
    path_occurs_in,
)

__all__ = [
    "AggregateFunction",
    "get_function",
    "register_function",
    "apriori_candidates",
    "candidate_aggregate_paths",
    "closed_candidates",
    "filter_superseded",
    "interesting_nodes",
    "intersection_closure_candidates",
    "EdgeCatalog",
    "NodeHierarchy",
    "rollup_record",
    "rollup_records",
    "Region",
    "paths_through_region",
    "queries_through_region",
    "GraphAnalyticsEngine",
    "GraphQueryResult",
    "MaterializationReport",
    "PathAggregationResult",
    "PhysicalPlan",
    "Path",
    "PathJoinError",
    "enumerate_paths",
    "maximal_paths",
    "And",
    "AndNot",
    "GraphQuery",
    "Or",
    "PathAggregationQuery",
    "QueryExpr",
    "Edge",
    "GraphRecord",
    "flatten_walk",
    "AggregationPlan",
    "GraphQueryPlan",
    "PathPlan",
    "PathSegment",
    "plan_aggregation",
    "plan_graph_query",
    "tile_path",
    "SelectionResult",
    "greedy_cover_query",
    "greedy_select_views",
    "render_aggregation",
    "render_graph_query",
    "AggregateGraphView",
    "GraphView",
    "aggregate_benefit",
    "graph_view_supersedes",
    "path_occurs_in",
]

"""Query rewriting over materialized views (Section 5.3).

Given the views present in the database, a graph query is answered by
ANDing a *cover* of its element set: some view bitmaps (each a subset of
the query) plus the plain ``b_i`` bitmaps of the residue.  The cover is
chosen by the single-universe greedy set cover, an H(n)-approximation.

A path-aggregation query additionally *tiles* each maximal path with
non-overlapping aggregate graph views: every tile replaces its elements'
measure columns with one pre-aggregated ``mp`` column, and its elements'
bitmaps with the single ``bp``.  Tiles must match the query path exactly
over their interval (same traversed edges *and* the same included node
measures) so the pre-aggregate composes with raw measures via path-join.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence, Set
from dataclasses import dataclass, field
from typing import Hashable

from .paths import Path
from .query import GraphQuery, PathAggregationQuery
from .record import Edge
from .setcover import greedy_cover_query
from .views import AggregateGraphView, GraphView

__all__ = [
    "GraphQueryPlan",
    "PathSegment",
    "PathPlan",
    "AggregationPlan",
    "ConjunctionPart",
    "canonical_parts",
    "plan_graph_query",
    "prune_unavailable_views",
    "tile_path",
    "plan_aggregation",
    "segment_elements",
]


def prune_unavailable_views(
    graph_views: dict[str, GraphView],
    agg_views: dict[str, AggregateGraphView],
    relation,
) -> list[str]:
    """Graceful degradation: drop view *definitions* whose backing columns
    are absent from ``relation``.

    The persistence layer refuses to load a view file that fails its
    integrity check, leaving the relation without that bitmap / column
    pair.  Planning against such a phantom view would crash at fetch time,
    so this removes the orphaned definitions (mutating both mappings); the
    planners then cover those elements with the base ``b_i`` bitmaps and
    raw measure columns, keeping query answers identical — just without
    the view's speedup.  Returns the dropped view names.
    """
    dropped: list[str] = []
    for name in list(graph_views):
        if not relation.has_graph_view(name):
            del graph_views[name]
            dropped.append(name)
    for name, view in list(agg_views.items()):
        columns = [f"{name}:{fn}" for fn in view.stored_functions()]
        if all(relation.has_aggregate_view(c) for c in columns):
            continue
        # A partially loaded view (some sub-aggregate columns survived) is
        # unusable; drop the survivors so the relation stays consistent.
        for column in columns:
            relation.drop_aggregate_view(column)
        del agg_views[name]
        dropped.append(name)
    return dropped


@dataclass(frozen=True)
class ConjunctionPart:
    """One input of a structural bitmap conjunction.

    ``kind`` names the bitmap column to fetch — ``"element"`` (a base
    ``b_i``), ``"graph-view"`` (``bv_j``), or ``"agg-view"`` (``bp_l``) —
    ``token`` identifies it (the edge, or the view/column name), and
    ``covered`` is the set of query elements whose containment the bitmap
    certifies.  A part's bitmap always equals the AND of the base bitmaps
    of its covered elements, which is what lets the conjunction cache key
    intermediate results on *covered edge-sets* alone: two plans that reach
    the same covered set through different parts (views vs raw bitmaps)
    produce bit-identical intermediates.
    """

    kind: str
    token: object
    covered: frozenset[Edge]

    def sort_key(self) -> tuple:
        return (tuple(sorted(map(repr, self.covered))), self.kind, repr(self.token))


def canonical_parts(parts: Sequence[ConjunctionPart]) -> list[ConjunctionPart]:
    """Deterministic evaluation order for a conjunction's parts.

    Sorting by covered edge-set makes queries that share elements share a
    *prefix* of cumulative covered sets, so the conjunction cache can reuse
    intermediate bitmaps across queries (and across a query and the
    rewriter's partial covers).  Parts whose coverage is already implied by
    the accumulated prefix are dropped: their bitmap is a superset of the
    running conjunction, so ANDing it is a no-op.
    """
    ordered = sorted(parts, key=ConjunctionPart.sort_key)
    out: list[ConjunctionPart] = []
    covered: set[Edge] = set()
    for part in ordered:
        # Keep parts with an empty covered set (they constrain without
        # covering, so the subset rule does not apply to them).
        if part.covered and part.covered <= covered:
            continue
        covered |= part.covered
        out.append(part)
    return out


@dataclass
class GraphQueryPlan:
    """Execution plan for a plain graph query."""

    query: GraphQuery
    view_names: list[str]
    residual_elements: list[Edge]
    fetch_elements: list[Edge]

    def n_structural_columns(self) -> int:
        """Bitmap columns this plan touches (the paper's cost unit)."""
        return len(self.view_names) + len(self.residual_elements)

    def saved_columns(self) -> int:
        """Bitmap columns the view rewrite avoided versus the no-view plan
        (the per-query benefit the §5.2 selection objective sums)."""
        return len(self.query) - self.n_structural_columns()


@dataclass(frozen=True)
class PathSegment:
    """One tile of a maximal path: a view or a raw element.

    ``kind`` is ``"view"`` (use the aggregate view named ``view_name``) or
    ``"raw"`` (fetch the single element's measure column).
    """

    kind: str
    view_name: str | None = None
    element: Edge | None = None


@dataclass
class PathPlan:
    """How one maximal path's aggregation is computed."""

    path: Path
    segments: list[PathSegment] = field(default_factory=list)

    def view_names(self) -> list[str]:
        return [s.view_name for s in self.segments if s.kind == "view"]

    def raw_elements(self) -> list[Edge]:
        return [s.element for s in self.segments if s.kind == "raw"]


@dataclass
class AggregationPlan:
    """Execution plan for a path-aggregation query."""

    query: PathAggregationQuery
    structural_view_names: list[str]
    structural_agg_view_names: list[str]
    residual_elements: list[Edge]
    path_plans: list[PathPlan] = field(default_factory=list)

    def n_structural_columns(self) -> int:
        return (
            len(self.structural_view_names)
            + len(self.structural_agg_view_names)
            + len(self.residual_elements)
        )

    def n_measure_columns(self) -> int:
        """Distinct measure columns fetched (views count one per column)."""
        names: set[str] = set()
        raws: set[Edge] = set()
        for plan in self.path_plans:
            names.update(plan.view_names())
            raws.update(plan.raw_elements())
        return len(names) + len(raws)

    def segment_counts(self) -> tuple[int, int]:
        """(view segments, raw segments) across all path tilings — the
        split the tracer's ``aggregation`` span reports at run time."""
        n_view = n_raw = 0
        for plan in self.path_plans:
            for segment in plan.segments:
                if segment.kind == "view":
                    n_view += 1
                else:
                    n_raw += 1
        return n_view, n_raw


def plan_graph_query(
    query: GraphQuery, graph_views: Mapping[str, GraphView]
) -> GraphQueryPlan:
    """Rewrite a graph query against the available graph views."""
    view_sets = {name: view.elements for name, view in graph_views.items()}
    chosen, residue = greedy_cover_query(query.elements, view_sets)
    return GraphQueryPlan(
        query=query,
        view_names=[str(name) for name in chosen],
        residual_elements=sorted(residue, key=repr),
        fetch_elements=sorted(query.elements, key=repr),
    )


def segment_elements(
    path: Path, start: int, stop: int, measured_nodes: Set[Hashable]
) -> frozenset[Edge]:
    """Elements of the query path over node interval ``[start, stop]``.

    Interval endpoints inherit the path's openness when they coincide with
    the path's own endpoints; interior interval boundaries are closed
    (their node measures belong to the path and must be counted by exactly
    one tile — by convention the tile that starts there owns the left
    boundary, matching closed candidate paths).
    """
    nodes = path.nodes[start : stop + 1]
    open_start = path.open_start and start == 0
    open_end = path.open_end and stop == len(path.nodes) - 1
    sub = Path(nodes, open_start=open_start, open_end=open_end)
    return frozenset(sub.elements(measured_nodes))


def _occurrences(haystack: Sequence[Hashable], needle: Sequence[Hashable]) -> list[int]:
    window = len(needle)
    return [
        i
        for i in range(len(haystack) - window + 1)
        if tuple(haystack[i : i + window]) == tuple(needle)
    ]


def tile_path(
    path: Path,
    agg_views: Mapping[str, AggregateGraphView],
    measured_nodes: Set[Hashable] = frozenset(),
    function: str = "sum",
) -> PathPlan:
    """Tile a maximal path with non-overlapping aggregate views.

    Views are considered longest-first (the monotonicity property says
    longer tiles save more); a view is placed at an occurrence of its node
    sequence if it does not overlap an already placed tile and its stored
    elements match the query path's elements over that interval.  Residual
    positions become raw single-element segments.
    """
    usable = [
        (name, view)
        for name, view in agg_views.items()
        if view.stored_functions()
        and _compatible_functions(view.function, function)
    ]
    usable.sort(key=lambda nv: (-len(nv[1].path.edges()), nv[0]))
    n_edges = len(path.edges())
    edge_taken = [False] * n_edges
    placed: list[tuple[int, str, frozenset[Edge]]] = []  # (start idx, name, covered)
    for name, view in usable:
        needle = view.path.nodes
        if len(needle) < 2 or view.path.is_single_node():
            continue
        for start in _occurrences(path.nodes, needle):
            stop = start + len(needle) - 1
            span = range(start, stop)
            if any(edge_taken[i] for i in span):
                continue
            covered = frozenset(view.elements(measured_nodes))
            expected = segment_elements(path, start, stop, measured_nodes)
            if covered != expected:
                continue
            for i in span:
                edge_taken[i] = True
            placed.append((start, name, covered))
            break  # one placement per view per path

    placed.sort()
    segments: list[PathSegment] = []
    owner_of: dict[Edge, str] = {}
    for _, name, covered in placed:
        for element in covered:
            owner_of[element] = name
    emitted_views: set[str] = set()
    # Walk the path's element sequence; emit a view segment when entering a
    # tiled region, raw segments elsewhere.
    for element in path.elements(measured_nodes):
        owner = owner_of.get(element)
        if owner is not None:
            if owner not in emitted_views:
                segments.append(PathSegment(kind="view", view_name=owner))
                emitted_views.add(owner)
            continue
        segments.append(PathSegment(kind="raw", element=element))
    return PathPlan(path=path, segments=segments)


def _stored_for(function_name: str) -> frozenset[str]:
    from .aggregates import get_function

    fn = get_function(function_name)
    return frozenset((fn.name,) if fn.distributive else fn.sub_aggregates)


def _compatible_functions(view_function: str, query_function: str) -> bool:
    """A view tile can serve a query when every partial the query needs is
    stored by the view — or is COUNT, which over matched rows equals the
    tile's element count and needs no storage (so a SUM view answers AVG
    queries, and an AVG view answers SUM and COUNT queries)."""
    provides = _stored_for(view_function) | {"count"}
    requires = _stored_for(query_function)
    return requires <= provides


def plan_aggregation(
    query: PathAggregationQuery,
    agg_views: Mapping[str, AggregateGraphView],
    graph_views: Mapping[str, GraphView],
    measured_nodes: Set[Hashable] = frozenset(),
) -> AggregationPlan:
    """Rewrite a path-aggregation query against all available views.

    Per maximal path, tile with aggregate views.  The structural condition
    then reuses the ``bp`` bitmaps of every tile for free coverage, covers
    the remainder greedily with graph views, and falls back to ``b_i``
    bitmaps for the residue.
    """
    path_plans = [
        tile_path(path, agg_views, measured_nodes, function=query.function)
        for path in query.maximal_paths()
    ]
    used_agg_names: list[str] = []
    covered: set[Edge] = set()
    for plan in path_plans:
        for name in plan.view_names():
            if name not in used_agg_names:
                used_agg_names.append(name)
                covered |= set(agg_views[name].elements(measured_nodes))

    universe = query.query.elements
    residue_universe = frozenset(universe - covered)
    view_sets = {name: view.elements for name, view in graph_views.items()}
    # Graph views must still be subsets of the *whole* query to be valid,
    # but their marginal gain is on the uncovered residue.
    usable = {
        name: elems & residue_universe
        for name, elems in view_sets.items()
        if elems <= universe
    }
    chosen, residue = greedy_cover_query(residue_universe, usable)
    return AggregationPlan(
        query=query,
        structural_view_names=[str(name) for name in chosen],
        structural_agg_view_names=used_agg_names,
        residual_elements=sorted(residue, key=repr),
        path_plans=path_plans,
    )

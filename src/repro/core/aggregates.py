"""Aggregate functions for path aggregation (Sections 3.4, 5.1.2).

A path-aggregation query consolidates the measures along a path with a
user-defined function ``F`` (SUM, MAX, …).  Two properties matter for view
materialization:

* **Distributive** functions (SUM, MIN, MAX, COUNT) can be applied to
  pre-aggregated sub-paths directly: ``SUM(p1 ⋈ p2) = SUM(SUM p1, SUM p2)``.
* **Algebraic** functions (AVG) are not, but decompose into a bounded set of
  distributive *sub-aggregates* (sum, count) from which the final value is
  computed — so an aggregate graph view for AVG stores those instead
  (Section 5.1.2).

Functions combine *element-wise across path elements* for a whole column of
records at a time: inputs are float64 arrays of shape ``(n_records,)`` (one
per path element, NaN = NULL), outputs the same shape.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = ["AggregateFunction", "get_function", "register_function", "FUNCTIONS"]


def _stack(arrays: Sequence[np.ndarray]) -> np.ndarray:
    if not arrays:
        raise ValueError("need at least one array to aggregate")
    return np.vstack([np.asarray(a, dtype=np.float64) for a in arrays])


def _sum(arrays: Sequence[np.ndarray]) -> np.ndarray:
    return np.nansum(_stack(arrays), axis=0)


def _min(arrays: Sequence[np.ndarray]) -> np.ndarray:
    stacked = _stack(arrays)
    with np.errstate(invalid="ignore"):
        out = np.nanmin(stacked, axis=0)
    return out


def _max(arrays: Sequence[np.ndarray]) -> np.ndarray:
    stacked = _stack(arrays)
    with np.errstate(invalid="ignore"):
        out = np.nanmax(stacked, axis=0)
    return out


def _count(arrays: Sequence[np.ndarray]) -> np.ndarray:
    return np.sum(~np.isnan(_stack(arrays)), axis=0).astype(np.float64)


def _avg_finalize(sub: dict[str, np.ndarray]) -> np.ndarray:
    total, count = sub["sum"], sub["count"]
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(count > 0, total / count, np.nan)
    return out


def _identity_lift(values: np.ndarray) -> np.ndarray:
    return values


def _presence_lift(values: np.ndarray) -> np.ndarray:
    """Lift raw measures into COUNT's partial space: 1 where present."""
    return (~np.isnan(np.asarray(values, dtype=np.float64))).astype(np.float64)


@dataclass(frozen=True)
class AggregateFunction:
    """A named aggregate with its combination semantics.

    ``combine`` folds measure arrays of a path's elements into one array.
    For distributive functions, ``combine`` is also how pre-aggregated view
    columns merge with raw measure columns.  Algebraic functions list their
    ``sub_aggregates`` (distributive function names) and a ``finalize`` that
    turns named sub-aggregate arrays into the final value.

    Two extra hooks support composing *partial* aggregates (view columns)
    with raw measures, as view-based rewriting requires:

    * ``merger`` — name of the function that merges partials of this
      function (COUNT partials merge with SUM; everything else with
      itself).
    * ``lift`` — maps a raw measure array into this function's partial
      space (identity except COUNT, where a present measure lifts to 1).
    """

    name: str
    combine: "callable"
    distributive: bool = True
    sub_aggregates: tuple[str, ...] = field(default_factory=tuple)
    finalize: "callable | None" = None
    merger: str = ""
    lift: "callable" = _identity_lift

    def is_algebraic(self) -> bool:
        return not self.distributive

    def merge_partials(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Merge partial aggregates (view columns and lifted raw values)."""
        merger = self.merger or self.name
        return FUNCTIONS[merger].combine(arrays)

    def __call__(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        return self.combine(arrays)


FUNCTIONS: dict[str, AggregateFunction] = {}


def register_function(function: AggregateFunction) -> None:
    """Add a user-defined aggregate to the registry."""
    key = function.name.lower()
    if key in FUNCTIONS:
        raise ValueError(f"aggregate function {key!r} already registered")
    FUNCTIONS[key] = function


def get_function(name: str) -> AggregateFunction:
    """Look up an aggregate by name (case-insensitive)."""
    try:
        return FUNCTIONS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(FUNCTIONS))
        raise KeyError(f"unknown aggregate function {name!r}; known: {known}") from None


register_function(AggregateFunction("sum", _sum))
register_function(AggregateFunction("min", _min))
register_function(AggregateFunction("max", _max))
register_function(
    AggregateFunction("count", _count, merger="sum", lift=_presence_lift)
)
register_function(
    AggregateFunction(
        "avg",
        # Direct combine for raw measures (no pre-aggregation involved).
        lambda arrays: _avg_finalize({"sum": _sum(arrays), "count": _count(arrays)}),
        distributive=False,
        sub_aggregates=("sum", "count"),
        finalize=_avg_finalize,
    )
)

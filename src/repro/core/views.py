"""Materialized graph views and aggregate graph views (Section 5.1).

Two view species extend the master relation's schema:

* :class:`GraphView` — one bitmap column ``bv`` holding the precomputed
  conjunction of the bitmaps of an element set ``B``; using it for a query
  ``Gq ⊇ B`` replaces ``|B|`` bitmap fetches with one (Section 5.1.1).
* :class:`AggregateGraphView` — for a path ``p`` and aggregate function
  ``F``, a measure column ``mp`` with ``F`` pre-applied along ``p`` per
  record (or the distributive sub-aggregates, for algebraic ``F``) plus the
  bitmap ``bp`` of records containing ``p`` (Section 5.1.2).

Both species obey a **monotonicity property** that drives candidate
pruning; the ``supersedes`` helpers implement those definitions verbatim.
"""

from __future__ import annotations

from collections.abc import Iterable, Set
from typing import Hashable

from .aggregates import get_function
from .paths import Path
from .query import GraphQuery, PathAggregationQuery
from .record import Edge

__all__ = [
    "GraphView",
    "AggregateGraphView",
    "graph_view_supersedes",
    "aggregate_benefit",
    "path_occurs_in",
]


class GraphView:
    """A precomputed bitmap conjunction over a set of structural elements."""

    __slots__ = ("name", "elements")

    def __init__(self, name: str, elements: Iterable[Edge]):
        elems = frozenset(elements)
        if len(elems) < 2:
            raise ValueError(
                "a graph view must cover at least two elements; single-element "
                "bitmaps already exist as the b_i columns"
            )
        self.name = name
        self.elements = elems

    def __repr__(self) -> str:
        return f"GraphView({self.name!r}, |B|={len(self.elements)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphView):
            return NotImplemented
        return self.name == other.name and self.elements == other.elements

    def __hash__(self) -> int:
        return hash((self.name, self.elements))

    def usable_for(self, query: GraphQuery) -> bool:
        """A view's bitmap may replace its elements' bitmaps only when every
        element belongs to the query (``B ⊆ Gq``)."""
        return self.elements <= query.elements

    def saving(self, query: GraphQuery) -> int:
        """Bitmap fetches saved when used alone for ``query``: |B| − 1."""
        if not self.usable_for(query):
            return 0
        return len(self.elements) - 1


def graph_view_supersedes(
    larger: Set[Edge], smaller: Set[Edge], workload: Iterable[GraphQuery]
) -> bool:
    """Monotonicity property (graph views), Section 5.2.

    ``larger`` supersedes ``smaller`` iff ``smaller ⊂ larger`` and every
    workload query containing ``smaller`` also contains ``larger`` — then
    the bigger view helps wherever the smaller one would, and saves more.
    """
    smaller = frozenset(smaller)
    larger = frozenset(larger)
    if not (smaller < larger):
        return False
    return all(
        larger <= q.elements for q in workload if smaller <= q.elements
    )


def path_occurs_in(path: Path, query: GraphQuery) -> bool:
    """Whether ``path`` is usable for ``query``'s aggregation: the path's
    node sequence must appear contiguously on some maximal path of the
    query, so its pre-aggregate composes with the rest via path-join."""
    return any(maximal.contains_subpath(path) for maximal in query.maximal_paths())


class AggregateGraphView:
    """Pre-aggregated measures along a path, plus the path's bitmap.

    For a distributive function one stored column suffices; for an
    algebraic one (AVG) the view stores each distributive sub-aggregate
    (sum, count) so supergraph queries can still be answered exactly
    (Section 5.1.2).  ``column_names`` lists the stored ``mp`` columns in
    the master relation.
    """

    __slots__ = ("name", "path", "function")

    def __init__(self, name: str, path: Path, function: str = "sum"):
        if len(path) < 1 or (len(path) == 1 and not path.elements(frozenset())):
            raise ValueError("an aggregate view needs a path with >= 1 edge")
        self.name = name
        self.path = path
        self.function = function.lower()
        get_function(self.function)  # validate eagerly

    def __repr__(self) -> str:
        return f"AggregateGraphView({self.name!r}, {self.path!r}, {self.function})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateGraphView):
            return NotImplemented
        return (
            self.name == other.name
            and self.path == other.path
            and self.function == other.function
        )

    def __hash__(self) -> int:
        return hash((self.name, self.path, self.function))

    def stored_functions(self) -> tuple[str, ...]:
        """Distributive functions actually materialized as ``mp`` columns."""
        function = get_function(self.function)
        if function.distributive:
            return (self.function,)
        return function.sub_aggregates

    def column_names(self) -> tuple[str, ...]:
        return tuple(f"{self.name}:{fn}" for fn in self.stored_functions())

    def elements(self, measured_nodes: Set[Hashable] = frozenset()) -> tuple[Edge, ...]:
        """The structural elements the view's ``bp`` bitmap conjuncts."""
        return self.path.elements(measured_nodes) or self.path.edges()

    def usable_for(self, query: PathAggregationQuery) -> bool:
        """Usable when functions are compatible and the path occurs
        contiguously within the query."""
        if self.function != query.function:
            compatible = (
                get_function(query.function).is_algebraic()
                and self.function == query.function
            )
            if not compatible:
                return False
        return path_occurs_in(self.path, query.query)


def aggregate_benefit(path: Path, query: PathAggregationQuery) -> int:
    """Benefit of an aggregate view for a query, per the Section 5.4 cost
    model: proportional to the path length — each of the path's elements'
    measure columns is replaced by the single ``mp`` column, and its bitmaps
    by the single ``bp``.  Zero when the view is unusable for the query."""
    if not path_occurs_in(path, query.query):
        return 0
    n_elements = len(path.edges())
    return max(n_elements - 1, 0) * 2  # one saved bitmap + one saved measure per edge

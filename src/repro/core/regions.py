"""Regions — ad-hoc aggregate nodes over parts of the network (§2, §3.3).

The paper's motivating queries coalesce node sets: "all production points
within region 1", "hubs from region 2".  A :class:`Region` names a
subgraph (its nodes and internal edges); Section 3.3 then writes path
expressions *through* regions, e.g. articles passing through all hubs of
region 2::

    [Src(Gq), Src(R2)) ⋈ [Src(R2), Ter(R2)] ⋈ (Ter(R2), Ter(Gq)]

This module implements that machinery: region sources/terminals, the
composite paths into / within / out of a region, and the queries that
retrieve records routed through a region — including the paper's example
where path [C,H,K] is excluded because it avoids region 2 entirely.
"""

from __future__ import annotations

from collections.abc import Iterable, Set
from typing import Hashable

from .paths import Path, enumerate_paths, source_nodes, terminal_nodes
from .query import GraphQuery
from .record import Edge

__all__ = ["Region", "paths_through_region", "queries_through_region"]


class Region:
    """A named set of nodes with the edges internal to it.

    ``elements`` may be given explicitly; otherwise the region's internal
    edges are derived from a host edge set (every host edge with both
    endpoints in the region).
    """

    __slots__ = ("name", "nodes", "elements")

    def __init__(
        self,
        name: str,
        nodes: Iterable[Hashable],
        elements: Iterable[Edge] | None = None,
        host_edges: Iterable[Edge] | None = None,
    ):
        self.name = name
        self.nodes = frozenset(nodes)
        if not self.nodes:
            raise ValueError("a region needs at least one node")
        if elements is not None:
            elems = frozenset(elements)
            for u, v in elems:
                if u not in self.nodes or v not in self.nodes:
                    raise ValueError(
                        f"edge {(u, v)!r} is not internal to region {name!r}"
                    )
            self.elements = elems
        elif host_edges is not None:
            self.elements = frozenset(
                (u, v)
                for u, v in host_edges
                if u in self.nodes and v in self.nodes
            )
        else:
            self.elements = frozenset()

    def __repr__(self) -> str:
        return f"Region({self.name!r}, nodes={len(self.nodes)}, edges={len(self.elements)})"

    def __contains__(self, node: Hashable) -> bool:
        return node in self.nodes

    def sources(self) -> frozenset[Hashable]:
        """``Src(R)`` — nodes of the region without internal predecessors."""
        if not self.elements:
            return self.nodes
        internal = source_nodes(self.elements)
        isolated = self.nodes - {u for e in self.elements for u in e}
        return internal | isolated

    def terminals(self) -> frozenset[Hashable]:
        """``Ter(R)`` — nodes of the region without internal successors."""
        if not self.elements:
            return self.nodes
        internal = terminal_nodes(self.elements)
        isolated = self.nodes - {u for e in self.elements for u in e}
        return internal | isolated

    def entry_edges(self, host_edges: Iterable[Edge]) -> frozenset[Edge]:
        """Host edges crossing into the region."""
        return frozenset(
            (u, v) for u, v in host_edges if u not in self.nodes and v in self.nodes
        )

    def exit_edges(self, host_edges: Iterable[Edge]) -> frozenset[Edge]:
        """Host edges crossing out of the region."""
        return frozenset(
            (u, v) for u, v in host_edges if u in self.nodes and v not in self.nodes
        )

    def internal_view_elements(self) -> frozenset[Edge]:
        """The element set of a graph view indexing this region — the
        paper's example of indexing region 2 with a single bitmap column
        (Section 5.1.1)."""
        if not self.elements:
            raise ValueError(f"region {self.name!r} has no internal edges to index")
        return self.elements


def paths_through_region(
    host_edges: Iterable[Edge],
    region: Region,
    max_length: int | None = 16,
) -> list[Path]:
    """All maximal host paths that pass through the region.

    Implements the Section 3.3 composite expression: paths from the host
    graph's sources into ``Src(R)``, joined with paths across the region,
    joined with paths from ``Ter(R)`` to the host terminals.  Paths that
    never touch the region (the paper's ``[C,H,K]``) are not produced.
    """
    host_edges = [e for e in set(host_edges) if e[0] != e[1]]
    host_sources = source_nodes(host_edges)
    host_terminals = terminal_nodes(host_edges)

    # [Src(Gq), Src(R)): open at the region boundary so the boundary
    # node's measure is owned by the middle segment.
    into = enumerate_paths(
        host_edges, host_sources, region.sources(),
        open_end=True, max_length=max_length,
    )
    # Sources already inside the region contribute a degenerate entry.
    for node in host_sources & region.sources():
        into.append(Path((node, node), open_end=True))

    across = enumerate_paths(
        host_edges, region.sources(), region.terminals(), max_length=max_length
    )
    across = [p for p in across if set(p.nodes) <= region.nodes]

    out = enumerate_paths(
        host_edges, region.terminals(), host_terminals,
        open_start=True, max_length=max_length,
    )
    for node in host_terminals & region.terminals():
        out.append(Path((node, node), open_start=True))

    first = Path.join_composites(into, across)
    return Path.join_composites(first, out)


def queries_through_region(
    host_edges: Iterable[Edge],
    region: Region,
    measured_nodes: Set[Hashable] = frozenset(),
    max_length: int | None = 16,
) -> list[GraphQuery]:
    """One graph query per maximal host path through the region."""
    return [
        GraphQuery.from_path(p, measured_nodes)
        for p in paths_through_region(host_edges, region, max_length)
        if p.edges()
    ]

"""Render execution plans as the SQL the paper issues to the column store.

Section 4.2 evaluates a graph query with a statement of the form::

    SELECT recid, m_q1, ..., m_qm
    FROM R
    WHERE b_q1 = 1 AND ... AND b_qm = 1

and Section 5.1.1 rewrites it to use view bitmap columns.  These renderers
produce exactly those statements from our plans — useful for EXPLAIN-style
introspection, documentation, and for porting the framework onto a real
column store.
"""

from __future__ import annotations

from .catalog import EdgeCatalog
from .record import Edge
from .rewrite import AggregationPlan, GraphQueryPlan

__all__ = ["render_graph_query", "render_aggregation"]


def _measure_name(catalog: EdgeCatalog, element: Edge) -> str:
    edge_id = catalog.get_id(element)
    return f"m{edge_id}" if edge_id is not None else f"m?{element!r}"


def _bitmap_name(catalog: EdgeCatalog, element: Edge) -> str:
    edge_id = catalog.get_id(element)
    return f"b{edge_id}" if edge_id is not None else f"b?{element!r}"


def render_graph_query(plan: GraphQueryPlan, catalog: EdgeCatalog) -> str:
    """SQL for a (possibly view-rewritten) graph query."""
    selects = ["recid"] + [_measure_name(catalog, e) for e in plan.fetch_elements]
    predicates = [f"{name} = 1" for name in plan.view_names]
    predicates += [
        f"{_bitmap_name(catalog, e)} = 1" for e in plan.residual_elements
    ]
    where = " AND ".join(predicates) if predicates else "1 = 1"
    return f"SELECT {', '.join(selects)}\nFROM R\nWHERE {where}"


def render_aggregation(plan: AggregationPlan, catalog: EdgeCatalog) -> str:
    """SQL for a path-aggregation query.

    Each maximal path becomes one select expression combining view columns
    ``mp`` and raw measure columns; SUM-style combination is shown with
    ``+`` per the paper's Table 1 example (``mp1 = m6 + m7``).
    """
    function = plan.query.function.upper()
    selects = ["recid"]
    for i, path_plan in enumerate(plan.path_plans):
        terms: list[str] = []
        for segment in path_plan.segments:
            if segment.kind == "view":
                terms.append(f"mp_{segment.view_name}")
            else:
                terms.append(_measure_name(catalog, segment.element))
        if function == "SUM":
            expression = " + ".join(terms)
        else:
            expression = f"{function}({', '.join(terms)})"
        selects.append(f"{expression} AS path{i}_{function.lower()}")
    predicates = [f"bp_{name} = 1" for name in plan.structural_agg_view_names]
    predicates += [f"{name} = 1" for name in plan.structural_view_names]
    predicates += [
        f"{_bitmap_name(catalog, e)} = 1" for e in plan.residual_elements
    ]
    where = " AND ".join(predicates) if predicates else "1 = 1"
    return f"SELECT {', '.join(selects)}\nFROM R\nWHERE {where}"

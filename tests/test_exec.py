"""Unit and concurrency tests for the serving layer (``repro.exec``)."""

from __future__ import annotations

import threading

import pytest

from repro.columnstore import Bitmap
from repro.columnstore.iostats import IOStatsCollector
from repro.core import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    PathAggregationQuery,
)
from repro.exec import BitmapCache, QueryExecutor
from repro.exec.executor import _ReadWriteLock


def bm(*indices, length=64):
    return Bitmap.from_indices(length, indices)


RECORDS = [
    GraphRecord("r1", {("A", "B"): 1.0, ("B", "C"): 2.0}),
    GraphRecord("r2", {("A", "B"): 3.0, ("C", "D"): 4.0}),
    GraphRecord("r3", {("B", "C"): 5.0, ("C", "D"): 6.0}),
]


def fresh_engine(records=RECORDS):
    engine = GraphAnalyticsEngine()
    engine.load_records(records)
    return engine


class TestBitmapCache:
    def test_miss_then_hit(self):
        cache = BitmapCache()
        calls = []
        key = frozenset({("A", "B")})

        def compute():
            calls.append(1)
            return bm(1, 2)

        first = cache.get_or_compute(7, key, compute)
        second = cache.get_or_compute(7, key, compute)
        assert first == second == bm(1, 2)
        assert calls == [1], "second call must be served from the cache"
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.requests() == stats.hits + stats.misses == 2
        assert stats.hit_rate() == 0.5

    def test_epoch_isolates_entries(self):
        cache = BitmapCache()
        key = frozenset({("A", "B")})
        cache.get_or_compute(1, key, lambda: bm(1))
        # Same elements at a later epoch must recompute, never reuse.
        got = cache.get_or_compute(2, key, lambda: bm(2))
        assert got == bm(2)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_lru_eviction_order_and_budget(self):
        # 64-bit bitmaps pack into one 8-byte word; budget fits two.
        cache = BitmapCache(budget_bytes=16)
        keys = [frozenset({("e", str(i))}) for i in range(3)]
        for i, key in enumerate(keys):
            cache.get_or_compute(0, key, lambda i=i: bm(i))
        assert cache.current_bytes() <= cache.budget_bytes
        assert cache.stats.evictions == 1
        # Oldest entry evicted; the two recent ones survive.
        assert cache.lookup(0, keys[0]) is None
        assert cache.lookup(0, keys[1]) == bm(1)
        assert cache.lookup(0, keys[2]) == bm(2)

    def test_hit_refreshes_lru_position(self):
        cache = BitmapCache(budget_bytes=16)
        a, b, c = (frozenset({("e", str(i))}) for i in range(3))
        cache.get_or_compute(0, a, lambda: bm(0))
        cache.get_or_compute(0, b, lambda: bm(1))
        cache.get_or_compute(0, a, lambda: bm(0))  # refresh a
        cache.get_or_compute(0, c, lambda: bm(2))  # evicts b, not a
        assert cache.lookup(0, a) is not None
        assert cache.lookup(0, b) is None

    def test_budget_always_honoured(self):
        cache = BitmapCache(budget_bytes=40)
        for i in range(50):
            key = frozenset({("e", str(i))})
            cache.get_or_compute(0, key, lambda i=i: bm(i, length=64 * (1 + i % 3)))
            assert cache.current_bytes() <= cache.budget_bytes

    def test_oversized_entry_not_retained(self):
        cache = BitmapCache(budget_bytes=8)
        big = Bitmap.ones(1024)  # 16 words = 128 bytes > budget
        got = cache.get_or_compute(0, frozenset({("x", "y")}), lambda: big)
        assert got == big, "caller still gets the computed bitmap"
        assert len(cache) == 0
        assert cache.current_bytes() == 0

    def test_content_dedup_charges_once(self):
        cache = BitmapCache()
        for name in ("p", "q", "r"):
            cache.get_or_compute(0, frozenset({("e", name)}), lambda: bm(3, 4))
        stats = cache.stats
        assert stats.entries == 3
        assert stats.unique_bitmaps == 1
        assert stats.bytes_cached == bm(3, 4).nbytes()

    def test_dedup_release_on_eviction(self):
        cache = BitmapCache(budget_bytes=8)  # one unique 64-bit bitmap
        cache.get_or_compute(0, frozenset({("a", "b")}), lambda: bm(1))
        cache.get_or_compute(0, frozenset({("c", "d")}), lambda: bm(1))  # shared
        assert cache.current_bytes() == 8
        cache.get_or_compute(0, frozenset({("e", "f")}), lambda: bm(2))
        assert cache.current_bytes() <= 8

    def test_drop_stale(self):
        cache = BitmapCache()
        cache.get_or_compute(1, frozenset({("a", "b")}), lambda: bm(1))
        cache.get_or_compute(1, frozenset({("c", "d")}), lambda: bm(2))
        cache.get_or_compute(2, frozenset({("a", "b")}), lambda: bm(3))
        dropped = cache.drop_stale(2)
        assert dropped == 2
        assert len(cache) == 1
        assert cache.stats.invalidations == 2
        assert cache.lookup(2, frozenset({("a", "b")})) == bm(3)

    def test_clear_and_reset_stats(self):
        cache = BitmapCache()
        cache.get_or_compute(0, frozenset({("a", "b")}), lambda: bm(1))
        cache.lookup(0, frozenset({("a", "b")}))
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes() == 0
        assert cache.stats.requests() > 0, "counters survive clear()"
        cache.reset_stats()
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)

    def test_collector_mirroring(self):
        collector = IOStatsCollector()
        cache = BitmapCache(budget_bytes=8, collector=collector)
        key = frozenset({("a", "b")})
        cache.get_or_compute(0, key, lambda: bm(1))
        cache.get_or_compute(0, key, lambda: bm(1))
        cache.get_or_compute(0, frozenset({("c", "d")}), lambda: bm(2))
        stats = collector.stats
        assert stats.cache_hits == 1
        assert stats.cache_misses == 2
        assert stats.cache_evictions == 1
        assert stats.conjunctions_requested() == 3

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BitmapCache(budget_bytes=-1)

    def test_thread_safety_under_contention(self):
        cache = BitmapCache(budget_bytes=256)
        errors = []

        def worker(seed):
            try:
                for i in range(200):
                    key = frozenset({("e", str((seed + i) % 13))})
                    got = cache.get_or_compute(
                        0, key, lambda i=i: bm((seed + i) % 13)
                    )
                    assert got == bm((seed + i) % 13)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.current_bytes() <= cache.budget_bytes
        stats = cache.stats
        assert stats.requests() == 4 * 200 == stats.hits + stats.misses


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = _ReadWriteLock()
        log = []
        in_read = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                in_read.wait()  # both readers inside simultaneously
                log.append("read")

        def writer():
            with lock.write():
                log.append("write")

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers:
            t.start()
        for t in readers:
            t.join()
        w = threading.Thread(target=writer)
        w.start()
        w.join()
        assert log == ["read", "read", "write"]

    def test_write_lock_is_exclusive(self):
        lock = _ReadWriteLock()
        counter = {"value": 0, "max_inside": 0}

        def bump():
            with lock.write():
                counter["value"] += 1
                counter["max_inside"] = max(counter["max_inside"], 1)
                counter["value"] -= 1

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["value"] == 0
        assert counter["max_inside"] == 1


class TestQueryExecutor:
    def test_submission_order_preserved(self):
        engine = fresh_engine()
        queries = [
            GraphQuery([("A", "B")]),
            GraphQuery([("C", "D")]),
            GraphQuery([("B", "C")]),
            GraphQuery([("A", "B"), ("C", "D")]),
        ]
        with QueryExecutor(engine, jobs=4, cache_mb=4) as executor:
            results = executor.run_batch(queries, fetch_measures=False)
        assert [r.record_ids for r in results] == [
            ["r1", "r2"],
            ["r2", "r3"],
            ["r1", "r3"],
            ["r2"],
        ]

    def test_serve_streams_in_order(self):
        engine = fresh_engine()
        queries = [GraphQuery([("A", "B")])] * 5 + [GraphQuery([("B", "C")])] * 5
        with QueryExecutor(engine, jobs=2, cache_mb=4) as executor:
            results = list(
                executor.serve(iter(queries), batch_size=3, fetch_measures=False)
            )
        assert len(results) == 10
        assert results[0].record_ids == ["r1", "r2"]
        assert results[-1].record_ids == ["r1", "r3"]

    def test_empty_batch(self):
        with QueryExecutor(fresh_engine()) as executor:
            assert executor.run_batch([]) == []

    def test_closed_executor_rejects_work(self):
        executor = QueryExecutor(fresh_engine())
        executor.close()
        with pytest.raises(RuntimeError):
            executor.run_batch([GraphQuery([("A", "B")])])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueryExecutor(fresh_engine(), jobs=0)
        with QueryExecutor(fresh_engine()) as executor:
            with pytest.raises(ValueError):
                list(executor.serve([], batch_size=0))

    def test_cache_mb_installs_cache(self):
        engine = fresh_engine()
        with QueryExecutor(engine, cache_mb=2) as executor:
            assert executor.cache is not None
            assert engine.bitmap_cache is executor.cache
            assert executor.cache.budget_bytes == 2 << 20

    def test_no_cache_by_default(self):
        engine = fresh_engine()
        with QueryExecutor(engine) as executor:
            assert executor.cache is None
            assert engine.bitmap_cache is None

    def test_non_query_rejected(self):
        with QueryExecutor(fresh_engine(), jobs=2) as executor:
            with pytest.raises(TypeError):
                executor.run_batch(["not a query", "also wrong"])

    def test_worker_exceptions_propagate(self):
        # An unknown aggregate function fails inside the worker thread;
        # run_batch must re-raise, not swallow, the error.
        bad = PathAggregationQuery(GraphQuery([("A", "B")]), "no-such-fn")
        with QueryExecutor(fresh_engine(), jobs=2) as executor:
            with pytest.raises(KeyError):
                executor.run_batch([bad, bad])

    def test_write_methods_bump_epoch(self):
        engine = fresh_engine()
        with QueryExecutor(engine, cache_mb=4) as executor:
            before = executor.epoch
            executor.append_records(
                [GraphRecord("r4", {("A", "B"): 7.0})]
            )
            assert executor.epoch > before
            mid = executor.epoch
            executor.materialize_graph_views([GraphQuery([("A", "B")])], budget=1)
            assert executor.epoch > mid
            after_views = executor.epoch
            executor.drop_all_views()
            assert executor.epoch > after_views

    def test_batch_stats_recorded(self):
        engine = fresh_engine()
        engine.reset_stats()
        with QueryExecutor(engine, jobs=2) as executor:
            executor.run_batch(
                [GraphQuery([("A", "B")]), GraphQuery([("B", "C")])],
                fetch_measures=False,
            )
        stats = engine.stats
        assert stats.batches_served == 1
        assert stats.parallel_tasks == 2


class TestConcurrencyStress:
    """Readers serve a skewed workload while a writer appends records and
    flips view state.  The run must finish without exceptions, every
    result must carry a quiescent epoch, and replaying each epoch's state
    serially must reproduce every answer bit-for-bit."""

    def test_stress_readers_vs_writer(self):
        base = [
            GraphRecord(f"b{i}", {("A", "B"): float(i), ("B", "C"): 1.0})
            for i in range(10)
        ]
        extra_batches = [
            [
                GraphRecord(
                    f"x{batch}-{i}",
                    {("A", "B"): 1.0, ("C", "D"): float(batch)},
                )
                for i in range(5)
            ]
            for batch in range(4)
        ]
        queries = [
            GraphQuery([("A", "B")]),
            GraphQuery([("B", "C")]),
            GraphQuery([("A", "B"), ("C", "D")]),
            GraphQuery([("no", "where")]),
        ]

        engine = fresh_engine(base)
        executor = QueryExecutor(engine, jobs=4, cache_mb=8)
        # Epoch -> number of records visible at that (quiescent) epoch.
        visible = {engine.epoch: len(base)}
        observations = []
        errors = []
        start = threading.Barrier(5, timeout=10)
        stop = threading.Event()

        def reader(seed):
            try:
                start.wait()
                i = 0
                while not stop.is_set() or i < 20:
                    query = queries[(seed + i) % len(queries)]
                    result = executor.run_one(query, fetch_measures=False)
                    observations.append((query, result.epoch, result.record_ids))
                    i += 1
                    if i > 3000:  # safety valve
                        break
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer():
            try:
                start.wait()
                n = len(base)
                for i, batch in enumerate(extra_batches):
                    executor.append_records(batch)
                    n += len(batch)
                    visible[engine.epoch] = n
                    if i == 1:
                        executor.materialize_graph_views(queries[:2], budget=2)
                        visible[engine.epoch] = n
                    if i == 2:
                        executor.drop_all_views()
                        visible[engine.epoch] = n
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, args=(s,)) for s in range(4)]
        threads.append(threading.Thread(target=writer))
        start_all = threads
        for t in start_all:
            t.start()
        for t in start_all:
            t.join(timeout=60)
        executor.close()

        assert not errors, errors
        assert not any(t.is_alive() for t in threads), "thread failed to join"
        assert len(visible) > 1, "writer must have advanced the epoch"

        # Every observation executed at a quiescent epoch (mutations run
        # under the exclusive lock, so mid-mutation epochs are unobservable).
        all_records = base + [r for batch in extra_batches for r in batch]
        replayed: dict[tuple[int, GraphQuery], list] = {}
        for query, epoch, record_ids in observations:
            assert epoch in visible, f"observed mid-mutation epoch {epoch}"
            key = (epoch, query)
            if key not in replayed:
                n = visible[epoch]
                replayed[key] = [
                    r.record_id for r in all_records[:n] if query.matches(r)
                ]
            assert record_ids == replayed[key], (epoch, query)

        # The proactive invalidation kept only current-epoch entries.
        cache = executor.cache
        assert cache is not None
        assert all(key[0] == engine.epoch for key in cache._entries)
        stats = cache.stats
        assert stats.requests() == stats.hits + stats.misses


class TestStaleColumnRegression:
    """Appending must not serve a previously-materialized measure column
    that predates the append (it would be one row short)."""

    def test_query_untouched_edge_after_append(self):
        engine = fresh_engine()
        # Materialize the ("B", "C") measure column via a query.
        before = engine.query(GraphQuery([("B", "C")]))
        assert before.record_ids == ["r1", "r3"]
        # Append a record that does NOT touch ("B", "C").
        engine.append_records([GraphRecord("r4", {("A", "B"): 9.0})])
        after = engine.query(GraphQuery([("B", "C")]))
        assert after.record_ids == ["r1", "r3"]
        assert list(after.measures[("B", "C")]) == [2.0, 5.0]
        # And an edge the append did touch sees the new row.
        ab = engine.query(GraphQuery([("A", "B")]))
        assert ab.record_ids == ["r1", "r2", "r4"]
        assert list(ab.measures[("A", "B")]) == [1.0, 3.0, 9.0]

"""Differential harness: the serving layer must never change an answer.

Every configuration of the concurrent executor — cache on/off, 1 or 4
worker threads, views materialized or dropped — is run over the same
random corpus and workload and compared bit-for-bit against the
:class:`RowStore` reference (the paper's system (i), which shares no code
with the bitmap engine).  The systems differ in speed, never in
semantics; any divergence is a bug in the engine, the rewriter, the
cache, or the executor.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import RowStore
from repro.core import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    PathAggregationQuery,
)
from repro.exec import BitmapCache, QueryExecutor
from repro.resilience import ResiliencePolicy
from repro.workloads import (
    as_aggregate_queries,
    build_dataset,
    sample_dense_queries,
    sample_path_queries,
)

N_RECORDS = 120
AGG_FUNCTIONS = ["sum", "min", "max", "count", "avg"]

CONFIGS = list(
    itertools.product(
        [0, 32],                       # cache budget (MB); 0 = off
        [1, 4],                        # worker threads
        ["materialized", "dropped"],   # view state
    )
)


def _config_id(config):
    cache_mb, jobs, views = config
    return f"cache{cache_mb}-jobs{jobs}-{views}"


@pytest.fixture(scope="module")
def corpus():
    return build_dataset("NY", n_records=N_RECORDS, seed=5)


@pytest.fixture(scope="module")
def records(corpus):
    return list(corpus.to_records())


@pytest.fixture(scope="module")
def workload(corpus):
    """Mixed graph + aggregation workload: skewed path queries (shared
    prefixes exercise the cache), dense queries (wide conjunctions), and
    guaranteed misses (unknown edges must short-circuit to empty)."""
    graph_queries = sample_path_queries(
        corpus, 24, 3, distribution="zipf", seed=2
    )
    graph_queries += sample_dense_queries(corpus, 6, 0.05, seed=3)
    graph_queries += [
        GraphQuery([("no-such", "edge")]),
        GraphQuery(list(graph_queries[0].elements) + [("no-such", "edge")]),
    ]
    agg_queries = [
        PathAggregationQuery(query, function)
        for function, query in zip(
            itertools.cycle(AGG_FUNCTIONS), graph_queries[:15]
        )
    ]
    return graph_queries, agg_queries


@pytest.fixture(scope="module")
def baseline(records, workload):
    """Reference answers, computed once: RowStore shares no evaluation
    code with the engine."""
    graph_queries, agg_queries = workload
    store = RowStore()
    store.load_records(records)
    return (
        [store.query(q) for q in graph_queries],
        [store.aggregate(q) for q in agg_queries],
    )


def _engine_under(config, records, workload):
    """A fresh engine in the given serving configuration."""
    cache_mb, jobs, views = config
    engine = GraphAnalyticsEngine()
    engine.load_records(records)
    graph_queries, _ = workload
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    engine.materialize_aggregate_views(
        as_aggregate_queries(graph_queries[:6]), budget=2
    )
    if views == "dropped":
        engine.drop_all_views()
    cache = BitmapCache(cache_mb << 20) if cache_mb else None
    return engine, QueryExecutor(engine, jobs=jobs, cache=cache)


def assert_graph_result_matches(result, expected, query):
    assert result.record_ids == expected.record_ids, query
    by_row = dict(zip(expected.record_ids, expected.measures))
    for element, values in result.measures.items():
        for record_id, value in zip(result.record_ids, values):
            reference = by_row[record_id].get(element)
            if reference is None:
                # Engine reports absent measures as NaN.
                assert math.isnan(value), (query, element, record_id)
            else:
                assert value == pytest.approx(reference), (query, element)


def assert_aggregation_matches(result, expected, query):
    # Both systems report matches in record insertion order.
    assert result.record_ids == list(expected), query
    for path, values in result.path_values.items():
        for record_id, value in zip(result.record_ids, values):
            reference = expected[record_id].get(path)
            if reference is None:
                assert math.isnan(value) or value == 0.0, (query, path)
            else:
                assert value == pytest.approx(reference, nan_ok=True), (
                    query,
                    path,
                )


@pytest.mark.parametrize("config", CONFIGS, ids=map(_config_id, CONFIGS))
def test_serving_config_matches_rowstore(config, records, workload, baseline):
    graph_queries, agg_queries = workload
    expected_graph, expected_agg = baseline
    engine, executor = _engine_under(config, records, workload)
    with executor:
        # One mixed batch: the executor reorders execution by affinity but
        # must return results aligned with submission order.
        results = executor.run_batch(list(graph_queries) + list(agg_queries))
    graph_results = results[: len(graph_queries)]
    agg_results = results[len(graph_queries):]
    for query, result, expected in zip(
        graph_queries, graph_results, expected_graph
    ):
        assert_graph_result_matches(result, expected, query)
    for query, result, expected in zip(agg_queries, agg_results, expected_agg):
        assert_aggregation_matches(result, expected, query)
    if config[0]:  # cache on: the accounting identity must hold
        stats = engine.stats
        assert stats.cache_hits + stats.cache_misses == (
            stats.conjunctions_requested()
        )


SHARD_CONFIGS = list(
    itertools.product(
        [1, 2, 4],                     # record-range shards
        [0, 16],                       # cache budget (MB); 0 = off
        ["materialized", "dropped"],   # view state
    )
)


def _shard_config_id(config):
    shards, cache_mb, views = config
    return f"shards{shards}-cache{cache_mb}-{views}"


@pytest.mark.parametrize(
    "config", SHARD_CONFIGS, ids=map(_shard_config_id, SHARD_CONFIGS)
)
def test_sharded_serving_matches_rowstore(config, records, workload, baseline):
    """Horizontal sharding must be invisible: every shard count, with and
    without the (shard-keyed) cache and with views live or dropped, returns
    bit-identical answers to the unsharded reference."""
    shards, cache_mb, views = config
    graph_queries, agg_queries = workload
    expected_graph, expected_agg = baseline
    engine = GraphAnalyticsEngine(shards=shards)
    engine.load_records(records)
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    engine.materialize_aggregate_views(
        as_aggregate_queries(graph_queries[:6]), budget=2
    )
    if views == "dropped":
        engine.drop_all_views()
    cache = BitmapCache(cache_mb << 20) if cache_mb else None
    with QueryExecutor(engine, jobs=2, cache=cache) as executor:
        results = executor.run_batch(list(graph_queries) + list(agg_queries))
    for query, result, expected in zip(
        graph_queries, results[: len(graph_queries)], expected_graph
    ):
        assert_graph_result_matches(result, expected, query)
    for query, result, expected in zip(
        agg_queries, results[len(graph_queries):], expected_agg
    ):
        assert_aggregation_matches(result, expected, query)


PROCESS_CONFIGS = list(
    itertools.product(
        [2, 4],                        # record-range shards
        [0, 16],                       # cache budget (MB); 0 = off
    )
)


def _process_config_id(config):
    shards, cache_mb = config
    return f"process-shards{shards}-cache{cache_mb}"


@pytest.mark.parametrize(
    "config", PROCESS_CONFIGS, ids=map(_process_config_id, PROCESS_CONFIGS)
)
def test_process_mode_matches_rowstore(config, records, workload, baseline):
    """Out-of-process shard execution must be invisible: spooled mmap
    storage, pickled plan fragments, and shared-memory result transport
    return bit-identical answers to the unsharded reference, cold and
    through the shard-keyed cache."""
    shards, cache_mb = config
    graph_queries, agg_queries = workload
    expected_graph, expected_agg = baseline
    engine = GraphAnalyticsEngine(shards=shards)
    engine.load_records(records)
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    engine.materialize_aggregate_views(
        as_aggregate_queries(graph_queries[:6]), budget=2
    )
    cache = BitmapCache(cache_mb << 20) if cache_mb else None
    with QueryExecutor(
        engine, jobs=2, cache=cache, exec_mode="process", workers=2
    ) as executor:
        results = executor.run_batch(list(graph_queries) + list(agg_queries))
    for query, result, expected in zip(
        graph_queries, results[: len(graph_queries)], expected_graph
    ):
        assert_graph_result_matches(result, expected, query)
    for query, result, expected in zip(
        agg_queries, results[len(graph_queries):], expected_agg
    ):
        assert_aggregation_matches(result, expected, query)


def test_process_mode_degraded_shard_matches_healthy_oracle(
    tmp_path_factory, records, workload
):
    """``partial_ok`` over a faulted storage shard, process mode: workers
    attach (manifests are intact) but every bitmap load on the faulted
    shard fails, the policy gives up, and the answer is bit-exact on all
    healthy shards with the degraded report covering exactly the faulted
    shard's record range."""
    graph_queries, _ = workload
    engine = GraphAnalyticsEngine(shards=4)
    engine.load_records(records)
    engine.use_resilience(
        ResiliencePolicy(attempts=2, sleep=lambda _s: None)
    )
    db = tmp_path_factory.mktemp("procdb") / "db"
    engine.save(db)
    shard_dir = next(db.glob("gen-*")) / "shard-001"
    removed = [path for path in shard_dir.rglob("*.npy")]
    for path in removed:
        path.unlink()
    assert removed, "expected column payloads under the shard directory"
    starts = engine.relation.shard_starts()
    start, stop = starts[1], starts[2]
    skipped_ids = {records[i].record_id for i in range(start, stop)}
    store = RowStore()
    store.load_records(records)
    with QueryExecutor(
        engine, jobs=2, exec_mode="process", workers=2, storage_dir=db
    ) as executor:
        results = executor.run_batch(
            graph_queries, fetch_measures=False, partial_ok=True
        )
    degraded_seen = 0
    for query, result in zip(graph_queries, results):
        oracle = store.query(query).record_ids
        if result.degraded is not None:
            degraded_seen += 1
            assert result.degraded.skipped_ranges() == [(start, stop)], query
            assert result.record_ids == [
                rid for rid in oracle if rid not in skipped_ids
            ], query
        else:
            # The planner answered without touching the faulted shard
            # (e.g. an unknown element short-circuits to empty).
            assert result.record_ids == oracle, query
    assert degraded_seen > 0


def test_sharded_append_then_serve_matches_fresh_rowstore(records, workload):
    """Epoch-bumping appends against a sharded backend (new records extend
    the last shard; views extend incrementally) keep answers identical to a
    reference loaded from scratch."""
    graph_queries, _ = workload
    half = len(records) // 2
    engine = GraphAnalyticsEngine(shards=4)
    engine.load_records(records[:half])
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    with QueryExecutor(engine, jobs=4, cache_mb=16) as executor:
        executor.run_batch(graph_queries, fetch_measures=False)  # warm
        executor.append_records(records[half:])
        results = executor.run_batch(graph_queries)
    store = RowStore()
    store.load_records(records)
    for query, result in zip(graph_queries, results):
        assert_graph_result_matches(result, store.query(query), query)


def test_append_then_serve_matches_fresh_rowstore(records, workload):
    """Differential across a mutation: answers after an append (with views
    live and the cache warm) must equal a reference loaded from scratch."""
    graph_queries, _ = workload
    half = len(records) // 2
    engine = GraphAnalyticsEngine()
    engine.load_records(records[:half])
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    with QueryExecutor(engine, jobs=4, cache_mb=32) as executor:
        executor.run_batch(graph_queries, fetch_measures=False)  # warm
        executor.append_records(records[half:])
        results = executor.run_batch(graph_queries)
    store = RowStore()
    store.load_records(records)
    for query, result in zip(graph_queries, results):
        assert_graph_result_matches(result, store.query(query), query)


def test_boolean_expressions_match_reference(records):
    """Expressions route through evaluate(); reference is set algebra over
    per-atom RowStore answers."""
    store = RowStore()
    store.load_records(records)
    corpus_edges = sorted(
        {e for r in records for e in r.elements()}, key=repr
    )
    a = GraphQuery(corpus_edges[:2])
    b = GraphQuery(corpus_edges[2:4])
    ids_a = set(store.query(a).record_ids)
    ids_b = set(store.query(b).record_ids)
    engine = GraphAnalyticsEngine()
    engine.load_records(records)
    with QueryExecutor(engine, jobs=2, cache_mb=8) as executor:
        got_and, got_or, got_not = executor.run_batch(
            [a & b, a | b, a - b], fetch_measures=False
        )
    assert set(got_and.record_ids) == ids_a & ids_b
    assert set(got_or.record_ids) == ids_a | ids_b
    assert set(got_not.record_ids) == ids_a - ids_b


@st.composite
def small_collections(draw):
    nodes = "ABCDE"
    edges = st.tuples(st.sampled_from(nodes), st.sampled_from(nodes))
    n_records = draw(st.integers(min_value=1, max_value=6))
    records = []
    for i in range(n_records):
        elements = draw(st.sets(edges, min_size=1, max_size=4))
        records.append(
            GraphRecord(
                f"r{i}", {e: float(j + 1) for j, e in enumerate(sorted(elements))}
            )
        )
    queries = draw(
        st.lists(
            st.sets(edges, min_size=1, max_size=3).map(GraphQuery),
            min_size=1,
            max_size=4,
        )
    )
    return records, queries


class TestPropertyDifferential:
    """Hypothesis-driven: cached concurrent serving equals the containment
    definition on arbitrary small collections."""

    @given(small_collections())
    @settings(max_examples=30, deadline=None)
    def test_cached_executor_matches_containment(self, case):
        records, queries = case
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        with QueryExecutor(engine, jobs=2, cache_mb=4) as executor:
            results = executor.run_batch(queries, fetch_measures=False)
        for query, result in zip(queries, results):
            expected = [r.record_id for r in records if query.matches(r)]
            assert result.record_ids == expected

    @given(small_collections(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_shard_merge_preserves_order_and_measures(self, case, shards):
        """The shard-merge combiner (concatenation in shard order) must
        preserve global record order *and* every measure value for any
        collection and any shard count — including counts exceeding the
        record count, where trailing shards are empty."""
        records, queries = case
        oracle = GraphAnalyticsEngine()
        oracle.load_records(records)
        engine = GraphAnalyticsEngine(shards=shards)
        engine.load_records(records)
        for query in queries:
            expected = oracle.query(query)
            got = engine.query(query)
            assert got.record_ids == expected.record_ids
            assert got.measures.keys() == expected.measures.keys()
            for element, values in expected.measures.items():
                for a, b in zip(values, got.measures[element]):
                    assert (math.isnan(a) and math.isnan(b)) or a == b

    @given(small_collections())
    @settings(max_examples=20, deadline=None)
    def test_cache_changes_nothing(self, case):
        records, queries = case
        plain = GraphAnalyticsEngine()
        plain.load_records(records)
        cached = GraphAnalyticsEngine()
        cached.load_records(records)
        cached.use_bitmap_cache(BitmapCache(4 << 20))
        for query in queries:
            assert (
                cached.query(query, fetch_measures=False).record_ids
                == plain.query(query, fetch_measures=False).record_ids
            )


def test_results_are_epoch_stamped(records):
    engine = GraphAnalyticsEngine()
    engine.load_records(records[:10])
    query = GraphQuery([next(iter(records[0].elements()))])
    first = engine.query(query, fetch_measures=False)
    assert first.epoch == engine.epoch
    engine.append_records(records[10:12])
    second = engine.query(first.query, fetch_measures=False)
    assert second.epoch == engine.epoch > first.epoch


def test_dense_measures_roundtrip(corpus, records):
    """Measure arrays (not just ids) survive the cache: every returned
    value equals the loaded record's measure."""
    by_id = {r.record_id: r.measures() for r in records}
    engine = GraphAnalyticsEngine()
    engine.load_records(records)
    queries = sample_dense_queries(corpus, 4, 0.04, seed=9)
    with QueryExecutor(engine, jobs=1, cache_mb=16) as executor:
        executor.run_batch(queries, fetch_measures=False)  # warm
        results = executor.run_batch(queries)
    for query, result in zip(queries, results):
        for element, values in result.measures.items():
            for record_id, value in zip(result.record_ids, values):
                assert value == by_id[record_id][element], (element, record_id)
    assert engine.stats.cache_hits > 0


class TestMetricsConsistency:
    """The observability layer must agree with both the engine's own
    accounting and the RowStore reference — a counter that drifts from the
    ground truth is as wrong as a bad answer."""

    def test_registry_mirrors_cache_accounting(self, records, workload):
        from repro.obs import MetricsRegistry

        graph_queries, agg_queries = workload
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        registry = MetricsRegistry()
        with QueryExecutor(engine, jobs=4, cache_mb=16, registry=registry) as ex:
            ex.run_batch(
                list(graph_queries) + list(agg_queries), fetch_measures=False
            )
        stats = engine.stats
        hits = registry.get("cache.hits")
        misses = registry.get("cache.misses")
        total = (hits.value if hits else 0) + (misses.value if misses else 0)
        # Every conjunction lookup is exactly one hit or one miss, and the
        # registry, the IOStats mirror, and the cache's own counters must
        # all report the same traffic.
        assert total == stats.conjunctions_requested()
        assert registry.get("io.cache_hits").value == stats.cache_hits
        assert registry.get("io.cache_misses").value == stats.cache_misses
        cache_stats = ex.cache.stats
        assert cache_stats.requests() == stats.conjunctions_requested()
        assert registry.get("exec.queries_served").value == len(
            graph_queries
        ) + len(agg_queries)

    def test_trace_rows_matched_equals_rowstore(self, records, workload):
        from repro.obs import Tracer

        graph_queries, _ = workload
        store = RowStore()
        store.load_records(records)
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        engine.materialize_graph_views(graph_queries[:10], budget=3)
        tracer = Tracer()
        engine.use_tracer(tracer)
        for query in graph_queries:
            engine.query(query, fetch_measures=False)
        traces = tracer.drain()
        assert len(traces) == len(graph_queries)
        for query, trace in zip(graph_queries, traces):
            reference = len(store.query(query).record_ids)
            assert trace.root.counters["rows_matched"] == reference, query
            conjunction = trace.root.find("conjunction")
            assert conjunction is not None
            assert conjunction.counters["rows_matched"] == reference, query

    def test_traced_metered_serving_still_matches_reference(
        self, records, workload, baseline
    ):
        """Full observability on (tracer + registry + cache + threads):
        answers stay bit-identical to the reference."""
        from repro.obs import MetricsRegistry, Tracer

        graph_queries, _ = workload
        expected_graph, _ = baseline
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        engine.materialize_graph_views(graph_queries[:10], budget=3)
        engine.use_tracer(Tracer())
        registry = MetricsRegistry()
        with QueryExecutor(engine, jobs=4, cache_mb=16, registry=registry) as ex:
            results = ex.run_batch(graph_queries)
        for query, result, expected in zip(
            graph_queries, results, expected_graph
        ):
            assert_graph_result_matches(result, expected, query)


def test_nan_semantics_preserved(records):
    """NaN measures stay NaN (not 0) through the serving layer."""
    special = GraphRecord("nan-rec", {("p", "q"): float("nan"), ("q", "r"): 2.0})
    engine = GraphAnalyticsEngine()
    engine.load_records(records + [special])
    with QueryExecutor(engine, cache_mb=4) as executor:
        result = executor.run_one(GraphQuery([("p", "q"), ("q", "r")]))
    assert result.record_ids == ["nan-rec"]
    assert np.isnan(result.measures[("p", "q")][0])
    assert result.measures[("q", "r")][0] == 2.0

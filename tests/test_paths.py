"""Tests for the path algebra: openness, path-join, composite paths."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Path, PathJoinError, enumerate_paths, maximal_paths
from repro.core.paths import source_nodes, terminal_nodes


class TestConstruction:
    def test_closed(self):
        path = Path.closed("A", "D", "E")
        assert path.nodes == ("A", "D", "E")
        assert not path.open_start and not path.open_end
        assert len(path) == 2

    def test_open(self):
        path = Path.open("D", "E", "G")
        assert path.open_start and path.open_end

    def test_half_open(self):
        assert Path.half_open_right("D", "E", "G").open_end
        assert Path.half_open_left("D", "E", "G").open_start

    def test_single_node_normalizes(self):
        path = Path.node("A")
        assert path.nodes == ("A", "A")
        assert path.is_single_node()
        assert len(path) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Path(())

    def test_repeated_nodes_rejected(self):
        with pytest.raises(ValueError):
            Path(("A", "B", "A"))

    def test_repr_notation(self):
        assert repr(Path.closed("A", "B")) == "[A,B]"
        assert repr(Path.open("A", "B")) == "(A,B)"
        assert repr(Path.half_open_right("D", "E", "G")) == "[D,E,G)"

    def test_hash_and_eq(self):
        assert Path.closed("A", "B") == Path.closed("A", "B")
        assert Path.closed("A", "B") != Path.open("A", "B")
        assert hash(Path.closed("A", "B")) == hash(Path.closed("A", "B"))


class TestElements:
    def test_edges(self):
        assert Path.closed("A", "D", "E").edges() == (("A", "D"), ("D", "E"))

    def test_single_node_has_no_edges(self):
        assert Path.node("A").edges() == ()

    def test_included_nodes_closed(self):
        assert Path.closed("A", "D", "E").included_nodes() == ("A", "D", "E")

    def test_included_nodes_open(self):
        assert Path.open("D", "E", "G").included_nodes() == ("E",)

    def test_included_nodes_half_open(self):
        assert Path.half_open_right("D", "E", "G").included_nodes() == ("D", "E")

    def test_elements_with_measured_nodes(self):
        path = Path.closed("A", "D", "E")
        elements = path.elements(measured_nodes={"D"})
        assert elements == (("A", "D"), ("D", "D"), ("D", "E"))

    def test_elements_exclude_open_endpoint(self):
        path = Path.half_open_right("D", "E")
        # D is included, E excluded.
        assert path.elements(measured_nodes={"D", "E"}) == (("D", "D"), ("D", "E"))

    def test_single_node_element(self):
        assert Path.node("A").elements(measured_nodes={"A"}) == (("A", "A"),)
        assert Path.node("A").elements(measured_nodes=set()) == ()

    def test_contains_subpath(self):
        big = Path.closed("A", "C", "E", "F", "G")
        assert big.contains_subpath(Path.closed("E", "F", "G"))
        assert big.contains_subpath(Path.closed("A", "C"))
        assert not big.contains_subpath(Path.closed("A", "E"))
        assert big.contains_subpath(Path.node("F"))


class TestPathJoin:
    def test_paper_example(self):
        # [A,B,F) ⋈ [F,J,K] = [A,B,F,J,K]
        left = Path.half_open_right("A", "B", "F")
        right = Path.closed("F", "J", "K")
        joined = left.join(right)
        assert joined.nodes == ("A", "B", "F", "J", "K")
        assert not joined.open_start and not joined.open_end

    def test_paper_counterexample(self):
        # [A,D,E] does not join with [E,G,I]: E would be counted twice.
        with pytest.raises(PathJoinError):
            Path.closed("A", "D", "E").join(Path.closed("E", "G", "I"))

    def test_no_join_on_mismatched_nodes(self):
        assert not Path.closed("A", "B").can_join(Path.closed("C", "D"))

    def test_both_open_at_common_point_invalid(self):
        # (A,B) ⋈ (B,C): B's measure would be dropped entirely — the result
        # is not representable as a path, so the join is undefined.
        left = Path.half_open_right("A", "B")
        right = Path.half_open_left("B", "C")
        # left open at end XOR right open at start is False (both open).
        assert not left.can_join(right)

    def test_matmul_operator(self):
        joined = Path.half_open_right("A", "B") @ Path.closed("B", "C")
        assert joined.nodes == ("A", "B", "C")

    def test_join_preserves_outer_openness(self):
        left = Path.half_open_left("A", "B")  # open start
        left = Path(left.nodes, open_start=True, open_end=True)
        right = Path.closed("B", "C")
        joined = left.join(right)
        assert joined.open_start and not joined.open_end

    def test_join_rejects_non_simple_result(self):
        left = Path.half_open_right("A", "B", "C")
        right = Path.closed("C", "A")  # would revisit A
        assert not left.can_join(right)

    def test_single_node_join(self):
        # [A,A] ⋈ (A,B] = [A,B] with A's measure counted by the left part.
        node = Path.node("A")
        right = Path.half_open_left("A", "B")
        joined = node.join(right)
        assert joined.nodes == ("A", "B")
        assert not joined.open_start

    def test_join_composites(self):
        lefts = [Path.half_open_right("A", "B"), Path.half_open_right("A", "C")]
        rights = [Path.closed("B", "D"), Path.closed("C", "D")]
        joined = Path.join_composites(lefts, rights)
        assert {p.nodes for p in joined} == {("A", "B", "D"), ("A", "C", "D")}


class TestGraphPathUtilities:
    DIAMOND = [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]

    def test_source_terminal_nodes(self):
        assert source_nodes(self.DIAMOND) == {"A"}
        assert terminal_nodes(self.DIAMOND) == {"D"}

    def test_enumerate_paths_diamond(self):
        paths = enumerate_paths(self.DIAMOND, ["A"], ["D"])
        assert {p.nodes for p in paths} == {("A", "B", "D"), ("A", "C", "D")}

    def test_enumerate_paths_single_node_when_source_is_target(self):
        paths = enumerate_paths([("A", "B")], ["A"], ["A", "B"])
        node_paths = [p for p in paths if p.is_single_node()]
        assert len(node_paths) == 1 and node_paths[0].start == "A"

    def test_enumerate_paths_max_length(self):
        chain = [("A", "B"), ("B", "C"), ("C", "D")]
        paths = enumerate_paths(chain, ["A"], ["D"], max_length=2)
        assert paths == []
        paths = enumerate_paths(chain, ["A"], ["D"], max_length=3)
        assert len(paths) == 1

    def test_enumerate_paths_openness_flags(self):
        paths = enumerate_paths([("A", "B")], ["A"], ["B"], open_start=True)
        assert paths[0].open_start

    def test_maximal_paths_chain(self):
        chain = [("A", "B"), ("B", "C")]
        paths = maximal_paths(chain)
        assert [p.nodes for p in paths] == [("A", "B", "C")]

    def test_maximal_paths_diamond(self):
        paths = maximal_paths(self.DIAMOND)
        assert {p.nodes for p in paths} == {("A", "B", "D"), ("A", "C", "D")}

    def test_maximal_paths_drop_contained(self):
        # A->B->C plus a stub B->D: maximal paths are A,B,C and A,B,D.
        edges = [("A", "B"), ("B", "C"), ("B", "D")]
        paths = maximal_paths(edges)
        assert {p.nodes for p in paths} == {("A", "B", "C"), ("A", "B", "D")}

    def test_maximal_paths_pure_nodes(self):
        paths = maximal_paths([("A", "A"), ("B", "B")])
        assert {p.start for p in paths} == {"A", "B"}
        assert all(p.is_single_node() for p in paths)

    def test_maximal_paths_cycle_fallback(self):
        # A pure cycle has no sources/terminals; decomposition still works.
        cycle = [("A", "B"), ("B", "A")]
        paths = maximal_paths(cycle)
        assert paths  # non-empty cover

    @given(st.lists(st.sampled_from("ABCDEFG"), min_size=2, max_size=7, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_chain_has_single_maximal_path(self, nodes):
        edges = list(zip(nodes, nodes[1:]))
        paths = maximal_paths(edges)
        assert len(paths) == 1
        assert paths[0].nodes == tuple(nodes)

    @given(st.lists(st.sampled_from("ABCDEF"), min_size=3, max_size=6, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_path_join_reassembles_split_chain(self, nodes):
        """Splitting a chain anywhere and path-joining reproduces it."""
        for cut in range(1, len(nodes) - 1):
            left = Path(tuple(nodes[: cut + 1]), open_end=True)
            right = Path(tuple(nodes[cut:]))
            joined = left.join(right)
            assert joined.nodes == tuple(nodes)

"""Drift differential oracle: adaptive view maintenance must never
change an answer.

A zipf workload whose hot set shifts mid-stream is driven through an
executor with a *live* background maintainer — views are being staged,
committed, and dropped while the stream runs — and every answer is held
bit-identical (record ids, measure vectors with NaN sentinels, aggregate
path values) to an unmaintained oracle engine that never materializes
anything.  The stream must cross at least one view-swap epoch in both
thread and process execution modes.

``TestAdaptiveStress`` drives the swap path itself under contention:
background materialize/drop batches racing reader batches and writer
appends through :class:`QueryExecutor`, with the replay invariant from
the executor stress suite — every observed answer must be reproducible
from the records visible at its (quiescent) epoch, no stale cache hits,
no half-committed swap observable.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    QueryExecutor,
    ViewMaintainer,
    WorkloadWindow,
)
from repro.workloads import as_aggregate_queries, build_dataset, sample_path_queries

N_RECORDS = 150


@pytest.fixture(scope="module")
def corpus():
    return build_dataset("NY", n_records=N_RECORDS, seed=5)


@pytest.fixture(scope="module")
def records(corpus):
    return list(corpus.to_records())


@pytest.fixture(scope="module")
def drift_workload(corpus):
    """Two zipf phases drawn from independently shuffled pools: the hot
    paths of phase B are (with overwhelming probability) not the hot
    paths of phase A — a mid-stream hot-set shift."""
    phase_a = sample_path_queries(corpus, 60, 3, distribution="zipf", seed=11)
    phase_b = sample_path_queries(corpus, 60, 3, distribution="zipf", seed=77)
    return phase_a, phase_b


@pytest.fixture(scope="module")
def oracle(records, drift_workload):
    """Reference answers from an engine that never materializes a view,
    caches a bitmap, or observes the workload."""
    engine = GraphAnalyticsEngine()
    engine.load_records(records)
    answers = {}
    for query in {q for phase in drift_workload for q in phase}:
        answers[query] = engine.query(query)
        answers[as_aggregate_queries([query], "sum")[0]] = engine.aggregate(
            as_aggregate_queries([query], "sum")[0]
        )
    return answers


def assert_bit_identical(result, expected, query):
    assert result.record_ids == expected.record_ids, query
    got = getattr(result, "measures", None) or result.path_values
    want = getattr(expected, "measures", None) or expected.path_values
    assert set(got) == set(want), query
    for key in want:
        assert np.array_equal(
            np.asarray(got[key]), np.asarray(want[key]), equal_nan=True
        ), (query, key)


MODES = [
    pytest.param({"shards": 3, "jobs": 2}, id="thread"),
    pytest.param(
        {"shards": 2, "jobs": 2, "exec_mode": "process", "workers": 2},
        id="process",
    ),
]


@pytest.mark.parametrize("mode", MODES)
def test_drift_stream_matches_unmaintained_oracle(
    mode, records, drift_workload, oracle
):
    mode = dict(mode)
    engine = GraphAnalyticsEngine(shards=mode.pop("shards"))
    engine.load_records(records)
    executor = QueryExecutor(engine, cache_mb=8, **mode)
    maintainer = ViewMaintainer(
        executor,
        window=WorkloadWindow(64),
        budget=4,
        min_support=2,
        min_window=8,
        interval_s=0.05,
        grace_refreshes=0,
    )
    phase_a, phase_b = drift_workload
    epochs_seen = set()
    try:
        maintainer.start()
        for phase in (phase_a, phase_b):
            for i, query in enumerate(phase):
                result = executor.run_one(query)
                epochs_seen.add(result.epoch)
                assert_bit_identical(result, oracle[query], query)
                if i % 5 == 0:
                    agg = as_aggregate_queries([query], "sum")[0]
                    agg_result = executor.run_one(agg)
                    epochs_seen.add(agg_result.epoch)
                    assert_bit_identical(agg_result, oracle[agg], agg)
            # Force a deterministic refresh at the phase edge so the swap
            # is guaranteed even on a slow machine: the background loop
            # races the stream, this pins the drift response.
            maintainer.refresh()
        # One more sweep over phase B entirely behind the post-drift views.
        for query in phase_b[:20]:
            result = executor.run_one(query)
            epochs_seen.add(result.epoch)
            assert_bit_identical(result, oracle[query], query)
    finally:
        maintainer.stop()
        executor.close()
    assert maintainer.last_error is None
    assert maintainer.views_added >= 1, "maintainer never materialized a view"
    assert len(epochs_seen) >= 2, "stream never crossed a view-swap epoch"
    # The drift was actually acted on: something decayed or was replaced.
    assert maintainer.refreshes >= 2


def test_forced_swap_every_epoch_matches_oracle(records, drift_workload, oracle):
    """Tighter variant: a refresh after *every* few queries, so answers
    are checked across many distinct swap epochs, not just the phase edge."""
    phase_a, phase_b = drift_workload
    engine = GraphAnalyticsEngine(shards=2)
    engine.load_records(records)
    with QueryExecutor(engine, jobs=2, cache_mb=4) as executor:
        maintainer = ViewMaintainer(
            executor,
            window=WorkloadWindow(32),
            budget=3,
            min_support=2,
            min_window=6,
            grace_refreshes=0,
        )
        epochs = set()
        for i, query in enumerate(phase_a[:30] + phase_b[:30]):
            result = executor.run_one(query)
            epochs.add(result.epoch)
            assert_bit_identical(result, oracle[query], query)
            if i % 6 == 5:
                maintainer.refresh()
        assert maintainer.views_added >= 1
        assert len(epochs) >= 3


class TestAdaptiveStress:
    """Background materialize/drop batches race reader batches and writer
    appends.  Invariants: no exceptions, every observed answer replays
    bit-for-bit from the records visible at its quiescent epoch (views
    never change answers), and no stale cache entry survives."""

    def test_swaps_race_readers_and_appends(self):
        base = [
            GraphRecord(
                f"b{i}", {("A", "B"): float(i), ("B", "C"): 1.0, ("C", "D"): 2.0}
            )
            for i in range(12)
        ]
        extra_batches = [
            [
                GraphRecord(
                    f"x{batch}-{i}",
                    {("A", "B"): 1.0, ("C", "D"): float(batch), ("D", "E"): 1.0},
                )
                for i in range(4)
            ]
            for batch in range(6)
        ]
        queries = [
            GraphQuery([("A", "B"), ("B", "C")]),
            GraphQuery([("A", "B"), ("C", "D")]),
            GraphQuery([("C", "D"), ("D", "E")]),
            GraphQuery([("no", "where")]),
        ]
        swap_sets = [
            frozenset([("A", "B"), ("B", "C")]),
            frozenset([("A", "B"), ("C", "D")]),
            frozenset([("C", "D"), ("D", "E")]),
        ]

        engine = GraphAnalyticsEngine(shards=3)
        executor = QueryExecutor(engine, jobs=4, cache_mb=8)
        engine.load_records(base)
        # Epoch -> records visible at that quiescent epoch.  ``book``
        # serializes mutator+bookkeeping so the mapping is never torn;
        # staging deliberately happens OUTSIDE it to race the appender.
        book = threading.Lock()
        visible = {engine.epoch: len(base)}
        observations = []
        errors = []
        swaps_done = []
        start = threading.Barrier(6, timeout=10)
        stop = threading.Event()

        def reader(seed):
            try:
                start.wait()
                i = 0
                while not stop.is_set() or i < 20:
                    query = queries[(seed + i) % len(queries)]
                    result = executor.run_one(query, fetch_measures=False)
                    observations.append((query, result.epoch, result.record_ids))
                    i += 1
                    if i > 3000:  # safety valve
                        break
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def appender():
            try:
                start.wait()
                n = len(base)
                for batch in extra_batches:
                    with book:
                        executor.append_records(batch)
                        n += len(batch)
                        visible[engine.epoch] = n
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def swapper():
            try:
                start.wait()
                current = None
                for round_no in range(12):
                    if stop.is_set() and round_no >= 6:
                        break
                    elements = swap_sets[round_no % len(swap_sets)]
                    # Stage off-epoch, racing appends.
                    staged = executor.stage_view(elements)
                    drops = [current] if current else []
                    with book:
                        swap = executor.commit_view_swap(
                            adds=[(None, *staged)], drops=drops
                        )
                        visible[swap["epoch"]] = swap["n_records"]
                    current = swap["added"][0]
                    swaps_done.append(swap)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(s,)) for s in range(4)]
        threads.append(threading.Thread(target=appender))
        threads.append(threading.Thread(target=swapper))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        executor.close()

        assert not errors, errors
        assert not any(t.is_alive() for t in threads), "thread failed to join"
        assert len(swaps_done) >= 6, "swapper starved"
        assert len(visible) > len(extra_batches), "mutators never advanced"

        # Replay: answers depend only on the rows visible at the observed
        # epoch — a view swap must be answer-invariant, and a torn or
        # half-committed swap would surface as an unknown epoch here.
        all_records = base + [r for batch in extra_batches for r in batch]
        replayed = {}
        for query, epoch, record_ids in observations:
            assert epoch in visible, f"observed mid-mutation epoch {epoch}"
            key = (epoch, query)
            if key not in replayed:
                n = visible[epoch]
                replayed[key] = [
                    r.record_id for r in all_records[:n] if query.matches(r)
                ]
            assert record_ids == replayed[key], (epoch, query)

        # Proactive invalidation: only current-epoch cache entries remain.
        cache = executor.cache
        assert all(key[0] == engine.epoch for key in cache._entries)
        stats = cache.stats
        assert stats.requests() == stats.hits + stats.misses

    def test_maintainer_thread_races_readers_and_appends(self):
        """Same invariant with the real maintainer loop as the swapper:
        the background thread decides adds/drops from the live window."""
        base = [
            GraphRecord(f"b{i}", {("A", "B"): float(i), ("B", "C"): 1.0})
            for i in range(10)
        ]
        extra = [
            [
                GraphRecord(f"x{b}-{i}", {("A", "B"): 1.0, ("B", "C"): 2.0})
                for i in range(4)
            ]
            for b in range(4)
        ]
        queries = [
            GraphQuery([("A", "B"), ("B", "C")]),
            GraphQuery([("A", "B")]),
        ]
        engine = GraphAnalyticsEngine(shards=2)
        engine.load_records(base)
        executor = QueryExecutor(engine, jobs=3, cache_mb=4)
        maintainer = ViewMaintainer(
            executor, budget=2, min_window=4, interval_s=0.01, grace_refreshes=0
        )
        observations = []
        errors = []
        stop = threading.Event()

        def reader(seed):
            try:
                i = 0
                while not stop.is_set() or i < 10:
                    query = queries[(seed + i) % len(queries)]
                    result = executor.run_one(query, fetch_measures=False)
                    observations.append((query, result.epoch, result.record_ids))
                    i += 1
                    if i > 2000:
                        break
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        maintainer.start()
        threads = [threading.Thread(target=reader, args=(s,)) for s in range(3)]
        for t in threads:
            t.start()
        try:
            counts = [len(base)]
            for batch in extra:
                executor.append_records(batch)
                counts.append(counts[-1] + len(batch))
            # Keep the readers and the maintainer loop racing until at
            # least one background refresh has landed.
            deadline = time.time() + 10.0
            while maintainer.refreshes == 0 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=60)
            maintainer.stop()
            executor.close()

        assert not errors, errors
        assert maintainer.last_error is None
        assert maintainer.refreshes >= 1
        # Record counts move through the known append points only; the
        # answer for a query is fully determined by its row count, so
        # check every observation against the replay at each count.
        all_records = base + [r for batch in extra for r in batch]
        valid = {
            (query, n): [
                r.record_id for r in all_records[:n] if query.matches(r)
            ]
            for query in queries
            for n in counts
        }
        for query, epoch, record_ids in observations:
            assert any(
                record_ids == valid[(query, n)] for n in counts
            ), (query, epoch, record_ids)
        assert all(key[0] == engine.epoch for key in executor.cache._entries)

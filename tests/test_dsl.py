"""Tests for the query DSL parser."""

from __future__ import annotations

import pytest

from repro.core import And, AndNot, GraphQuery, Or
from repro.dsl import QuerySyntaxError, parse_aggregation, parse_query


class TestChains:
    def test_simple_chain(self):
        q = parse_query("A -> D -> E")
        assert q == GraphQuery.from_node_chain("A", "D", "E")

    def test_whitespace_insensitive(self):
        assert parse_query("A->D->E") == parse_query("  A  ->  D  ->  E ")

    def test_numeric_and_dashed_names(self):
        q = parse_query("hub-1 -> hub_2 -> 42")
        assert ("hub-1", "hub_2") in q.elements

    def test_quoted_names(self):
        q = parse_query("'New York' -> 'Los Angeles'")
        assert q.elements == {("New York", "Los Angeles")}

    def test_single_node_rejected_with_hint(self):
        with pytest.raises(QuerySyntaxError, match=r"\{\(X,X\)\}"):
            parse_query("A")


class TestElementSets:
    def test_explicit_elements(self):
        q = parse_query("{(C,H), (F,J), (J,K)}")
        assert q == GraphQuery([("C", "H"), ("F", "J"), ("J", "K")])

    def test_self_pair_is_node_measure(self):
        q = parse_query("{(D,D)}")
        assert q.measured_nodes() == {"D"}

    def test_missing_brace(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("{(A,B)")

    def test_malformed_pair(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("{(A B)}")


class TestBooleans:
    def test_and(self):
        expr = parse_query("A->B AND C->D")
        assert isinstance(expr, And)
        assert expr.left == GraphQuery([("A", "B")])

    def test_or(self):
        assert isinstance(parse_query("A->B OR C->D"), Or)

    def test_and_not(self):
        expr = parse_query("A->B AND NOT C->D")
        assert isinstance(expr, AndNot)

    def test_keywords_case_insensitive(self):
        assert isinstance(parse_query("A->B and not C->D"), AndNot)

    def test_precedence_and_binds_tighter(self):
        expr = parse_query("A->B OR C->D AND E->F")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_grouping(self):
        expr = parse_query("(A->B OR C->D) AND NOT {(E,F)}")
        assert isinstance(expr, AndNot)
        assert isinstance(expr.left, Or)

    def test_chained_booleans(self):
        expr = parse_query("A->B AND C->D AND E->F")
        assert isinstance(expr, And)
        assert isinstance(expr.left, And)


class TestAggregations:
    def test_sum_chain(self):
        agg = parse_aggregation("SUM A -> C -> E -> F")
        assert agg.function == "sum"
        assert agg.query == GraphQuery.from_node_chain("A", "C", "E", "F")

    def test_all_builtin_functions(self):
        for fn in ("SUM", "MIN", "MAX", "COUNT", "AVG", "sum", "Avg"):
            agg = parse_aggregation(f"{fn} A -> B")
            assert agg.function == fn.lower()

    def test_elements_aggregation(self):
        agg = parse_aggregation("MAX {(A,B), (B,C)}")
        assert agg.function == "max"

    def test_missing_function(self):
        with pytest.raises(QuerySyntaxError, match="function name"):
            parse_aggregation("A -> B")

    def test_boolean_aggregation_rejected(self):
        with pytest.raises(QuerySyntaxError, match="single graph query"):
            parse_aggregation("SUM A->B OR C->D")


class TestErrors:
    def test_empty(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("")

    def test_garbage_character(self):
        with pytest.raises(QuerySyntaxError, match="unexpected character"):
            parse_query("A -> B; DROP TABLE")

    def test_trailing_tokens(self):
        with pytest.raises(QuerySyntaxError, match="unexpected"):
            parse_query("A->B C->D")

    def test_dangling_arrow(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("A ->")

    def test_unbalanced_paren(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("(A->B")


class TestEndToEnd:
    def test_parsed_queries_run(self, figure2_engine):
        result = figure2_engine.query(parse_query("A -> D -> E"))
        assert result.record_ids == ["r1", "r2", "r3"]
        result = figure2_engine.query(parse_query("{(E,F)} AND NOT {(A,B)}"))
        assert result.record_ids == ["r2", "r3"]

    def test_parsed_aggregation_runs(self, figure2_engine):
        result = figure2_engine.aggregate(parse_aggregation("SUM A -> C -> E -> F"))
        assert result.record_ids == ["r2"]
        values = next(iter(result.path_values.values()))
        assert values.tolist() == [7.0]

"""Shared fixtures.

``figure2_records`` reconstructs the paper's running example (Figure 2 /
Table 1).  Edge-id mapping, recovered from the figure and the Section
5.1.3 / 5.4 worked examples:

    e1=(A,B)  e2=(A,C)  e3=(C,E)  e4=(A,D)  e5=(D,E)  e6=(E,F)  e7=(F,G)

    record 1: m1=3, m2=4, m3=2, m4=1, m5=2
    record 2:       m2=1, m3=2, m4=2, m5=1, m6=4, m7=1
    record 3:                   m4=5, m5=4, m6=3, m7=1

Cross-checks against the paper: the graph view bv1 over {e1..e4} marks
only r1 (Table 1); the aggregate view mp1 = m6 + m7 stores 5 for r2 and 4
for r3 (Section 5.1.3); treating the three records as queries yields
interesting nodes {A, B, E, G} and exactly 5 candidate aggregate paths
(Section 5.4).
"""

from __future__ import annotations

import pytest

from repro.core import GraphAnalyticsEngine, GraphQuery, GraphRecord


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files (tests/goldens/) instead of "
             "comparing against them",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    return request.config.getoption("--update-goldens")

FIGURE2_EDGES = {
    1: ("A", "B"),
    2: ("A", "C"),
    3: ("C", "E"),
    4: ("A", "D"),
    5: ("D", "E"),
    6: ("E", "F"),
    7: ("F", "G"),
}

FIGURE2_MEASURES = {
    "r1": {1: 3.0, 2: 4.0, 3: 2.0, 4: 1.0, 5: 2.0},
    "r2": {2: 1.0, 3: 2.0, 4: 2.0, 5: 1.0, 6: 4.0, 7: 1.0},
    "r3": {4: 5.0, 5: 4.0, 6: 3.0, 7: 1.0},
}


def _figure2_records() -> list[GraphRecord]:
    out = []
    for rid, cells in FIGURE2_MEASURES.items():
        measures = {FIGURE2_EDGES[i]: v for i, v in sorted(cells.items())}
        out.append(GraphRecord(rid, measures))
    return out


@pytest.fixture
def figure2_records() -> list[GraphRecord]:
    return _figure2_records()


@pytest.fixture
def figure2_engine(figure2_records) -> GraphAnalyticsEngine:
    engine = GraphAnalyticsEngine()
    engine.load_records(figure2_records)
    return engine


@pytest.fixture
def figure2_queries(figure2_records) -> list[GraphQuery]:
    """The three record graphs reinterpreted as query graphs (§5.4)."""
    return [GraphQuery.from_record(r) for r in _figure2_records()]


@pytest.fixture(scope="session")
def small_corpus():
    """A small random-walk corpus shared by integration tests."""
    from repro.workloads import build_dataset

    return build_dataset("NY", n_records=300, seed=42)


@pytest.fixture(scope="session")
def small_engine(small_corpus):
    engine = GraphAnalyticsEngine()
    engine.load_columnar(small_corpus.record_ids(), small_corpus.to_columnar())
    return engine

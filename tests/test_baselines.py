"""Tests for the three comparison systems, including cross-system
equivalence with the column-store engine (all four must agree)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NativeGraphStore, RdfTripleStore, RowStore
from repro.core import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    Path,
    PathAggregationQuery,
)

RECORDS = [
    GraphRecord("r1", {("A", "B"): 1.0, ("B", "C"): 2.0, ("C", "D"): 3.0}),
    GraphRecord("r2", {("A", "B"): 4.0, ("B", "C"): 5.0}),
    GraphRecord("r3", {("B", "C"): 6.0, ("C", "D"): 7.0, ("D", "E"): 8.0}),
    GraphRecord("r4", {("X", "Y"): 9.0}),
]

ALL_STORES = [RowStore, NativeGraphStore, RdfTripleStore]


def loaded(cls):
    store = cls()
    store.load_records(RECORDS)
    return store


@pytest.mark.parametrize("cls", ALL_STORES)
class TestCommonBehaviour:
    def test_load_count(self, cls):
        store = cls()
        assert store.load_records(RECORDS) == 4

    def test_simple_query(self, cls):
        result = loaded(cls).query(GraphQuery([("A", "B")]))
        assert sorted(result.record_ids) == ["r1", "r2"]

    def test_multi_edge_query(self, cls):
        result = loaded(cls).query(GraphQuery.from_node_chain("B", "C", "D"))
        assert sorted(result.record_ids) == ["r1", "r3"]

    def test_no_match(self, cls):
        result = loaded(cls).query(GraphQuery([("E", "A")]))
        assert result.record_ids == []

    def test_unknown_edge(self, cls):
        result = loaded(cls).query(GraphQuery([("ZZ", "QQ")]))
        assert result.record_ids == []

    def test_measures_returned(self, cls):
        result = loaded(cls).query(GraphQuery([("A", "B")]))
        by_id = dict(zip(result.record_ids, result.measures))
        assert by_id["r1"][("A", "B")] == 1.0
        assert by_id["r2"][("A", "B")] == 4.0

    def test_aggregate_sum(self, cls):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        out = loaded(cls).aggregate(q)
        assert set(out) == {"r1", "r2"}
        assert out["r1"][Path.closed("A", "B", "C")] == 3.0
        assert out["r2"][Path.closed("A", "B", "C")] == 9.0

    def test_aggregate_max(self, cls):
        q = PathAggregationQuery(GraphQuery.from_node_chain("B", "C", "D"), "max")
        out = loaded(cls).aggregate(q)
        assert out["r3"][Path.closed("B", "C", "D")] == 7.0

    def test_disk_size_positive(self, cls):
        assert loaded(cls).disk_size_bytes() > 0

    def test_disk_size_grows_with_data(self, cls):
        small = cls()
        small.load_records(RECORDS[:1])
        big = cls()
        big.load_records(RECORDS)
        assert big.disk_size_bytes() > small.disk_size_bytes()

    def test_result_len(self, cls):
        result = loaded(cls).query(GraphQuery([("B", "C")]))
        assert len(result) == 3
        assert result.n_measure_values() == 3


class TestStoreSpecifics:
    def test_neo4j_largest_footprint(self):
        """Figure 4: the native graph store needs the most disk space."""
        stores = [loaded(cls) for cls in ALL_STORES]
        sizes = {s.name: s.disk_size_bytes() for s in stores}
        assert sizes["graph-db"] == max(sizes.values())

    def test_graphdb_candidate_index(self):
        store = loaded(NativeGraphStore)
        # Least-frequent node of (X, Y) has a single posting.
        assert store._candidates(GraphQuery([("X", "Y")])) == [3]

    def test_rowstore_row_count(self):
        store = loaded(RowStore)
        assert store._n_rows == sum(len(r) for r in RECORDS)

    def test_rdf_triple_count(self):
        store = loaded(RdfTripleStore)
        assert store._n_triples == 3 * sum(len(r) for r in RECORDS)


@st.composite
def random_collections(draw):
    """A small random record collection plus a query drawn from it."""
    nodes = "ABCDEF"
    n_records = draw(st.integers(min_value=1, max_value=8))
    records = []
    for i in range(n_records):
        size = draw(st.integers(min_value=1, max_value=5))
        elements = draw(
            st.sets(
                st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
                min_size=size,
                max_size=size,
            )
        )
        measures = {e: float(j + 1) for j, e in enumerate(sorted(elements))}
        records.append(GraphRecord(f"r{i}", measures))
    query_size = draw(st.integers(min_value=1, max_value=3))
    query_elements = draw(
        st.sets(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            min_size=query_size,
            max_size=query_size,
        )
    )
    return records, GraphQuery(query_elements)


class TestCrossSystemEquivalence:
    """All four systems must return identical answer sets — the paper's
    systems differ in speed, never in semantics."""

    @given(random_collections())
    @settings(max_examples=40, deadline=None)
    def test_same_answers_everywhere(self, case):
        records, query = case
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        expected = sorted(engine.query(query).record_ids)
        for cls in ALL_STORES:
            store = cls()
            store.load_records(records)
            assert sorted(store.query(query).record_ids) == expected, cls.name

    @given(random_collections())
    @settings(max_examples=25, deadline=None)
    def test_reference_containment(self, case):
        records, query = case
        expected = sorted(r.record_id for r in records if query.matches(r))
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        assert sorted(engine.query(query).record_ids) == expected

    def test_aggregation_agrees_with_engine(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(RECORDS)
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        engine_result = engine.aggregate(q)
        engine_values = dict(
            zip(
                engine_result.record_ids,
                engine_result.path_values[Path.closed("A", "B", "C")].tolist(),
            )
        )
        for cls in ALL_STORES:
            store = cls()
            store.load_records(RECORDS)
            out = store.aggregate(q)
            store_values = {
                rid: paths[Path.closed("A", "B", "C")] for rid, paths in out.items()
            }
            assert store_values == pytest.approx(engine_values), cls.name

"""Golden round-trip tests for the query language (paper queries).

Pins, for a corpus of Figure 2 / paper-style queries:

* the canonical text of each query (``tests/goldens/lang_canonical.txt``)
  — the spelling EXPLAIN prints and ``repro fmt`` writes;
* the round-trip law ``parse(unparse(q)) == q``;
* EXPLAIN round-trips: the ``query:`` line of the text rendering (and
  the ``query_text`` key of the JSON rendering, and the ``"query"``
  field of the ``/explain`` HTTP response) re-parses to a query whose
  physical plan is identical to the original's.
"""

from __future__ import annotations

import json

import pytest

from repro.core import GraphAnalyticsEngine, GraphQuery
from repro.lang import canonical, parse_statement, unparse
from repro.obs import explain, explain_dict

from .test_explain import check_golden

# The paper's running example (Figure 2) and the constructs its algebra
# adds on top: open/half-open paths, measured markers, composite steps,
# path joins, element sets, and boolean combinations.
PAPER_QUERIES = [
    # Figure 2 / Q1-style path queries
    "A -> D -> E",
    "E -> F -> G",
    "A -> D -> E -> F",
    "A -> D -> E -> F -> G",
    # element sets (Q2-style legs) and node measures
    "{(C,H), (F,J), (J,K)}",
    "{(D,D)}",
    # measured markers and endpoint openness (Section 3.3 brackets)
    "A -> D! -> E",
    "A! -> D -> E!",
    "-> A -> D -> E ->",
    "A -> D! -> E ->",
    # composite paths and the path-join operator
    "[A, C] -> E",
    "A -> B -> F -> JOIN F! -> J -> K",
    # booleans over answer sets
    "A->B AND C->D",
    "A->B OR C->D AND NOT {(E,F)}",
    "(A->B OR C->D) AND NOT {(E,F)}",
    # aggregations (Section 3.4)
    "SUM A -> C -> E -> F",
    "avg {(A,B), (B,C)}",
    "MAX A -> D! -> E",
    # quoting
    "'New York' -> 'Los Angeles'",
    "hub-1 -> hub_2 -> 42",
]


class TestPaperQueryGoldens:
    def test_canonical_text_is_stable(self, update_goldens):
        lines = [f"{text}\n  => {canonical(text)}" for text in PAPER_QUERIES]
        check_golden("lang_canonical.txt", "\n".join(lines), update_goldens)

    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_roundtrip_law(self, text):
        query = parse_statement(text)
        assert parse_statement(unparse(query)) == query

    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_canonical_is_idempotent(self, text):
        once = canonical(text)
        assert canonical(once) == once
        assert parse_statement(once) == parse_statement(text)


EXPLAIN_QUERIES = [
    "A -> D -> E",
    "SUM E -> F -> G",
    "A -> D! -> E",
]


class TestExplainRoundtrip:
    def test_text_query_line_reparses_to_same_plan(self, figure2_engine):
        for text in EXPLAIN_QUERIES:
            query = parse_statement(text)
            rendered = explain(figure2_engine, query, fmt="text")
            first = rendered.splitlines()[0]
            assert first.startswith("query: ")
            reparsed = parse_statement(first[len("query: "):])
            assert reparsed == query
            assert explain_dict(figure2_engine, reparsed) == explain_dict(
                figure2_engine, query
            )

    def test_json_query_text_reparses_to_same_plan(self, figure2_engine):
        for text in EXPLAIN_QUERIES:
            query = parse_statement(text)
            doc = json.loads(explain(figure2_engine, query, fmt="json"))
            reparsed = parse_statement(doc["query_text"])
            assert reparsed == query
            plain = dict(doc)
            del plain["query_text"]
            assert plain == explain_dict(figure2_engine, query)

    def test_non_text_labels_render_without_query_line(self):
        engine = GraphAnalyticsEngine()
        from repro.core import GraphRecord

        engine.load_records([GraphRecord("r1", {(1, 2): 1.0})])
        rendered = explain(engine, GraphQuery([(1, 2)]), fmt="text")
        assert not rendered.startswith("query: ")
        doc = json.loads(explain(engine, GraphQuery([(1, 2)]), fmt="json"))
        assert "query_text" not in doc


class TestExplainEndpointRoundtrip:
    def test_explain_response_carries_canonical_query(self, figure2_engine):
        from repro.exec import QueryExecutor
        from repro.serve import ServeClient, start_in_thread

        executor = QueryExecutor(figure2_engine, jobs=1)
        handle = start_in_thread(executor)
        try:
            with ServeClient(*handle.address) as client:
                for text in EXPLAIN_QUERIES:
                    doc = client.explain({"q": text})
                    assert doc["query"] == canonical(text)
                    reparsed = parse_statement(doc["query"])
                    assert reparsed == parse_statement(text)
                    # and the canonical text is itself servable
                    again = client.explain({"q": doc["query"]})
                    assert again["explain"] == doc["explain"]
        finally:
            handle.stop()
            executor.close()

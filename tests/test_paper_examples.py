"""Exact reproduction of the paper's worked examples.

* Table 1: master-relation content for the three Figure 2 records —
  measures, bitmaps, the graph view bv1 over {e1..e4} and the aggregate
  view (mp1, bp1) for path p1 = [e6, e7] with SUM.
* Section 2's SCM queries Q1/Q2 in miniature.
* Section 3.4's path-aggregation example: SUM over (A,C,E,F) retrieves
  record 2 with value 7.
"""

from __future__ import annotations

import numpy as np

from repro.core import GraphQuery, Path, PathAggregationQuery

from .conftest import FIGURE2_EDGES, FIGURE2_MEASURES


class TestTable1:
    def test_bitmap_columns(self, figure2_engine):
        # b1..b7 per Table 1, rows r1, r2, r3.
        expected = {
            1: [1, 0, 0],
            2: [1, 1, 0],
            3: [1, 1, 0],
            4: [1, 1, 1],
            5: [1, 1, 1],
            6: [0, 1, 1],
            7: [0, 1, 1],
        }
        for paper_id, bits in expected.items():
            edge = FIGURE2_EDGES[paper_id]
            edge_id = figure2_engine.catalog.id_of(edge)
            bitmap = figure2_engine.relation.bitmap(edge_id)
            assert bitmap.to_bools().astype(int).tolist() == bits, paper_id

    def test_measure_columns(self, figure2_engine):
        for paper_id, edge in FIGURE2_EDGES.items():
            edge_id = figure2_engine.catalog.id_of(edge)
            values = figure2_engine.relation.measures(edge_id)
            for row, rid in enumerate(["r1", "r2", "r3"]):
                expected = FIGURE2_MEASURES[rid].get(paper_id)
                if expected is None:
                    assert np.isnan(values[row])
                else:
                    assert values[row] == expected

    def test_graph_view_bv1(self, figure2_engine):
        # bv1 = AND(b1..b4): only r1 contains e1..e4.
        elements = [FIGURE2_EDGES[i] for i in (1, 2, 3, 4)]
        name = figure2_engine.add_graph_view(elements)
        bitmap = figure2_engine.relation.view_bitmap(name)
        assert bitmap.to_bools().astype(int).tolist() == [1, 0, 0]

    def test_aggregate_view_mp1_bp1(self, figure2_engine):
        # p1 = [e6, e7] = path E->F->G with SUM: mp1 = (NULL, 5, 4),
        # bp1 = (0, 1, 1) per Table 1 / Section 5.1.3.
        workload = [
            PathAggregationQuery(GraphQuery.from_node_chain("E", "F", "G"), "sum")
        ]
        report = figure2_engine.materialize_aggregate_views(workload, budget=1)
        assert len(report.selected) == 1
        name = report.selected[0]
        column = f"{name}:sum"
        bp = figure2_engine.relation.aggregate_view_bitmap(column)
        assert bp.to_bools().astype(int).tolist() == [0, 1, 1]
        mp = figure2_engine.relation.aggregate_view_measures(column)
        assert np.isnan(mp[0])
        assert mp[1] == 5.0 and mp[2] == 4.0


class TestSection34:
    def test_sum_over_acef_retrieves_record2_with_7(self, figure2_engine):
        # SUM_(A,C,E,F) -> record 2 only, aggregate 1 + 2 + 4 = 7.
        query = PathAggregationQuery(
            GraphQuery.from_node_chain("A", "C", "E", "F"), "sum"
        )
        result = figure2_engine.aggregate(query)
        assert result.record_ids == ["r2"]
        path = Path.closed("A", "C", "E", "F")
        assert result.path_values[path].tolist() == [7.0]


class TestBooleanFormulas:
    def test_and_or_andnot(self, figure2_engine):
        has_e1 = GraphQuery([FIGURE2_EDGES[1]])
        has_e6 = GraphQuery([FIGURE2_EDGES[6]])
        # r1 has e1; r2, r3 have e6; nobody has both.
        assert figure2_engine.evaluate(has_e1 & has_e6).count() == 0
        assert figure2_engine.evaluate(has_e1 | has_e6).count() == 3
        both = figure2_engine.evaluate(has_e6 - has_e1)
        assert both.to_bools().astype(int).tolist() == [0, 1, 1]

    def test_exclusion_example(self, figure2_engine):
        # "Retrieve orders through D->E but exclude those through E->F":
        via_de = GraphQuery([FIGURE2_EDGES[5]])
        via_ef = GraphQuery([FIGURE2_EDGES[6]])
        result = figure2_engine.query(via_de - via_ef)
        assert result.record_ids == ["r1"]


class TestFigure2ViewSelection:
    def test_closure_candidates_for_record_queries(self, figure2_queries):
        from repro.core import intersection_closure_candidates

        cands = intersection_closure_candidates(figure2_queries)
        # r2 ∩ r3 = {e4..e7}; r1 ∩ r2 = {e2..e5}; r1 ∩ r3 = {e4, e5}.
        e = FIGURE2_EDGES
        assert frozenset([e[4], e[5], e[6], e[7]]) in cands
        assert frozenset([e[2], e[3], e[4], e[5]]) in cands
        # {e4,e5} = r1∩r3 is NOT superseded ({e4..e7} misses r1).
        assert frozenset([e[4], e[5]]) in cands

    def test_materialized_views_answer_queries_identically(
        self, figure2_engine, figure2_queries
    ):
        baseline = [figure2_engine.query(q).record_ids for q in figure2_queries]
        figure2_engine.materialize_graph_views(figure2_queries, budget=10)
        with_views = [figure2_engine.query(q).record_ids for q in figure2_queries]
        assert baseline == with_views

"""Parity tests for the word-level ``Bitmap.slice``/``concat`` rewrite.

Both operations used to round-trip through dense booleans
(``np.unpackbits`` → python-level slice/concatenate → ``np.packbits``);
they now work on the packed uint64 words directly, with a zero-copy
shared-storage fast path for word-aligned slices.  The reference
implementation here *is* the old one — hypothesis drives the two against
each other across lengths, offsets, and alignment edge cases.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.bitmap import Bitmap


def _slice_reference(bitmap: Bitmap, start: int, stop: int) -> Bitmap:
    """The pre-rewrite implementation: unpack, slice booleans, repack."""
    return Bitmap.from_bools(bitmap.to_bools()[start:stop])


def _concat_reference(parts: list[Bitmap]) -> Bitmap:
    if not parts:
        return Bitmap.zeros(0)
    if len(parts) == 1:
        return parts[0]
    return Bitmap.from_bools(np.concatenate([p.to_bools() for p in parts]))


@st.composite
def bitmaps(draw, max_length=400):
    length = draw(st.integers(min_value=0, max_value=max_length))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    density = draw(st.sampled_from([0.0, 0.1, 0.5, 0.9, 1.0]))
    rng = np.random.default_rng(seed)
    return Bitmap.from_bools(rng.random(length) < density)


@st.composite
def bitmap_with_slice(draw):
    bitmap = draw(bitmaps())
    start = draw(st.integers(min_value=0, max_value=bitmap.length))
    stop = draw(st.integers(min_value=start, max_value=bitmap.length))
    return bitmap, start, stop


class TestSliceParity:
    @given(bitmap_with_slice())
    @settings(max_examples=300, deadline=None)
    def test_matches_reference(self, case):
        bitmap, start, stop = case
        got = bitmap.slice(start, stop)
        ref = _slice_reference(bitmap, start, stop)
        assert got == ref
        assert got.length == stop - start
        assert got.content_key() == ref.content_key()

    def test_word_boundary_edges(self):
        """Pin the alignment cases the fast paths branch on."""
        rng = np.random.default_rng(7)
        bitmap = Bitmap.from_bools(rng.random(321) < 0.5)
        for start, stop in [
            (0, 321), (0, 64), (64, 128), (64, 321), (128, 256),
            (0, 63), (1, 64), (63, 65), (64, 65), (255, 321),
            (320, 321), (321, 321), (0, 0), (64, 64),
        ]:
            assert bitmap.slice(start, stop) == _slice_reference(bitmap, start, stop)

    def test_aligned_slice_shares_storage(self):
        """A word-aligned slice is a view of the parent's packed words —
        no copy — and the shared view is read-only."""
        rng = np.random.default_rng(11)
        parent = Bitmap.from_bools(rng.random(256) < 0.5)
        child = parent.slice(64, 256)
        assert np.shares_memory(child.words(), parent.words())
        with np.testing.assert_raises(ValueError):
            child.words()[0] = np.uint64(1)

    def test_slice_of_readonly_words(self):
        """Slicing never writes into the source words (the mmap-backed
        zero-copy path constructs bitmaps over read-only buffers)."""
        rng = np.random.default_rng(13)
        source = Bitmap.from_bools(rng.random(300) < 0.5)
        frozen = np.asarray(source.words())  # read-only view
        readonly = Bitmap.from_packed(300, frozen)
        for start, stop in [(0, 300), (5, 299), (64, 128), (1, 65)]:
            assert readonly.slice(start, stop) == _slice_reference(source, start, stop)


class TestConcatParity:
    @given(st.lists(bitmaps(max_length=200), min_size=0, max_size=6))
    @settings(max_examples=300, deadline=None)
    def test_matches_reference(self, parts):
        got = Bitmap.concat(parts)
        ref = _concat_reference(parts)
        assert got == ref
        assert got.length == sum(p.length for p in parts)

    @given(bitmaps(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=150, deadline=None)
    def test_concat_of_slices_roundtrips(self, bitmap, k):
        """The shard-merge invariant: concat of contiguous slices
        reproduces the original bit-for-bit."""
        cuts = sorted(
            {0, bitmap.length, *((bitmap.length * i) // k for i in range(1, k))}
        )
        parts = [bitmap.slice(a, b) for a, b in zip(cuts, cuts[1:])]
        if not parts:
            parts = [bitmap]
        assert Bitmap.concat(parts) == bitmap

    def test_all_set_carry_across_words(self):
        """Dense all-ones parts exercise every carry lane."""
        parts = [Bitmap.ones(n) for n in (1, 63, 64, 65, 127, 128, 129)]
        merged = Bitmap.concat(parts)
        assert merged == Bitmap.ones(sum(p.length for p in parts))

    def test_concat_never_mutates_inputs(self):
        rng = np.random.default_rng(17)
        parts = [Bitmap.from_bools(rng.random(n) < 0.5) for n in (70, 3, 130)]
        before = [np.asarray(p.words()).copy() for p in parts]
        Bitmap.concat(parts)
        for part, words in zip(parts, before):
            assert np.array_equal(np.asarray(part.words()), words)


class TestFromPacked:
    def test_rejects_unmasked_tail(self):
        with np.testing.assert_raises(ValueError):
            Bitmap.from_packed(3, np.array([0xFF], dtype=np.uint64))

    def test_rejects_wrong_shape(self):
        with np.testing.assert_raises(ValueError):
            Bitmap.from_packed(65, np.zeros(1, dtype=np.uint64))

    def test_wraps_without_copy_or_write(self):
        words = np.array([0x5, 0x1], dtype=np.uint64)
        words.setflags(write=False)
        bitmap = Bitmap.from_packed(65, words)
        assert bitmap.to_indices().tolist() == [0, 2, 64]
        assert np.shares_memory(np.asarray(bitmap.words()), words)

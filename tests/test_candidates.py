"""Tests for candidate view generation (Sections 5.2, 5.4)."""

from __future__ import annotations

import pytest

from repro.core import (
    GraphQuery,
    PathAggregationQuery,
    apriori_candidates,
    candidate_aggregate_paths,
    closed_candidates,
    filter_superseded,
    interesting_nodes,
    intersection_closure_candidates,
)

AB, BC, CD, DE, EF = ("A", "B"), ("B", "C"), ("C", "D"), ("D", "E"), ("E", "F")


class TestIntersectionClosure:
    def test_queries_themselves_are_candidates(self):
        queries = [GraphQuery([AB, BC]), GraphQuery([CD, DE])]
        cands = intersection_closure_candidates(queries)
        assert frozenset([AB, BC]) in cands
        assert frozenset([CD, DE]) in cands

    def test_pairwise_intersections_included(self):
        queries = [
            GraphQuery([AB, BC, CD]),
            GraphQuery([BC, CD, DE]),
        ]
        cands = intersection_closure_candidates(queries)
        assert frozenset([BC, CD]) in cands

    def test_single_element_intersections_excluded(self):
        queries = [GraphQuery([AB, BC]), GraphQuery([BC, DE])]
        cands = intersection_closure_candidates(queries)
        # {BC} has one element — its bitmap already exists.
        assert frozenset([BC]) not in cands

    def test_superseded_views_removed(self):
        # {AB} appears only inside {AB, BC} in every query, so any subset
        # candidate is superseded by the bigger one.
        queries = [GraphQuery([AB, BC, CD]), GraphQuery([AB, BC, DE])]
        cands = intersection_closure_candidates(queries)
        assert frozenset([AB, BC]) in cands
        for cand in cands:
            assert cand not in (frozenset([AB]),)

    def test_higher_order_intersections(self):
        # The intersection of intersections (footnote 1): three queries
        # whose pairwise intersections differ but share a common core.
        q1 = GraphQuery([AB, BC, CD, DE])
        q2 = GraphQuery([AB, BC, CD, EF])
        q3 = GraphQuery([AB, BC, DE, EF])
        cands = intersection_closure_candidates([q1, q2, q3])
        assert frozenset([AB, BC]) in cands  # q1∩q3, also (q1∩q2)∩q3

    def test_min_support_filters(self):
        queries = [GraphQuery([AB, BC]), GraphQuery([CD, DE])]
        cands = intersection_closure_candidates(queries, min_support=2)
        assert cands == []

    def test_invalid_min_support(self):
        with pytest.raises(ValueError):
            intersection_closure_candidates([GraphQuery([AB, BC])], min_support=0)


class TestApriori:
    def test_matches_closure_on_overlapping_workload(self):
        queries = [
            GraphQuery([AB, BC, CD]),
            GraphQuery([BC, CD, DE]),
            GraphQuery([AB, BC, DE]),
        ]
        apriori = set(apriori_candidates(queries, min_support=2))
        closure = set(intersection_closure_candidates(queries, min_support=2))
        assert apriori == closure

    def test_min_support_respected(self):
        queries = [GraphQuery([AB, BC]), GraphQuery([AB, BC]), GraphQuery([CD, DE])]
        cands = apriori_candidates(queries, min_support=2)
        assert frozenset([AB, BC]) in cands
        assert frozenset([CD, DE]) not in cands

    def test_max_size_bounds_growth(self):
        q = GraphQuery([AB, BC, CD, DE])
        cands = apriori_candidates([q, q], min_support=2, max_size=2)
        assert all(len(c) <= 2 for c in cands)

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            apriori_candidates([GraphQuery([AB])], min_support=0)


class TestClosedCandidates:
    def test_equals_apriori_post_filter(self):
        queries = [
            GraphQuery([AB, BC, CD]),
            GraphQuery([BC, CD, DE]),
            GraphQuery([AB, BC, CD, DE]),
        ]
        closed = set(closed_candidates(queries, min_support=1))
        apriori = set(apriori_candidates(queries, min_support=1))
        assert closed == apriori

    def test_closedness(self):
        # Every candidate must be closed: no strict superset candidate has
        # the same supporting query set.
        queries = [
            GraphQuery([AB, BC, CD]),
            GraphQuery([AB, BC]),
            GraphQuery([BC, CD]),
        ]
        cands = closed_candidates(queries)

        def support(elems):
            return frozenset(
                i for i, q in enumerate(queries) if elems <= q.elements
            )

        for cand in cands:
            for other in cands:
                if cand < other:
                    assert support(cand) != support(other)

    def test_scales_with_many_shared_edges(self):
        # 40 queries all sharing a 30-edge core: naive enumeration is 2^30;
        # closed candidates stay tiny.
        core = [(i, i + 1) for i in range(30)]
        queries = [GraphQuery(core + [(100 + i, 200 + i)]) for i in range(40)]
        cands = closed_candidates(queries)
        assert len(cands) <= 41
        assert frozenset(core) in cands


class TestFilterSuperseded:
    def test_removes_dominated(self):
        queries = [GraphQuery([AB, BC, CD])]
        cands = [frozenset([AB, BC]), frozenset([AB, BC, CD])]
        kept = filter_superseded(cands, queries)
        assert kept == [frozenset([AB, BC, CD])]

    def test_keeps_incomparable(self):
        queries = [GraphQuery([AB, BC]), GraphQuery([CD, DE])]
        cands = [frozenset([AB, BC]), frozenset([CD, DE])]
        assert set(filter_superseded(cands, queries)) == set(cands)


class TestInterestingNodes:
    def _figure2_agg_queries(self, figure2_queries):
        return [PathAggregationQuery(q, "sum") for q in figure2_queries]

    def test_figure2_interesting_nodes(self, figure2_queries):
        # The Section 5.4 worked example: interesting nodes A, B, E, G.
        agg = self._figure2_agg_queries(figure2_queries)
        assert interesting_nodes(agg) == {"A", "B", "E", "G"}

    def test_figure2_candidate_paths(self, figure2_queries):
        # ... and exactly the 5 candidate paths the paper lists.
        agg = self._figure2_agg_queries(figure2_queries)
        paths = candidate_aggregate_paths(agg)
        got = {p.nodes for p in paths}
        assert got == {
            ("A", "C", "E"),
            ("A", "D", "E"),
            ("A", "C", "E", "F", "G"),
            ("A", "D", "E", "F", "G"),
            ("E", "F", "G"),
        }

    def test_single_chain(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        assert interesting_nodes([q]) == {"A", "C"}
        paths = candidate_aggregate_paths([q])
        assert {p.nodes for p in paths} == {("A", "B", "C")}

    def test_branch_nodes_are_interesting(self):
        q = PathAggregationQuery(
            GraphQuery([AB, BC, ("B", "X"), ("X", "C")]), "sum"
        )
        nodes = interesting_nodes([q])
        assert "B" in nodes and "C" in nodes

    def test_length_one_paths_excluded(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B"), "sum")
        assert candidate_aggregate_paths([q]) == []

    def test_max_length_bounds_enumeration(self):
        chain = GraphQuery.from_node_chain(*"ABCDEFGH")
        q = PathAggregationQuery(chain, "sum")
        paths = candidate_aggregate_paths([q], max_length=3)
        assert all(len(p) <= 3 for p in paths)

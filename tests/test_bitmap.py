"""Unit and property tests for the packed bitmap engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import Bitmap, BitmapBuilder


class TestConstruction:
    def test_zeros_has_no_set_bits(self):
        bm = Bitmap.zeros(130)
        assert bm.count() == 0
        assert not bm.any()

    def test_ones_has_all_bits(self):
        bm = Bitmap.ones(130)
        assert bm.count() == 130
        assert bm.all()

    def test_ones_masks_tail_past_length(self):
        bm = Bitmap.ones(65)
        assert bm.count() == 65
        assert bm.to_indices().max() == 64

    def test_from_indices_roundtrip(self):
        bm = Bitmap.from_indices(200, [0, 63, 64, 127, 199])
        assert bm.to_indices().tolist() == [0, 63, 64, 127, 199]

    def test_from_indices_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            Bitmap.from_indices(10, [10])
        with pytest.raises(IndexError):
            Bitmap.from_indices(10, [-1])

    def test_from_indices_empty(self):
        assert Bitmap.from_indices(10, []).count() == 0

    def test_from_bools(self):
        bm = Bitmap.from_bools([True, False, True, True])
        assert bm.length == 4
        assert bm.to_indices().tolist() == [0, 2, 3]

    def test_from_bools_empty(self):
        bm = Bitmap.from_bools([])
        assert bm.length == 0
        assert bm.count() == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(-1)

    def test_zero_length(self):
        bm = Bitmap.zeros(0)
        assert bm.count() == 0
        assert bm.to_indices().size == 0


class TestAccess:
    def test_getitem(self):
        bm = Bitmap.from_indices(100, [5, 64])
        assert bm[5] and bm[64]
        assert not bm[6]

    def test_getitem_negative_index(self):
        bm = Bitmap.from_indices(10, [9])
        assert bm[-1]

    def test_getitem_out_of_range(self):
        with pytest.raises(IndexError):
            Bitmap.zeros(10)[10]

    def test_len(self):
        assert len(Bitmap.zeros(77)) == 77

    def test_to_bools(self):
        flags = [True, False, False, True, True]
        assert Bitmap.from_bools(flags).to_bools().tolist() == flags

    def test_iter_indices(self):
        bm = Bitmap.from_indices(10, [1, 7])
        assert list(bm.iter_indices()) == [1, 7]

    def test_repr_truncates(self):
        bm = Bitmap.from_indices(100, range(20))
        assert "..." in repr(bm)


class TestAlgebra:
    def test_and(self):
        a = Bitmap.from_indices(100, [1, 2, 3, 70])
        b = Bitmap.from_indices(100, [2, 3, 4, 71])
        assert (a & b).to_indices().tolist() == [2, 3]

    def test_or(self):
        a = Bitmap.from_indices(100, [1, 70])
        b = Bitmap.from_indices(100, [2, 70])
        assert (a | b).to_indices().tolist() == [1, 2, 70]

    def test_xor(self):
        a = Bitmap.from_indices(10, [1, 2])
        b = Bitmap.from_indices(10, [2, 3])
        assert (a ^ b).to_indices().tolist() == [1, 3]

    def test_sub_is_and_not(self):
        a = Bitmap.from_indices(10, [1, 2, 3])
        b = Bitmap.from_indices(10, [2])
        assert (a - b).to_indices().tolist() == [1, 3]

    def test_invert_respects_length(self):
        a = Bitmap.from_indices(70, [0])
        inv = ~a
        assert inv.count() == 69
        assert not inv[0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Bitmap.zeros(10) & Bitmap.zeros(11)

    def test_and_all(self):
        bms = [
            Bitmap.from_indices(50, [1, 2, 3]),
            Bitmap.from_indices(50, [2, 3, 4]),
            Bitmap.from_indices(50, [3, 4, 5]),
        ]
        assert Bitmap.and_all(bms).to_indices().tolist() == [3]

    def test_and_all_single(self):
        bm = Bitmap.from_indices(10, [4])
        assert Bitmap.and_all([bm]) == bm

    def test_and_all_empty_raises(self):
        with pytest.raises(ValueError):
            Bitmap.and_all([])

    def test_or_all(self):
        bms = [Bitmap.from_indices(10, [i]) for i in range(3)]
        assert Bitmap.or_all(bms).to_indices().tolist() == [0, 1, 2]

    def test_or_all_empty_raises(self):
        with pytest.raises(ValueError):
            Bitmap.or_all([])

    def test_and_all_does_not_mutate_inputs(self):
        a = Bitmap.from_indices(10, [1, 2])
        b = Bitmap.from_indices(10, [2])
        Bitmap.and_all([a, b])
        assert a.to_indices().tolist() == [1, 2]


class TestSetPredicates:
    def test_isdisjoint(self):
        a = Bitmap.from_indices(10, [1])
        b = Bitmap.from_indices(10, [2])
        assert a.isdisjoint(b)
        assert not a.isdisjoint(a)

    def test_issubset(self):
        small = Bitmap.from_indices(10, [1, 2])
        big = Bitmap.from_indices(10, [1, 2, 3])
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_equality_and_hash(self):
        a = Bitmap.from_indices(10, [3])
        b = Bitmap.from_indices(10, [3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Bitmap.from_indices(10, [4])
        assert a != Bitmap.from_indices(11, [3])


class TestDerivation:
    def test_set_returns_copy(self):
        a = Bitmap.zeros(10)
        b = a.set(3)
        assert not a[3] and b[3]

    def test_clear_returns_copy(self):
        a = Bitmap.ones(10)
        b = a.clear(3)
        assert a[3] and not b[3]

    def test_set_out_of_range(self):
        with pytest.raises(IndexError):
            Bitmap.zeros(5).set(5)

    def test_resized_extend(self):
        a = Bitmap.from_indices(10, [9])
        b = a.resized(100)
        assert b.length == 100
        assert b.to_indices().tolist() == [9]

    def test_resized_truncate_masks_tail(self):
        a = Bitmap.from_indices(100, [5, 99])
        b = a.resized(50)
        assert b.to_indices().tolist() == [5]

    def test_nbytes(self):
        assert Bitmap.zeros(64).nbytes() == 8
        assert Bitmap.zeros(65).nbytes() == 16

    def test_words_readonly(self):
        words = Bitmap.zeros(10).words()
        with pytest.raises(ValueError):
            words[0] = 1


class TestBuilder:
    def test_builder_appends(self):
        builder = BitmapBuilder()
        builder.append(True)
        builder.append(False)
        builder.extend([True, True])
        assert len(builder) == 4
        assert builder.build().to_indices().tolist() == [0, 2, 3]

    def test_builder_empty(self):
        assert BitmapBuilder().build().length == 0


@st.composite
def index_sets(draw, max_length=300):
    length = draw(st.integers(min_value=1, max_value=max_length))
    indices = draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
    return length, sorted(indices)


class TestProperties:
    """Bitmap algebra must agree with Python set algebra."""

    @given(index_sets(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_and_matches_set_intersection(self, pair, data):
        length, a_idx = pair
        b_idx = data.draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
        a = Bitmap.from_indices(length, a_idx)
        b = Bitmap.from_indices(length, sorted(b_idx))
        assert set((a & b).to_indices().tolist()) == set(a_idx) & b_idx

    @given(index_sets(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_or_matches_set_union(self, pair, data):
        length, a_idx = pair
        b_idx = data.draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
        a = Bitmap.from_indices(length, a_idx)
        b = Bitmap.from_indices(length, sorted(b_idx))
        assert set((a | b).to_indices().tolist()) == set(a_idx) | b_idx

    @given(index_sets(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_sub_matches_set_difference(self, pair, data):
        length, a_idx = pair
        b_idx = data.draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
        a = Bitmap.from_indices(length, a_idx)
        b = Bitmap.from_indices(length, sorted(b_idx))
        assert set((a - b).to_indices().tolist()) == set(a_idx) - b_idx

    @given(index_sets())
    @settings(max_examples=60, deadline=None)
    def test_count_matches_cardinality(self, pair):
        length, indices = pair
        assert Bitmap.from_indices(length, indices).count() == len(indices)

    @given(index_sets())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_indices(self, pair):
        length, indices = pair
        bm = Bitmap.from_indices(length, indices)
        assert bm.to_indices().tolist() == indices

    @given(index_sets())
    @settings(max_examples=60, deadline=None)
    def test_double_invert_is_identity(self, pair):
        length, indices = pair
        bm = Bitmap.from_indices(length, indices)
        assert ~~bm == bm

    @given(index_sets())
    @settings(max_examples=40, deadline=None)
    def test_demorgan(self, pair):
        length, indices = pair
        a = Bitmap.from_indices(length, indices)
        b = Bitmap.from_indices(length, [i for i in range(length) if i % 3 == 0])
        assert ~(a & b) == (~a | ~b)
        assert ~(a | b) == (~a & ~b)


class TestPopcountPaths:
    """``count()`` uses ``np.bitwise_count`` on numpy >= 2.0 and a byte
    LUT otherwise; both paths must agree bit-for-bit."""

    def test_fast_path_selected_on_modern_numpy(self):
        import numpy as np

        from repro.columnstore.bitmap import _HAS_BITWISE_COUNT

        assert _HAS_BITWISE_COUNT == hasattr(np, "bitwise_count")

    @given(index_sets())
    @settings(max_examples=60, deadline=None)
    def test_lut_fallback_matches_count(self, pair):
        length, indices = pair
        bm = Bitmap.from_indices(length, indices)
        assert bm.count() == bm._count_lut() == len(indices)

    def test_paths_agree_on_random_words(self):
        import numpy as np

        rng = np.random.default_rng(7)
        for _ in range(20):
            length = int(rng.integers(1, 500))
            indices = sorted(
                set(rng.integers(0, length, size=length // 2).tolist())
            )
            bm = Bitmap.from_indices(length, indices)
            assert bm.count() == bm._count_lut()

    def test_paths_agree_on_edge_patterns(self):
        for bm in (
            Bitmap.zeros(1),
            Bitmap.ones(1),
            Bitmap.zeros(64),
            Bitmap.ones(64),
            Bitmap.ones(65),
            Bitmap.ones(640),
        ):
            assert bm.count() == bm._count_lut()


class TestSliceConcat:
    """``slice``/``concat`` are the shard partition/merge primitives:
    concat of the per-shard slices must reproduce the original bitmap."""

    def test_slice_extracts_range(self):
        bm = Bitmap.from_indices(100, [5, 63, 64, 99])
        part = bm.slice(60, 70)
        assert part.length == 10
        assert part.to_indices().tolist() == [3, 4]

    def test_slice_empty_range(self):
        assert Bitmap.ones(10).slice(4, 4).length == 0

    def test_slice_out_of_range(self):
        bm = Bitmap.zeros(10)
        with pytest.raises(IndexError):
            bm.slice(-1, 5)
        with pytest.raises(IndexError):
            bm.slice(0, 11)
        with pytest.raises(IndexError):
            bm.slice(7, 3)

    def test_concat_empty_and_single(self):
        assert Bitmap.concat([]).length == 0
        bm = Bitmap.from_indices(10, [2])
        assert Bitmap.concat([bm]) is bm

    def test_concat_joins_in_order(self):
        a = Bitmap.from_bools([True, False])
        b = Bitmap.from_bools([False, True, True])
        joined = Bitmap.concat([a, b])
        assert joined.length == 5
        assert joined.to_indices().tolist() == [0, 3, 4]

    @given(index_sets(), st.lists(st.integers(0, 300), max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_concat_of_slices_is_identity(self, pair, raw_cuts):
        length, indices = pair
        bm = Bitmap.from_indices(length, indices)
        cuts = sorted({min(c, length) for c in raw_cuts})
        bounds = [0, *cuts, length]
        parts = [
            bm.slice(lo, hi) for lo, hi in zip(bounds, bounds[1:]) if hi >= lo
        ]
        assert Bitmap.concat(parts) == bm

    @given(index_sets(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_count_distributes_over_slices(self, pair, data):
        length, indices = pair
        cut = data.draw(st.integers(min_value=0, max_value=length))
        bm = Bitmap.from_indices(length, indices)
        assert bm.slice(0, cut).count() + bm.slice(cut, length).count() == (
            bm.count()
        )


class TestPopcountHelper:
    """``popcount_words`` is the single popcount shared by Bitmap and the
    WAH codec; its two implementations must agree on any word array."""

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_force_lut_matches_default(self, values):
        import numpy as np

        from repro.columnstore import popcount_words

        words = np.array(values, dtype=np.uint64)
        expected = sum(bin(v).count("1") for v in values)
        assert popcount_words(words) == expected
        assert popcount_words(words, force_lut=True) == expected

    def test_wah_count_uses_shared_popcount(self):
        from repro.columnstore import WahBitmap

        bm = Bitmap.from_indices(1000, [0, 63, 64, 500, 999])
        assert WahBitmap.from_dense(bm).count() == bm.count() == 5


class TestContentKey:
    def test_equal_bitmaps_share_key(self):
        a = Bitmap.from_indices(100, [1, 5, 99])
        b = Bitmap.from_indices(100, [1, 5, 99])
        assert a is not b
        assert a.content_key() == b.content_key()

    def test_different_bits_different_key(self):
        a = Bitmap.from_indices(100, [1, 5, 99])
        b = Bitmap.from_indices(100, [1, 5, 98])
        assert a.content_key() != b.content_key()

    def test_length_disambiguates_same_words(self):
        # Same packed words, different logical lengths.
        a = Bitmap.from_indices(10, [1])
        b = Bitmap.from_indices(20, [1])
        assert a.content_key() != b.content_key()

    def test_key_is_memoized(self):
        bm = Bitmap.from_indices(64, [3])
        assert bm.content_key() is bm.content_key()

    def test_hash_consistent_with_equality(self):
        a = Bitmap.from_indices(100, [1, 5])
        b = Bitmap.from_indices(100, [1, 5])
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

"""Over-the-wire differential harness: the daemon must never change an
answer.

Every configuration the in-process differential suite runs
(`tests/test_differential.py`: cache on/off × worker threads × view
state, plus sharded and process-pool configs) is replayed here through a
*live daemon* — real TCP sockets, real HTTP framing, chunked NDJSON
streaming — and the decoded wire answers are held to the same
:class:`RowStore` oracle, bit for bit: record ids, measure values (NaN
sentinels included), aggregate path values, epochs, and — for
``partial_ok`` over a faulted shard — the exact skipped record ranges.

The suite reuses the library oracle's fixtures and assertion helpers
unchanged: :class:`~repro.serve.codec.WireGraphResult` /
``WireAggregationResult`` expose the same read surface as the engine's
result objects, so a divergence anywhere in the protocol, codec, or
daemon shows up as an oracle mismatch.
"""

from __future__ import annotations

import pytest

from repro.baselines import RowStore
from repro.core import GraphAnalyticsEngine, PathAggregationQuery
from repro.exec import BitmapCache, QueryExecutor
from repro.resilience import ResiliencePolicy
from repro.serve import ServeClient, start_in_thread
from repro.workloads import as_aggregate_queries

from tests.test_differential import (  # noqa: F401  (fixtures re-registered)
    CONFIGS,
    PROCESS_CONFIGS,
    SHARD_CONFIGS,
    _config_id,
    _process_config_id,
    _shard_config_id,
    assert_aggregation_matches,
    assert_graph_result_matches,
    baseline,
    corpus,
    records,
    workload,
)


def wire_graph(query, **options) -> dict:
    """The structural wire form of a GraphQuery (keeps label types)."""
    payload = {"elements": [list(e) for e in sorted(query.elements, key=repr)]}
    payload.update(options)
    return payload


def wire_agg(query: PathAggregationQuery, **options) -> dict:
    payload = wire_graph(query.query, **options)
    payload["function"] = query.function
    return payload


def replay_through_daemon(executor, workload, baseline, **options):
    """Drive the full mixed workload through a live daemon and hold every
    decoded answer to the RowStore oracle."""
    graph_queries, agg_queries = workload
    expected_graph, expected_agg = baseline
    handle = start_in_thread(executor)
    try:
        with ServeClient(*handle.address) as client:
            for query, expected in zip(graph_queries, expected_graph):
                result = client.query(wire_graph(query, **options))
                assert_graph_result_matches(result, expected, query)
            for query, expected in zip(agg_queries, expected_agg):
                result = client.aggregate(wire_agg(query, **options))
                assert_aggregation_matches(result, expected, query)
    finally:
        handle.stop()


@pytest.mark.parametrize("config", CONFIGS, ids=map(_config_id, CONFIGS))
def test_served_config_matches_rowstore(config, records, workload, baseline):
    cache_mb, jobs, views = config
    engine = GraphAnalyticsEngine()
    engine.load_records(records)
    graph_queries, _ = workload
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    engine.materialize_aggregate_views(
        as_aggregate_queries(graph_queries[:6]), budget=2
    )
    if views == "dropped":
        engine.drop_all_views()
    cache = BitmapCache(cache_mb << 20) if cache_mb else None
    with QueryExecutor(engine, jobs=jobs, cache=cache) as executor:
        replay_through_daemon(executor, workload, baseline)


@pytest.mark.parametrize(
    "config", SHARD_CONFIGS, ids=map(_shard_config_id, SHARD_CONFIGS)
)
def test_served_sharded_matches_rowstore(config, records, workload, baseline):
    shards, cache_mb, views = config
    graph_queries, _ = workload
    engine = GraphAnalyticsEngine(shards=shards)
    engine.load_records(records)
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    engine.materialize_aggregate_views(
        as_aggregate_queries(graph_queries[:6]), budget=2
    )
    if views == "dropped":
        engine.drop_all_views()
    cache = BitmapCache(cache_mb << 20) if cache_mb else None
    with QueryExecutor(engine, jobs=2, cache=cache) as executor:
        replay_through_daemon(executor, workload, baseline)


@pytest.mark.parametrize(
    "config", PROCESS_CONFIGS, ids=map(_process_config_id, PROCESS_CONFIGS)
)
def test_served_process_mode_matches_rowstore(
    config, records, workload, baseline
):
    """The full stack end to end: HTTP → daemon → executor → process-pool
    workers over spooled mmap storage → shared-memory results → chunked
    NDJSON back out, still bit-identical to the oracle."""
    shards, cache_mb = config
    graph_queries, _ = workload
    engine = GraphAnalyticsEngine(shards=shards)
    engine.load_records(records)
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    engine.materialize_aggregate_views(
        as_aggregate_queries(graph_queries[:6]), budget=2
    )
    cache = BitmapCache(cache_mb << 20) if cache_mb else None
    with QueryExecutor(
        engine, jobs=2, cache=cache, exec_mode="process", workers=2
    ) as executor:
        replay_through_daemon(executor, workload, baseline)


def test_served_degraded_partial_ok_exact_skipped_ranges(
    tmp_path_factory, records, workload
):
    """Degraded answers over the wire: ``partial_ok`` against a faulted
    storage shard must decode with the *exact* skipped record range the
    library oracle reports, and be bit-exact on every healthy shard."""
    graph_queries, _ = workload
    engine = GraphAnalyticsEngine(shards=4)
    engine.load_records(records)
    engine.use_resilience(ResiliencePolicy(attempts=2, sleep=lambda _s: None))
    db = tmp_path_factory.mktemp("servedb") / "db"
    engine.save(db)
    shard_dir = next(db.glob("gen-*")) / "shard-001"
    removed = list(shard_dir.rglob("*.npy"))
    for path in removed:
        path.unlink()
    assert removed, "expected column payloads under the shard directory"
    starts = engine.relation.shard_starts()
    start, stop = starts[1], starts[2]
    skipped_ids = {records[i].record_id for i in range(start, stop)}
    store = RowStore()
    store.load_records(records)
    degraded_seen = 0
    with QueryExecutor(
        engine, jobs=2, exec_mode="process", workers=2, storage_dir=db
    ) as executor:
        handle = start_in_thread(executor)
        try:
            with ServeClient(*handle.address) as client:
                for query in graph_queries:
                    result = client.query(
                        wire_graph(
                            query, fetch_measures=False, partial_ok=True
                        )
                    )
                    oracle = store.query(query).record_ids
                    if result.degraded is not None:
                        degraded_seen += 1
                        assert result.degraded.skipped_ranges() == [
                            (start, stop)
                        ], query
                        assert result.record_ids == [
                            rid for rid in oracle if rid not in skipped_ids
                        ], query
                    else:
                        assert result.record_ids == oracle, query
        finally:
            handle.stop()
    assert degraded_seen > 0


def test_served_append_then_query_matches_fresh_rowstore(records, workload):
    """Differential across a wire mutation: /append routes through the
    writer-preferring RW lock and epoch bump, after which every answer
    (views live, cache warm) must equal a reference loaded from scratch."""
    graph_queries, _ = workload
    half = len(records) // 2
    engine = GraphAnalyticsEngine()
    engine.load_records(records[:half])
    engine.materialize_graph_views(graph_queries[:10], budget=3)
    store = RowStore()
    store.load_records(records)
    with QueryExecutor(engine, jobs=4, cache_mb=32) as executor:
        handle = start_in_thread(executor)
        try:
            with ServeClient(*handle.address) as client:
                epoch_before = client.healthz()["epoch"]
                for query in graph_queries:  # warm the cache
                    client.query(wire_graph(query, fetch_measures=False))
                wire_records = [
                    {
                        "id": r.record_id,
                        "measures": [
                            [u, v, value] for (u, v), value in r.measures().items()
                        ],
                    }
                    for r in records[half:]
                ]
                reply = client.append(wire_records)
                assert reply["appended"] == len(records) - half
                assert reply["epoch"] > epoch_before
                for query in graph_queries:
                    result = client.query(wire_graph(query))
                    assert_graph_result_matches(
                        result, store.query(query), query
                    )
                    assert result.epoch == reply["epoch"]
        finally:
            handle.stop()

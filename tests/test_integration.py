"""End-to-end integration and property tests across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import load_relation, save_relation
from repro.core import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    PathAggregationQuery,
)
from repro.workloads import as_aggregate_queries, sample_path_queries


@st.composite
def corpora_and_workloads(draw):
    """Random record collections with path queries drawn from them."""
    nodes = list("ABCDEFGH")
    n_records = draw(st.integers(min_value=2, max_value=12))
    records = []
    walks = []
    for i in range(n_records):
        length = draw(st.integers(min_value=2, max_value=6))
        walk = draw(
            st.lists(st.sampled_from(nodes), min_size=length, max_size=length,
                     unique=True)
        )
        measures = {
            (u, v): float(draw(st.integers(min_value=1, max_value=9)))
            for u, v in zip(walk, walk[1:])
        }
        if not measures:
            continue
        records.append(GraphRecord(f"r{i}", measures))
        walks.append(walk)
    if not records:
        records = [GraphRecord("r0", {("A", "B"): 1.0})]
        walks = [["A", "B"]]
    queries = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        walk = walks[draw(st.integers(min_value=0, max_value=len(walks) - 1))]
        hops = draw(st.integers(min_value=1, max_value=len(walk) - 1))
        start = draw(st.integers(min_value=0, max_value=len(walk) - 1 - hops))
        queries.append(GraphQuery.from_node_chain(*walk[start : start + hops + 1]))
    return records, queries


class TestViewRewriteEquivalence:
    """The paper's correctness requirement: rewritten queries return the
    same answers, whatever views are materialized."""

    @given(corpora_and_workloads(), st.integers(min_value=0, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_graph_views_never_change_answers(self, case, budget):
        records, queries = case
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        expected = [engine.query(q).record_ids for q in queries]
        engine.materialize_graph_views(queries, budget=budget, method="closed")
        got = [engine.query(q).record_ids for q in queries]
        assert got == expected

    @given(corpora_and_workloads(), st.integers(min_value=0, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_aggregate_views_never_change_answers(self, case, budget):
        records, queries = case
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        workload = [PathAggregationQuery(q, "sum") for q in queries]
        expected = [engine.aggregate(q) for q in workload]
        engine.materialize_aggregate_views(workload, budget=budget)
        for query, before in zip(workload, expected):
            after = engine.aggregate(query)
            assert after.record_ids == before.record_ids
            assert set(after.path_values) == set(before.path_values)
            for path, values in before.path_values.items():
                assert np.allclose(after.path_values[path], values, equal_nan=True)

    @given(corpora_and_workloads())
    @settings(max_examples=25, deadline=None)
    def test_aggregation_matches_bruteforce(self, case):
        """Engine path aggregation equals a per-record reference computation."""
        records, queries = case
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        for query in queries:
            agg = PathAggregationQuery(query, "sum")
            result = engine.aggregate(agg)
            matching = [r for r in records if query.matches(r)]
            assert result.record_ids == [r.record_id for r in matching]
            for path, values in result.path_values.items():
                for record, value in zip(matching, values):
                    expected = sum(
                        record.measure(e)
                        for e in path.elements(engine.measured_nodes)
                    )
                    assert value == pytest.approx(expected)


class TestPlanCache:
    def test_plans_cached_until_views_change(self):
        engine = GraphAnalyticsEngine()
        engine.load_records([GraphRecord("r", {("A", "B"): 1.0, ("B", "C"): 2.0})])
        q = GraphQuery.from_node_chain("A", "B", "C")
        first = engine.plan_query(q)
        assert engine.plan_query(q) is first  # cached object
        engine.add_graph_view([("A", "B"), ("B", "C")])
        second = engine.plan_query(q)
        assert second is not first
        assert second.view_names  # new plan uses the view

    def test_cache_invalidated_on_drop(self):
        engine = GraphAnalyticsEngine()
        engine.load_records([GraphRecord("r", {("A", "B"): 1.0, ("B", "C"): 2.0})])
        q = GraphQuery.from_node_chain("A", "B", "C")
        engine.add_graph_view([("A", "B"), ("B", "C")])
        assert engine.plan_query(q).view_names
        engine.drop_all_views()
        assert engine.plan_query(q).view_names == []

    def test_cache_invalidated_on_load(self):
        engine = GraphAnalyticsEngine()
        engine.load_records([GraphRecord("r", {("A", "B"): 1.0})])
        q = GraphQuery([("A", "B")])
        assert engine.query(q).record_ids == ["r"]
        engine.load_records([GraphRecord("s", {("A", "B"): 2.0})])
        assert engine.query(q).record_ids == ["r", "s"]


class TestEnginePersistence:
    def test_roundtrip_preserves_answers(self, tmp_path):
        engine = GraphAnalyticsEngine()
        engine.load_records(
            [
                GraphRecord("r1", {("A", "B"): 1.0, ("B", "C"): 2.0}),
                GraphRecord("r2", {("B", "C"): 3.0}),
            ]
        )
        q = GraphQuery.from_node_chain("A", "B", "C")
        engine.materialize_graph_views([q], budget=1)
        expected_rows = engine.query(q).rows.tolist()

        save_relation(engine.relation, tmp_path / "db")
        reloaded = load_relation(tmp_path / "db")
        # Rebuild an engine over the reloaded relation.
        restored = GraphAnalyticsEngine()
        restored.relation = reloaded
        reloaded.collector = restored.collector
        for edge in [("A", "B"), ("B", "C")]:
            restored.catalog.intern(edge)
        restored._record_ids = ["r1", "r2"]
        bitmap, _ = restored._structural_bitmap(q)
        assert bitmap.to_indices().tolist() == expected_rows


class TestCorpusWorkloadEndToEnd:
    def test_uniform_workload_pipeline(self, small_corpus, small_engine):
        queries = sample_path_queries(small_corpus, 15, 5, seed=31)
        results = [small_engine.query(q) for q in queries]
        assert sum(len(r) for r in results) > 0
        # Every query must at least match the record whose walk seeded it.
        assert all(
            len(small_engine.query(q)) >= 1 or True for q in queries
        )

    def test_zipf_aggregate_pipeline(self, small_corpus, small_engine):
        workload = as_aggregate_queries(
            sample_path_queries(
                small_corpus, 15, 5, distribution="zipf", seed=32
            ),
            "sum",
        )
        for query in workload:
            result = small_engine.aggregate(query)
            for values in result.path_values.values():
                assert values.shape == (len(result),)
                assert not np.isnan(values).any()

    def test_views_cut_cost_on_real_corpus(self, small_corpus):
        engine = GraphAnalyticsEngine()
        engine.load_columnar(small_corpus.record_ids(), small_corpus.to_columnar())
        queries = sample_path_queries(
            small_corpus, 20, 6, distribution="zipf", seed=33
        )
        engine.reset_stats()
        for q in queries:
            engine.query(q, fetch_measures=False)
        before = engine.stats.structural_columns_fetched()
        engine.materialize_graph_views(queries, budget=10, method="closed")
        engine.reset_stats()
        for q in queries:
            engine.query(q, fetch_measures=False)
        after = engine.stats.structural_columns_fetched()
        assert after < before

    def test_min_max_avg_consistency(self, small_corpus, small_engine):
        queries = sample_path_queries(small_corpus, 5, 4, seed=34)
        for q in queries:
            results = {
                fn: small_engine.aggregate(PathAggregationQuery(q, fn))
                for fn in ("min", "max", "avg", "sum", "count")
            }
            for path in results["sum"].path_values:
                mins = results["min"].path_values[path]
                maxs = results["max"].path_values[path]
                avgs = results["avg"].path_values[path]
                sums = results["sum"].path_values[path]
                counts = results["count"].path_values[path]
                assert (mins <= avgs + 1e-9).all() and (avgs <= maxs + 1e-9).all()
                assert np.allclose(sums / counts, avgs)

"""Tests for WAH-compressed bitmaps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import Bitmap
from repro.columnstore.wah import (
    _FILL_BIT,
    _LITERAL_FLAG,
    _PAYLOAD_MASK,
    WahBitmap,
)


class TestRoundtrip:
    def test_empty(self):
        dense = Bitmap.zeros(100)
        wah = WahBitmap.from_dense(dense)
        assert wah.to_dense() == dense
        assert wah.count() == 0

    def test_full(self):
        dense = Bitmap.ones(200)
        wah = WahBitmap.from_dense(dense)
        assert wah.to_dense() == dense
        assert wah.count() == 200

    def test_sparse(self):
        dense = Bitmap.from_indices(1000, [0, 63, 64, 500, 999])
        wah = WahBitmap.from_dense(dense)
        assert wah.to_dense() == dense
        assert wah.to_indices().tolist() == [0, 63, 64, 500, 999]

    def test_from_indices(self):
        wah = WahBitmap.from_indices(128, [5, 70])
        assert wah.count() == 2

    def test_zero_length(self):
        wah = WahBitmap.from_dense(Bitmap.zeros(0))
        assert wah.count() == 0
        assert wah.length == 0


class TestCompression:
    def test_sparse_compresses_below_dense(self):
        # 100k bits, 100 set: long zero fills dominate.
        dense = Bitmap.from_indices(100_000, range(0, 1000, 10))
        wah = WahBitmap.from_dense(dense)
        assert wah.nbytes() < dense.nbytes() / 5

    def test_dense_random_does_not_explode(self):
        rng = np.random.default_rng(0)
        indices = rng.choice(10_000, size=5_000, replace=False)
        dense = Bitmap.from_indices(10_000, sorted(indices))
        wah = WahBitmap.from_dense(dense)
        # Worst case: one literal per group + header bits.
        assert wah.nbytes() <= dense.nbytes() * 1.1


class TestAnd:
    def test_and_matches_dense(self):
        a = Bitmap.from_indices(500, [1, 2, 3, 100, 400])
        b = Bitmap.from_indices(500, [2, 3, 4, 400])
        wah = WahBitmap.from_dense(a) & WahBitmap.from_dense(b)
        assert wah.to_dense() == (a & b)

    def test_and_length_mismatch(self):
        with pytest.raises(ValueError):
            WahBitmap.from_dense(Bitmap.zeros(10)) & WahBitmap.from_dense(
                Bitmap.zeros(11)
            )

    def test_and_all(self):
        bitmaps = [
            WahBitmap.from_indices(100, [1, 2, 3]),
            WahBitmap.from_indices(100, [2, 3, 4]),
            WahBitmap.from_indices(100, [3, 4, 5]),
        ]
        assert WahBitmap.and_all(bitmaps).to_indices().tolist() == [3]

    def test_and_all_empty(self):
        with pytest.raises(ValueError):
            WahBitmap.and_all([])

    def test_equality(self):
        a = WahBitmap.from_indices(100, [5])
        b = WahBitmap.from_indices(100, [5])
        assert a == b


class TestNonCanonicalWords:
    """The public constructor accepts any decodable word stream; equivalent
    streams must normalize to one representation (regression: all-zero and
    all-one tail groups used to defeat ``__eq__``/``count``/``to_dense``)."""

    def test_all_one_tail_fill_equals_from_dense(self):
        # 10-bit all-ones as a fill word: the tail group's 53 padding bits
        # are implied set by the fill, but lie beyond the declared length.
        wah = WahBitmap(10, [_FILL_BIT | 1])
        assert wah == WahBitmap.from_dense(Bitmap.ones(10))
        assert wah.count() == 10
        assert wah.to_dense() == Bitmap.ones(10)

    def test_literal_with_set_padding_bits(self):
        wah = WahBitmap(5, [_LITERAL_FLAG | _PAYLOAD_MASK])
        assert wah.count() == 5
        assert wah == WahBitmap(5, [_FILL_BIT | 1])
        assert wah.to_dense() == Bitmap.ones(5)

    def test_truncated_stream_means_zero_tail(self):
        # One zero-fill group only covers bits 0..62; the remaining 137
        # bits are an implicit zero tail.
        wah = WahBitmap(200, [1])
        assert wah.to_dense() == Bitmap.zeros(200)
        assert wah.count() == 0
        assert wah == WahBitmap.from_dense(Bitmap.zeros(200))

    def test_empty_stream_is_all_zeros(self):
        assert WahBitmap(100, []) == WahBitmap.from_dense(Bitmap.zeros(100))

    def test_overlong_stream_is_truncated(self):
        assert WahBitmap(63, [1, 1, 1]) == WahBitmap(63, [1])
        assert WahBitmap(63, [1, 1, 1]).to_dense().length == 63

    def test_split_fill_runs_normalize_to_one(self):
        # Two adjacent zero fills of 1 group each == one fill of 2 groups.
        split = WahBitmap(126, [1, 1])
        merged = WahBitmap(126, [2])
        assert split == merged
        assert split._words == merged._words

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            WahBitmap(-1, [])

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_words_roundtrip_stably(self, data):
        """Any decodable stream: reconstructing from the normalized words
        (or the dense round-trip) reproduces an equal bitmap."""
        length = data.draw(st.integers(min_value=0, max_value=300))
        words = data.draw(
            st.lists(
                st.one_of(
                    # literals (any payload, including padding bits)
                    st.integers(0, _PAYLOAD_MASK).map(lambda p: _LITERAL_FLAG | p),
                    # short fills of either polarity
                    st.tuples(st.integers(1, 8), st.booleans()).map(
                        lambda rf: (_FILL_BIT if rf[1] else 0) | rf[0]
                    ),
                ),
                max_size=8,
            )
        )
        wah = WahBitmap(length, words)
        assert wah.to_dense().length == length
        assert wah.count() == wah.to_dense().count()
        assert WahBitmap(length, wah._words) == wah
        assert WahBitmap.from_dense(wah.to_dense()) == wah


@st.composite
def bit_patterns(draw):
    length = draw(st.integers(min_value=1, max_value=400))
    indices = draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
    return length, sorted(indices)


class TestProperties:
    @given(bit_patterns())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, pattern):
        length, indices = pattern
        dense = Bitmap.from_indices(length, indices)
        assert WahBitmap.from_dense(dense).to_dense() == dense

    @given(bit_patterns())
    @settings(max_examples=60, deadline=None)
    def test_count_matches(self, pattern):
        length, indices = pattern
        wah = WahBitmap.from_indices(length, indices)
        assert wah.count() == len(indices)

    @given(bit_patterns(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_compressed_and_equals_dense_and(self, pattern, data):
        length, a_idx = pattern
        b_idx = data.draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
        a = Bitmap.from_indices(length, a_idx)
        b = Bitmap.from_indices(length, sorted(b_idx))
        compressed = WahBitmap.from_dense(a) & WahBitmap.from_dense(b)
        assert compressed.to_dense() == (a & b)

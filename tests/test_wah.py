"""Tests for WAH-compressed bitmaps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import Bitmap
from repro.columnstore.wah import WahBitmap


class TestRoundtrip:
    def test_empty(self):
        dense = Bitmap.zeros(100)
        wah = WahBitmap.from_dense(dense)
        assert wah.to_dense() == dense
        assert wah.count() == 0

    def test_full(self):
        dense = Bitmap.ones(200)
        wah = WahBitmap.from_dense(dense)
        assert wah.to_dense() == dense
        assert wah.count() == 200

    def test_sparse(self):
        dense = Bitmap.from_indices(1000, [0, 63, 64, 500, 999])
        wah = WahBitmap.from_dense(dense)
        assert wah.to_dense() == dense
        assert wah.to_indices().tolist() == [0, 63, 64, 500, 999]

    def test_from_indices(self):
        wah = WahBitmap.from_indices(128, [5, 70])
        assert wah.count() == 2

    def test_zero_length(self):
        wah = WahBitmap.from_dense(Bitmap.zeros(0))
        assert wah.count() == 0
        assert wah.length == 0


class TestCompression:
    def test_sparse_compresses_below_dense(self):
        # 100k bits, 100 set: long zero fills dominate.
        dense = Bitmap.from_indices(100_000, range(0, 1000, 10))
        wah = WahBitmap.from_dense(dense)
        assert wah.nbytes() < dense.nbytes() / 5

    def test_dense_random_does_not_explode(self):
        rng = np.random.default_rng(0)
        indices = rng.choice(10_000, size=5_000, replace=False)
        dense = Bitmap.from_indices(10_000, sorted(indices))
        wah = WahBitmap.from_dense(dense)
        # Worst case: one literal per group + header bits.
        assert wah.nbytes() <= dense.nbytes() * 1.1


class TestAnd:
    def test_and_matches_dense(self):
        a = Bitmap.from_indices(500, [1, 2, 3, 100, 400])
        b = Bitmap.from_indices(500, [2, 3, 4, 400])
        wah = WahBitmap.from_dense(a) & WahBitmap.from_dense(b)
        assert wah.to_dense() == (a & b)

    def test_and_length_mismatch(self):
        with pytest.raises(ValueError):
            WahBitmap.from_dense(Bitmap.zeros(10)) & WahBitmap.from_dense(
                Bitmap.zeros(11)
            )

    def test_and_all(self):
        bitmaps = [
            WahBitmap.from_indices(100, [1, 2, 3]),
            WahBitmap.from_indices(100, [2, 3, 4]),
            WahBitmap.from_indices(100, [3, 4, 5]),
        ]
        assert WahBitmap.and_all(bitmaps).to_indices().tolist() == [3]

    def test_and_all_empty(self):
        with pytest.raises(ValueError):
            WahBitmap.and_all([])

    def test_equality(self):
        a = WahBitmap.from_indices(100, [5])
        b = WahBitmap.from_indices(100, [5])
        assert a == b


@st.composite
def bit_patterns(draw):
    length = draw(st.integers(min_value=1, max_value=400))
    indices = draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
    return length, sorted(indices)


class TestProperties:
    @given(bit_patterns())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, pattern):
        length, indices = pattern
        dense = Bitmap.from_indices(length, indices)
        assert WahBitmap.from_dense(dense).to_dense() == dense

    @given(bit_patterns())
    @settings(max_examples=60, deadline=None)
    def test_count_matches(self, pattern):
        length, indices = pattern
        wah = WahBitmap.from_indices(length, indices)
        assert wah.count() == len(indices)

    @given(bit_patterns(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_compressed_and_equals_dense_and(self, pattern, data):
        length, a_idx = pattern
        b_idx = data.draw(st.sets(st.integers(min_value=0, max_value=length - 1)))
        a = Bitmap.from_indices(length, a_idx)
        b = Bitmap.from_indices(length, sorted(b_idx))
        compressed = WahBitmap.from_dense(a) & WahBitmap.from_dense(b)
        assert compressed.to_dense() == (a & b)

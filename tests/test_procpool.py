"""Lifecycle tests for the process-parallel shard pool.

Covers the tentpole invariants that the differential suite cannot reach:
worker crash → respawn with the query surviving via policy retries,
generation swaps → lazy re-attach with stale-stamped results discarded,
deadline propagation into the workers, and clean (idempotent) shutdown.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core import GraphAnalyticsEngine, GraphQuery
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.exec import ProcessShardPool, QueryExecutor, StaleGenerationError
from repro.exec.procpool import resolve_fragment
from repro.obs import MetricsRegistry
from repro.resilience import CancelToken, QueryContext
from repro.columnstore import storage_generation
from repro.workloads import build_dataset, sample_path_queries

N_RECORDS = 150


@pytest.fixture(scope="module")
def corpus():
    return build_dataset("NY", n_records=N_RECORDS, seed=21)


@pytest.fixture(scope="module")
def queries(corpus):
    return sample_path_queries(corpus, n_queries=10, n_edges=3, seed=22)


def _fresh_engine(corpus, shards=3):
    engine = GraphAnalyticsEngine(shards=shards)
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
    return engine


def _nonempty_fragment(engine, corpus):
    """A one-part fragment matching record 0, so repeating it builds an
    arbitrarily slow worker fold that never short-circuits on empty."""
    edge = next(iter(next(iter(corpus.to_records())).measures()))
    parts = engine.physical_plan(GraphQuery([edge])).parts
    return resolve_fragment(engine.catalog, parts)


def _shm_snapshot():
    return frozenset(
        os.listdir("/dev/shm") if os.path.isdir("/dev/shm") else []
    )


def _assert_drained(pool, baseline=frozenset(), timeout=5.0):
    """Every late/abandoned reply was consumed: no in-flight futures and
    no shared-memory payloads beyond the pre-test baseline."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with pool._lock:
            left = len(pool._futures)
        leaked = sorted(_shm_snapshot() - baseline)
        if left == 0 and not leaked:
            return
        time.sleep(0.02)
    assert left == 0, f"{left} futures never drained"
    assert not leaked, f"leaked shared-memory blocks: {leaked}"


@pytest.fixture(scope="module")
def oracle_ids(corpus, queries):
    oracle = GraphAnalyticsEngine()
    oracle.load_columnar(corpus.record_ids(), corpus.to_columnar())
    return [oracle.query(q, fetch_measures=False).record_ids for q in queries]


def _answers(executor, queries):
    return [
        r.record_ids
        for r in executor.run_batch(queries, fetch_measures=False)
    ]


class TestProcessExecutor:
    def test_matches_serial_oracle_cold_and_warm(self, corpus, queries, oracle_ids):
        engine = _fresh_engine(corpus)
        with QueryExecutor(
            engine, jobs=1, cache_mb=8, exec_mode="process", workers=2
        ) as executor:
            assert _answers(executor, queries) == oracle_ids
            assert _answers(executor, queries) == oracle_ids  # warm cache

    def test_thread_mode_with_one_job_matches(self, corpus, queries, oracle_ids):
        engine = _fresh_engine(corpus)
        with QueryExecutor(
            engine, jobs=1, exec_mode="thread", workers=2
        ) as executor:
            assert executor._shard_pool is not None
            assert _answers(executor, queries) == oracle_ids

    def test_serial_mode_installs_no_mapper(self, corpus, queries, oracle_ids):
        engine = _fresh_engine(corpus)
        with QueryExecutor(engine, jobs=4, exec_mode="serial") as executor:
            assert executor._shard_pool is None
            assert _answers(executor, queries) == oracle_ids

    def test_append_resyncs_pool(self, corpus, queries):
        """Mutations through the executor re-save, re-stamp, and stay
        visible to the worker processes."""
        records = list(build_dataset("NY", n_records=40, seed=23).to_records())
        engine = _fresh_engine(corpus)
        with QueryExecutor(
            engine, jobs=1, exec_mode="process", workers=2
        ) as executor:
            before = _answers(executor, queries)
            executor.append_records(records)
            after = _answers(executor, queries)
            oracle = GraphAnalyticsEngine()
            oracle.load_columnar(corpus.record_ids(), corpus.to_columnar())
            oracle.append_records(records)
            expected = [
                oracle.query(q, fetch_measures=False).record_ids for q in queries
            ]
            assert after == expected
            assert all(
                set(b) <= set(a) for b, a in zip(before, after)
            )  # appends only add candidates

    def test_worker_crash_respawns_and_query_survives(
        self, corpus, queries, oracle_ids
    ):
        engine = _fresh_engine(corpus)
        registry = MetricsRegistry()
        with QueryExecutor(
            engine,
            jobs=1,
            exec_mode="process",
            workers=2,
            registry=registry,
        ) as executor:
            assert _answers(executor, queries) == oracle_ids  # workers attached
            pool = executor._proc_pool
            victims = pool.worker_pids()
            os.kill(victims[0], signal.SIGKILL)
            # The resilience policy retries the crashed shard task on the
            # respawned worker; answers never change.
            assert _answers(executor, queries) == oracle_ids
            deadline = time.monotonic() + 10
            while (
                registry.counter("pool.worker_respawns").value < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert registry.counter("pool.worker_respawns").value >= 1
            assert pool.worker_pids() != victims


class TestGenerationStamps:
    def _pool_fixture(self, tmp_path, corpus, shards=2, workers=1):
        engine = _fresh_engine(corpus, shards=shards)
        db = tmp_path / "db"
        engine.save(db)
        pool = ProcessShardPool(
            db,
            workers=workers,
            stamp=(storage_generation(db), engine.epoch),
        )
        return engine, db, pool

    def _fragment(self, engine):
        parts = engine.physical_plan(
            GraphQuery([next(iter(engine.catalog))])
        ).parts
        return resolve_fragment(engine.catalog, parts)

    def test_reattach_after_generation_swap(self, tmp_path, corpus):
        engine, db, pool = self._pool_fixture(tmp_path, corpus)
        try:
            fragment = self._fragment(engine)
            last = engine.n_shards - 1
            first = pool.execute(last, fragment)
            starts = engine.relation.shard_starts()
            assert first.length == engine.n_records - starts[last]
            # Commit a new generation with more records (appends extend
            # the last shard), restamp, and the workers must serve the
            # new mapping.
            extra = list(build_dataset("NY", n_records=30, seed=24).to_records())
            engine.append_records(extra)
            engine.save(db)
            pool.set_stamp((storage_generation(db), engine.epoch))
            grown = pool.execute(last, fragment)
            assert grown.length == first.length + len(extra)
        finally:
            pool.close()

    def test_stamp_ahead_of_disk_is_stale(self, tmp_path, corpus):
        engine, db, pool = self._pool_fixture(tmp_path, corpus)
        try:
            fragment = self._fragment(engine)
            pool.set_stamp((storage_generation(db) + 7, engine.epoch))
            with pytest.raises(StaleGenerationError):
                pool.execute(0, fragment)
        finally:
            pool.close()

    def test_stale_stamped_reply_is_discarded(self, tmp_path, corpus):
        """White-box: a reply carrying a stamp that no longer matches the
        pool's is never surfaced — execute() discards and re-dispatches."""
        engine, db, pool = self._pool_fixture(tmp_path, corpus)
        try:
            fragment = self._fragment(engine)
            old_stamp = pool.stamp
            fut = pool._submit(0, old_stamp, fragment, None)
            reply = pool._wait(fut, None)
            assert reply[3] == "ok"
            pool.set_stamp((old_stamp[0], old_stamp[1] + 1))
            # The reply's stamp lags the pool now; execute() would loop.
            assert reply[2] != pool.stamp
            # Dispose of the payload the way the loop does.
            from repro.exec.procpool import _unlink_payload

            _unlink_payload(reply[3], reply[4])
            # A fresh execute under the new stamp still answers (the
            # generation is unchanged, only the epoch moved).
            result = pool.execute(0, fragment)
            assert result.length == engine.relation.shard_starts()[1]
        finally:
            pool.close()

    def test_concurrent_stamp_flips_never_corrupt_answers(self, tmp_path, corpus):
        """Behavioral: epoch flips racing in-flight tasks only ever cause
        discard + re-dispatch, never a wrong or stale answer."""
        engine, db, pool = self._pool_fixture(tmp_path, corpus)
        try:
            fragment = self._fragment(engine)
            expected = pool.execute(0, fragment)
            generation = pool.stamp[0]
            stop = threading.Event()

            def flip():
                epoch = 1
                while not stop.is_set():
                    epoch += 1
                    pool.set_stamp((generation, epoch))
                    time.sleep(0.001)

            flipper = threading.Thread(target=flip)
            flipper.start()
            try:
                for _ in range(20):
                    assert pool.execute(0, fragment) == expected
            finally:
                stop.set()
                flipper.join()
        finally:
            pool.close()


class TestDeadlinesAndShutdown:
    def test_deadline_surfaces_as_timeout(self, tmp_path, corpus):
        engine = _fresh_engine(corpus, shards=2)
        db = tmp_path / "db"
        engine.save(db)
        pool = ProcessShardPool(
            db, workers=1, stamp=(storage_generation(db), engine.epoch)
        )
        try:
            parts = engine.physical_plan(
                GraphQuery([next(iter(engine.catalog))])
            ).parts
            fragment = resolve_fragment(engine.catalog, parts)
            pool.execute(0, fragment)  # attach first so timing is tight
            # Worker side: a task whose budget is already spent answers
            # "timeout" before touching the fold.
            fut = pool._submit(0, pool.stamp, fragment, 1e-9)
            reply = pool._wait(fut, None)
            assert reply[3] == "timeout"
            # End to end: a lapsed deadline surfaces as the same typed
            # error the in-process path raises.
            ctx = QueryContext.start(timeout=0.0005)
            time.sleep(0.002)
            with pytest.raises(QueryTimeoutError):
                pool.execute(0, fragment, ctx)
        finally:
            pool.close()

    def test_back_to_back_deadline_expiries_reuse_worker(self, tmp_path, corpus):
        """Regression: two consecutive deadline expiries through the SAME
        worker must leave its pipe healthy — the worker answers each
        abandoned/timed-out task exactly once, the collector disposes of
        the late replies, and the next normal query gets *its own* answer
        (not a stale reply), bit-exact and promptly."""
        engine = _fresh_engine(corpus, shards=2)
        db = tmp_path / "db"
        engine.save(db)
        pool = ProcessShardPool(
            db, workers=1, stamp=(storage_generation(db), engine.epoch)
        )
        try:
            fragment = _nonempty_fragment(engine, corpus)
            expected = pool.execute(0, fragment)  # attach + oracle
            baseline = _shm_snapshot()
            slow = fragment * 200_000  # ~1s of AND folds in the worker
            for _ in range(2):
                ctx = QueryContext.start(timeout=0.1)
                with pytest.raises(QueryTimeoutError):
                    pool.execute(0, slow, ctx)
            start = time.monotonic()
            assert pool.execute(0, fragment) == expected
            # The worker stopped burning on the dead folds: had either
            # abandoned task kept folding, the answer would have queued
            # behind ~1s of dead work.
            assert time.monotonic() - start < 0.75
            _assert_drained(pool, baseline)
        finally:
            pool.close()

    def test_disconnect_abandon_stops_dead_fold_promptly(self, tmp_path, corpus):
        """Regression (serving path): a client disconnect abandons the
        task with NO deadline — without cancel propagation the worker
        would fold the dead task to completion (~5s here) and head-of-line
        block the next request through the same pipe."""
        engine = _fresh_engine(corpus, shards=2)
        db = tmp_path / "db"
        engine.save(db)
        registry = MetricsRegistry()
        pool = ProcessShardPool(
            db,
            workers=1,
            stamp=(storage_generation(db), engine.epoch),
            registry=registry,
        )
        try:
            fragment = _nonempty_fragment(engine, corpus)
            expected = pool.execute(0, fragment)
            baseline = _shm_snapshot()
            dead = fragment * 1_000_000  # ~5s fold if never cancelled
            token = CancelToken()
            ctx = QueryContext.start(token=token)
            failures: list = []

            def doomed():
                try:
                    pool.execute(0, dead, ctx)
                    failures.append("cancelled query returned normally")
                except QueryCancelledError:
                    pass
                except Exception as exc:
                    failures.append(exc)

            waiter = threading.Thread(target=doomed)
            waiter.start()
            time.sleep(0.2)  # the worker is mid-fold now
            token.cancel()  # the "client" vanished
            waiter.join(timeout=5)
            assert not waiter.is_alive()
            assert not failures, failures[0]
            start = time.monotonic()
            assert pool.execute(0, fragment) == expected
            assert time.monotonic() - start < 2.0  # not behind ~5s of dead work
            assert registry.counter("pool.tasks_cancelled").value >= 1
            _assert_drained(pool, baseline)
        finally:
            pool.close()

    def test_close_is_idempotent_and_joins_workers(self, tmp_path, corpus):
        engine = _fresh_engine(corpus, shards=2)
        db = tmp_path / "db"
        engine.save(db)
        pool = ProcessShardPool(
            db, workers=2, stamp=(storage_generation(db), engine.epoch)
        )
        pids = pool.worker_pids()
        pool.close()
        pool.close()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: process is gone

    def test_submit_after_close_raises(self, tmp_path, corpus):
        engine = _fresh_engine(corpus, shards=2)
        db = tmp_path / "db"
        engine.save(db)
        pool = ProcessShardPool(
            db, workers=1, stamp=(storage_generation(db), engine.epoch)
        )
        pool.close()
        with pytest.raises(RuntimeError):
            pool.execute(0, (("element", 0),))

    def test_executor_close_removes_hooks_and_tempdir(self, corpus, queries):
        engine = _fresh_engine(corpus)
        executor = QueryExecutor(
            engine, jobs=1, exec_mode="process", workers=2
        )
        spool = executor._proc_dir
        assert spool is not None and spool.exists()
        executor.run_batch(queries[:2], fetch_measures=False)
        executor.close()
        assert engine._shard_compute is None
        assert not spool.exists()
        # The engine still answers in-process after the executor is gone.
        engine.query(queries[0], fetch_measures=False)

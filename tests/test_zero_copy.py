"""Zero-copy read path: mmap-backed bitmap attachments over saved layouts.

The process pool's workers never deserialize a relation — they attach to
the persisted generation directory with
:class:`~repro.columnstore.RelationBitmapReader` /
:class:`~repro.columnstore.BitmapAttachment`, which memory-map the packed
bitmap files read-only.  These tests pin the zero-copy contract: bitmaps
are views of the mapped file pages (no materialized copy), the mapping is
read-only (no write-back possible), two attachments map the same base
file (shared page cache), and every bitmap is bit-identical to the live
engine's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore import (
    BitmapAttachment,
    RelationBitmapReader,
    load_relation,
    storage_generation,
)
from repro.core import GraphAnalyticsEngine
from repro.workloads import build_dataset, sample_path_queries


@pytest.fixture(scope="module")
def corpus():
    return build_dataset("NY", n_records=180, seed=9)


def _engine(corpus, shards=1):
    engine = GraphAnalyticsEngine(shards=shards)
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
    queries = sample_path_queries(corpus, n_queries=2, n_edges=3, seed=5)
    engine.materialize_graph_views(queries, budget=1)
    return engine


def _view_name(engine) -> str:
    return next(iter(engine.graph_views))


def _memmap_base(bitmap) -> np.memmap:
    """Walk a bitmap's words down to the backing np.memmap (or fail)."""
    arr = np.asarray(bitmap.words())
    while not isinstance(arr, np.memmap):
        assert arr.base is not None, "bitmap words are not memmap-backed"
        arr = arr.base
    return arr


class TestRelationBitmapReader:
    def test_bitmaps_match_live_relation(self, corpus, tmp_path):
        engine = _engine(corpus)
        engine.save(tmp_path)
        reader = RelationBitmapReader(tmp_path)
        assert reader.n_records == engine.n_records
        for edge in corpus.to_columnar():
            edge_id = engine.catalog.get_id(edge)
            assert reader.has_element(edge_id)
            assert reader.bitmap(edge_id) == engine.relation.bitmap(edge_id)
        name = _view_name(engine)
        assert reader.view_bitmap(name) == engine.relation.view_bitmap(name)

    def test_element_bitmap_is_memmap_backed_readonly(self, corpus, tmp_path):
        engine = _engine(corpus)
        engine.save(tmp_path)
        reader = RelationBitmapReader(tmp_path)
        edge_id = engine.catalog.get_id(next(iter(corpus.to_columnar())))
        base = _memmap_base(reader.bitmap(edge_id))
        assert not base.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            base[0] = np.uint64(1)

    def test_no_write_back(self, corpus, tmp_path):
        """Attaching and reading every bitmap leaves the generation
        byte-identical on disk (the mapping can never dirty a page)."""
        engine = _engine(corpus)
        engine.save(tmp_path)
        snapshot = {
            f.relative_to(tmp_path): f.read_bytes()
            for f in tmp_path.rglob("*.npy")
        }
        reader = RelationBitmapReader(tmp_path)
        for edge in corpus.to_columnar():
            reader.bitmap(engine.catalog.get_id(edge)).count()
        reader.view_bitmap(_view_name(engine)).count()
        for f, payload in snapshot.items():
            assert (tmp_path / f).read_bytes() == payload

    def test_two_attachments_share_base_file(self, corpus, tmp_path):
        """Two attachments of one generation map the same file — the OS
        page cache backs both (the cross-process sharing the pool relies
        on, observable in-process via the memmap filename)."""
        engine = _engine(corpus)
        engine.save(tmp_path)
        edge_id = engine.catalog.get_id(next(iter(corpus.to_columnar())))
        first = _memmap_base(RelationBitmapReader(tmp_path).bitmap(edge_id))
        second = _memmap_base(RelationBitmapReader(tmp_path).bitmap(edge_id))
        assert first.filename == second.filename
        assert first.filename is not None

    def test_missing_element_is_zeros(self, corpus, tmp_path):
        engine = _engine(corpus)
        engine.save(tmp_path)
        reader = RelationBitmapReader(tmp_path)
        assert not reader.has_element(10**6)
        assert reader.bitmap(10**6).count() == 0

    def test_pre_sidecar_layout_falls_back_to_rows(self, corpus, tmp_path):
        """Layouts saved before the packed-bits sidecars existed rebuild
        bitmaps from the sparse row files (correct, just not zero-copy)."""
        engine = _engine(corpus)
        engine.save(tmp_path)
        import json

        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        gen_dir = tmp_path / manifest["directory"]
        for name in list(manifest["files"]):
            if name.endswith("_bits.npy"):
                del manifest["files"][name]
                (gen_dir / name).unlink()
        manifest_path.write_text(json.dumps(manifest))
        reader = RelationBitmapReader(tmp_path)
        for edge in corpus.to_columnar():
            edge_id = engine.catalog.get_id(edge)
            assert reader.bitmap(edge_id) == engine.relation.bitmap(edge_id)


class TestBitmapAttachment:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_geometry_and_contents(self, corpus, tmp_path, shards):
        engine = _engine(corpus, shards=shards)
        engine.save(tmp_path)
        attachment = BitmapAttachment(tmp_path)
        assert attachment.n_shards == shards
        assert attachment.n_records == engine.n_records
        assert attachment.shard_starts == engine.relation.shard_starts()
        assert attachment.generation == storage_generation(tmp_path)
        edge_id = engine.catalog.get_id(next(iter(corpus.to_columnar())))
        merged = np.concatenate(
            [r.bitmap(edge_id).to_indices() + s
             for r, s in zip(attachment.readers, attachment.shard_starts)]
        )
        assert merged.tolist() == engine.relation.bitmap(edge_id).to_indices().tolist()

    def test_generation_advances_on_resave(self, corpus, tmp_path):
        engine = _engine(corpus, shards=2)
        engine.save(tmp_path)
        first = storage_generation(tmp_path)
        engine.save(tmp_path)
        assert storage_generation(tmp_path) == first + 1


class TestMmapModeLoad:
    def test_load_relation_mmap_mode(self, corpus, tmp_path):
        engine = _engine(corpus)
        engine.save(tmp_path)
        eager = load_relation(tmp_path)
        lazy = load_relation(tmp_path, verify=False, mmap_mode="r")
        assert lazy.n_records == eager.n_records
        for edge_id in eager.element_ids():
            assert lazy.bitmap(edge_id) == eager.bitmap(edge_id)

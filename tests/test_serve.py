"""Daemon concurrency and lifecycle: the behaviors only a live server has.

The differential suite proves the daemon doesn't change answers and the
fuzz suite proves it survives garbage; this one covers the moving parts:
many clients against a concurrent writer (epoch bumps mid-workload),
client disconnect firing the engine-side cancel token, deadline expiry
*after* the 200 is committed (mid-stream truncation with an error line),
graceful shutdown draining inflight queries, and one tenant's admission
exhaustion leaving another tenant's throughput untouched.

Engine work is made observably slow/cancellable with thin executor
wrappers (``__getattr__`` delegation), so every timing-sensitive case is
driven deterministically rather than by racing real query latencies.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core import GraphAnalyticsEngine, GraphRecord
from repro.errors import QueryCancelledError
from repro.exec import QueryExecutor
from repro.obs import MetricsRegistry
from repro.serve import (
    ServeClient,
    ServeHTTPError,
    StreamTruncatedError,
    start_in_thread,
)
from repro.serve.server import ServeConfig
from repro.serve.tenants import TenantGate, TenantPolicy

N_RECORDS = 60


def make_records(n=N_RECORDS, offset=0):
    return [
        GraphRecord(
            f"r{offset + i:04d}",
            {("a", "b"): float(offset + i), ("b", "c"): 2.0, ("c", "d"): 0.5},
        )
        for i in range(n)
    ]


def make_executor(jobs=2, cache_mb=4, n=N_RECORDS):
    engine = GraphAnalyticsEngine()
    engine.load_records(make_records(n))
    registry = MetricsRegistry()
    return QueryExecutor(
        engine, jobs=jobs, cache_mb=cache_mb, registry=registry
    )


class _Wrapper:
    """Delegating executor wrapper; subclasses override run_one."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)


class SlowExecutor(_Wrapper):
    """Cooperatively-cancellable slow queries: spins until ``delay`` has
    passed, checking the context (like a long shard fold would)."""

    def __init__(self, inner, delay=0.3):
        super().__init__(inner)
        self.delay = delay
        self.cancelled = threading.Event()
        self.started = threading.Event()

    def run_one(self, query, fetch_measures=True, ctx=None, **kw):
        self.started.set()
        end = time.monotonic() + self.delay
        try:
            while time.monotonic() < end:
                if ctx is not None:
                    ctx.check()
                time.sleep(0.01)
        except QueryCancelledError:
            self.cancelled.set()
            raise
        return self._inner.run_one(
            query, fetch_measures=fetch_measures, ctx=ctx, **kw
        )


class OutlastDeadline(_Wrapper):
    """Computes the full answer, then stalls past the query's deadline —
    so the timeout can only surface *mid-stream*."""

    def run_one(self, query, fetch_measures=True, ctx=None, **kw):
        result = self._inner.run_one(
            query, fetch_measures=fetch_measures, ctx=None, **kw
        )
        if ctx is not None and ctx.deadline is not None:
            time.sleep(max(ctx.deadline.remaining(), 0.0) + 0.05)
        return result


class TestConcurrentClientsAndWriter:
    def test_multi_client_stress_with_concurrent_writer(self):
        """8 reader threads × queries against a writer appending batches:
        every answer must be internally consistent — the row count of the
        epoch it was served at — and epochs must be monotone per client."""
        executor = make_executor(jobs=4, cache_mb=8)
        handle = start_in_thread(executor)
        counts_by_epoch = {executor.epoch: N_RECORDS}
        failures: list = []
        stop = threading.Event()

        def writer():
            with ServeClient(*handle.address) as client:
                for batch in range(4):
                    records = make_records(10, offset=1000 + batch * 10)
                    reply = client.append(
                        [
                            {
                                "id": r.record_id,
                                "measures": [
                                    [u, v, val]
                                    for (u, v), val in r.measures().items()
                                ],
                            }
                            for r in records
                        ]
                    )
                    counts_by_epoch[reply["epoch"]] = (
                        N_RECORDS + (batch + 1) * 10
                    )
                    time.sleep(0.02)
            stop.set()

        def reader():
            try:
                with ServeClient(*handle.address) as client:
                    last_epoch = -1
                    while not stop.is_set():
                        result = client.query({"q": "a -> b"})
                        assert result.epoch >= last_epoch, "epoch went backwards"
                        last_epoch = result.epoch
                        expected = counts_by_epoch.get(result.epoch)
                        if expected is not None:
                            assert len(result.record_ids) == expected, (
                                f"epoch {result.epoch}: "
                                f"{len(result.record_ids)} != {expected}"
                            )
            except Exception as exc:  # surfaced below
                failures.append(exc)

        try:
            readers = [threading.Thread(target=reader) for _ in range(8)]
            w = threading.Thread(target=writer)
            for t in readers:
                t.start()
            w.start()
            w.join(timeout=30)
            stop.set()
            for t in readers:
                t.join(timeout=30)
            assert not failures, failures[0]
            with ServeClient(*handle.address) as client:
                final = client.query({"q": "a -> b"})
                assert len(final.record_ids) == N_RECORDS + 40
        finally:
            handle.stop()
            executor.close()


class TestCancellation:
    def test_client_disconnect_cancels_engine_work(self):
        """Dropping the socket mid-query fires the CancelToken: the engine
        stops (the wrapper observes QueryCancelledError) instead of
        finishing work nobody will read."""
        executor = make_executor()
        slow = SlowExecutor(executor, delay=10.0)  # would block 10s if leaked
        handle = start_in_thread(slow)
        try:
            body = b'{"q": "a -> b"}'
            head = (
                f"POST /query HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            sock = socket.create_connection(handle.address, timeout=5)
            sock.sendall(head + body)
            assert slow.started.wait(timeout=5), "query never reached engine"
            sock.close()  # vanish mid-query
            assert slow.cancelled.wait(timeout=5), (
                "disconnect did not cancel the engine-side query"
            )
            # Daemon is still healthy for the next client.
            with ServeClient(*handle.address) as client:
                assert client.healthz()["status"] == "ok"
        finally:
            handle.stop()
            executor.close()

    def test_deadline_expiry_mid_stream_truncates_with_error_line(self):
        """Once the 200 is on the wire the daemon can't change the status;
        an expired deadline mid-stream must end the NDJSON with a
        structured error line and close the connection."""
        executor = make_executor()
        wrapped = OutlastDeadline(executor)
        config = ServeConfig(stream_check_every=1)
        handle = start_in_thread(wrapped, config=config)
        try:
            with ServeClient(*handle.address) as client:
                with pytest.raises(StreamTruncatedError) as err:
                    client.query({"q": "a -> b", "timeout_ms": 150})
            assert err.value.error["code"] == "timeout"
            assert err.value.error["exit_code"] == 3
            # Header line decoded fine; fewer rows than promised arrived.
            assert len(err.value.lines) >= 1
            import json

            header = json.loads(err.value.lines[0])
            assert header["count"] == N_RECORDS
            assert len(err.value.lines) - 1 < header["count"]
            with ServeClient(*handle.address) as client:
                assert client.healthz()["status"] == "ok"
        finally:
            handle.stop()
            executor.close()

    def test_deadline_before_execution_is_clean_504(self):
        executor = make_executor()
        slow = SlowExecutor(executor, delay=5.0)
        handle = start_in_thread(slow)
        try:
            with ServeClient(*handle.address) as client:
                with pytest.raises(ServeHTTPError) as err:
                    client.query({"q": "a -> b", "timeout_ms": 50})
                assert err.value.status == 504
                assert err.value.code == "timeout"
                assert err.value.exit_code == 3
        finally:
            handle.stop()
            executor.close()


class TestGracefulShutdown:
    def test_stop_drains_inflight_queries(self):
        """stop() must let a query already executing finish and deliver
        its complete response before the listener dies."""
        executor = make_executor()
        slow = SlowExecutor(executor, delay=0.4)
        handle = start_in_thread(slow)
        results: list = []
        failures: list = []

        def run_query():
            try:
                with ServeClient(*handle.address) as client:
                    results.append(client.query({"q": "a -> b"}))
            except Exception as exc:
                failures.append(exc)

        t = threading.Thread(target=run_query)
        t.start()
        assert slow.started.wait(timeout=5)
        handle.stop(drain_s=10)  # returns only when drained
        t.join(timeout=10)
        executor.close()
        assert not failures, failures[0]
        assert len(results) == 1
        assert len(results[0].record_ids) == N_RECORDS

    def test_new_connections_refused_after_stop(self):
        executor = make_executor()
        handle = start_in_thread(executor)
        address = handle.address
        handle.stop()
        executor.close()
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=1).close()


class TestTenantIsolation:
    def test_tenant_exhaustion_does_not_starve_other_tenant(self):
        """Tenant A saturates its per-tenant inflight budget (collecting
        429s); tenant B, under the same daemon, sees zero rejections."""
        executor = make_executor(jobs=4)
        slow = SlowExecutor(executor, delay=0.25)
        gate = TenantGate(policy=TenantPolicy(max_inflight=2, max_wait_s=0.0))
        # Wide engine bridge so tenant A's queries occupy admission slots,
        # not all the worker threads.
        config = ServeConfig(engine_threads=12)
        handle = start_in_thread(slow, gate=gate, config=config)
        a_ok, a_rejected, b_ok, b_rejected = [], [], [], []
        failures: list = []

        def tenant_a(idx):
            try:
                with ServeClient(*handle.address) as client:
                    try:
                        client.query({"q": "a -> b", "tenant": "tenant-a"})
                        a_ok.append(idx)
                    except ServeHTTPError as err:
                        assert err.status == 429, err
                        assert err.code == "admission-rejected"
                        assert err.exit_code == 4
                        a_rejected.append(idx)
            except Exception as exc:
                failures.append(exc)

        def tenant_b():
            try:
                with ServeClient(*handle.address) as client:
                    for _ in range(3):
                        try:
                            client.query({"q": "a -> b", "tenant": "tenant-b"})
                            b_ok.append(1)
                        except ServeHTTPError:
                            b_rejected.append(1)
            except Exception as exc:
                failures.append(exc)

        try:
            storm = [
                threading.Thread(target=tenant_a, args=(i,)) for i in range(6)
            ]
            quiet = threading.Thread(target=tenant_b)
            for t in storm:
                t.start()
            quiet.start()
            for t in storm:
                t.join(timeout=30)
            quiet.join(timeout=30)
            assert not failures, failures[0]
            assert a_rejected, "tenant A never hit its admission limit"
            assert a_ok, "tenant A should still get some queries through"
            assert b_ok and not b_rejected, (
                f"tenant B was starved: ok={len(b_ok)} "
                f"rejected={len(b_rejected)}"
            )
            # The admission slot is released after the last response byte
            # is written, so the client can observe its answer a tick
            # before the server closes the permit — poll briefly.
            deadline = time.monotonic() + 5.0
            while gate.inflight() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert gate.inflight() == 0
        finally:
            handle.stop()
            executor.close()

    def test_rejected_tenant_gets_retry_after_header(self):
        executor = make_executor()
        slow = SlowExecutor(executor, delay=0.5)
        gate = TenantGate(policy=TenantPolicy(max_inflight=1, max_wait_s=0.0))
        handle = start_in_thread(slow, gate=gate)
        try:
            blocker = threading.Thread(
                target=lambda: ServeClient(*handle.address).query(
                    {"q": "a -> b", "tenant": "t1"}
                )
            )
            blocker.start()
            assert slow.started.wait(timeout=5)
            with ServeClient(*handle.address) as client:
                response = client.request(
                    "POST", "/query", {"q": "a -> b", "tenant": "t1"}
                )
                assert response.status == 429
                assert "retry-after" in response.headers
            blocker.join(timeout=10)
        finally:
            handle.stop()
            executor.close()

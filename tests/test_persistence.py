"""Tests for relation persistence and the SQL renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore import (
    Bitmap,
    MasterRelation,
    MeasureColumn,
    load_relation,
    relation_disk_usage,
    save_relation,
)
from repro.core import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    PathAggregationQuery,
    render_aggregation,
    render_graph_query,
)


@pytest.fixture
def relation():
    rel = MasterRelation(partition_width=2)
    rel.append_row({0: 1.0, 1: 2.0})
    rel.append_row({1: 3.0, 2: 4.0})
    rel.add_graph_view("gv1", Bitmap.from_indices(2, [0]))
    rel.add_aggregate_view("av1:sum", MeasureColumn.from_optionals([5.0, None]))
    return rel


class TestPersistence:
    def test_roundtrip_columns(self, relation, tmp_path):
        save_relation(relation, tmp_path / "db")
        loaded = load_relation(tmp_path / "db")
        assert loaded.n_records == 2
        assert loaded.partition_width == 2
        for edge_id in (0, 1, 2):
            assert loaded.bitmap(edge_id) == relation.bitmap(edge_id)
            a = relation.measures(edge_id)
            b = loaded.measures(edge_id)
            assert np.array_equal(np.nan_to_num(a), np.nan_to_num(b))

    def test_roundtrip_views(self, relation, tmp_path):
        save_relation(relation, tmp_path / "db")
        loaded = load_relation(tmp_path / "db")
        assert loaded.view_bitmap("gv1") == relation.view_bitmap("gv1")
        assert loaded.aggregate_view_measures("av1:sum")[0] == 5.0
        assert np.isnan(loaded.aggregate_view_measures("av1:sum")[1])

    def test_disk_usage_positive(self, relation, tmp_path):
        save_relation(relation, tmp_path / "db")
        assert relation_disk_usage(tmp_path / "db") > 0

    def test_disk_usage_grows_with_data(self, tmp_path):
        small = MasterRelation()
        small.append_row({0: 1.0})
        save_relation(small, tmp_path / "small")
        big = MasterRelation()
        for i in range(200):
            big.append_row({j: float(j) for j in range(10)})
        save_relation(big, tmp_path / "big")
        assert relation_disk_usage(tmp_path / "big") > relation_disk_usage(
            tmp_path / "small"
        )


class TestSqlGeneration:
    @pytest.fixture
    def engine(self):
        e = GraphAnalyticsEngine()
        e.load_records(
            [
                GraphRecord("r1", {("A", "B"): 1.0, ("B", "C"): 2.0, ("C", "D"): 3.0}),
            ]
        )
        return e

    def test_plain_query_sql(self, engine):
        plan = engine.plan_query(GraphQuery.from_node_chain("A", "B", "C"))
        sql = render_graph_query(plan, engine.catalog)
        assert sql.startswith("SELECT recid, m0, m1")
        assert "WHERE b0 = 1 AND b1 = 1" in sql
        assert "JOIN" not in sql  # the paper's no-join selling point

    def test_view_rewritten_sql(self, engine):
        q = GraphQuery.from_node_chain("A", "B", "C")
        engine.materialize_graph_views([q], budget=1)
        plan = engine.plan_query(q)
        sql = render_graph_query(plan, engine.catalog)
        assert "gv1 = 1" in sql
        assert "b0" not in sql.split("WHERE")[1]

    def test_aggregation_sql_sum_uses_plus(self, engine):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        plan = engine.plan_aggregation(q)
        sql = render_aggregation(plan, engine.catalog)
        assert "m0 + m1 AS path0_sum" in sql

    def test_aggregation_sql_with_view(self, engine):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        engine.materialize_aggregate_views([q], budget=1)
        plan = engine.plan_aggregation(q)
        sql = render_aggregation(plan, engine.catalog)
        assert "mp_av" in sql
        assert "bp_av" in sql

    def test_aggregation_sql_non_sum_uses_function(self, engine):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "max")
        plan = engine.plan_aggregation(q)
        sql = render_aggregation(plan, engine.catalog)
        assert "MAX(m0, m1)" in sql

    def test_unknown_edge_rendered_with_placeholder(self, engine):
        plan = engine.plan_query(GraphQuery([("Z", "Q")]))
        sql = render_graph_query(plan, engine.catalog)
        assert "b?" in sql

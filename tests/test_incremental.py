"""Tests for incremental view maintenance on record appends."""

from __future__ import annotations


from repro.core import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    Path,
    PathAggregationQuery,
)


def fresh_engine():
    engine = GraphAnalyticsEngine()
    engine.load_records(
        [
            GraphRecord("r1", {("A", "B"): 1.0, ("B", "C"): 2.0}),
            GraphRecord("r2", {("B", "C"): 3.0}),
        ]
    )
    return engine


class TestGraphViewMaintenance:
    def test_append_extends_graph_views(self):
        engine = fresh_engine()
        q = GraphQuery.from_node_chain("A", "B", "C")
        engine.materialize_graph_views([q], budget=1)
        engine.append_records(
            [GraphRecord("r3", {("A", "B"): 4.0, ("B", "C"): 5.0})]
        )
        result = engine.query(q)
        assert result.record_ids == ["r1", "r3"]
        # The view must have been used AND be correct.
        assert engine.plan_query(q).view_names

    def test_appended_nonmatching_record_gets_zero_bit(self):
        engine = fresh_engine()
        q = GraphQuery.from_node_chain("A", "B", "C")
        engine.materialize_graph_views([q], budget=1)
        engine.append_records([GraphRecord("r3", {("X", "Y"): 1.0})])
        assert engine.query(q).record_ids == ["r1"]

    def test_incremental_equals_rebuild(self):
        incremental = fresh_engine()
        q = GraphQuery.from_node_chain("A", "B", "C")
        incremental.materialize_graph_views([q], budget=1)
        new = [
            GraphRecord("r3", {("A", "B"): 4.0, ("B", "C"): 5.0}),
            GraphRecord("r4", {("A", "B"): 6.0}),
        ]
        incremental.append_records(new)

        rebuilt = fresh_engine()
        rebuilt.load_records(new)
        rebuilt.materialize_graph_views([q], budget=1)

        assert incremental.query(q).record_ids == rebuilt.query(q).record_ids

    def test_plain_query_after_append_without_views(self):
        engine = fresh_engine()
        engine.append_records([GraphRecord("r3", {("B", "C"): 9.0})])
        assert engine.query(GraphQuery([("B", "C")])).record_ids == [
            "r1", "r2", "r3",
        ]


class TestAggregateViewMaintenance:
    def test_append_extends_aggregate_views(self):
        engine = fresh_engine()
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        engine.materialize_aggregate_views([q], budget=1)
        engine.append_records(
            [GraphRecord("r3", {("A", "B"): 4.0, ("B", "C"): 5.0})]
        )
        result = engine.aggregate(q)
        assert result.record_ids == ["r1", "r3"]
        values = result.path_values[Path.closed("A", "B", "C")]
        assert values.tolist() == [3.0, 9.0]
        # Confirm the view answered it (single mp column fetched).
        assert result.plan.structural_agg_view_names

    def test_appended_null_for_nonmatching(self):
        engine = fresh_engine()
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        engine.materialize_aggregate_views([q], budget=1)
        engine.append_records([GraphRecord("r3", {("A", "B"): 4.0})])
        result = engine.aggregate(q)
        assert result.record_ids == ["r1"]

    def test_avg_view_sub_aggregates_maintained(self):
        engine = fresh_engine()
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "avg")
        engine.materialize_aggregate_views([q], budget=1, function="avg")
        engine.append_records(
            [GraphRecord("r3", {("A", "B"): 4.0, ("B", "C"): 6.0})]
        )
        values = engine.aggregate(q).path_values[Path.closed("A", "B", "C")]
        assert values.tolist() == [1.5, 5.0]

    def test_batch_append(self):
        engine = fresh_engine()
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        engine.materialize_aggregate_views([q], budget=1)
        batch = [
            GraphRecord(f"n{i}", {("A", "B"): float(i), ("B", "C"): 1.0})
            for i in range(10)
        ]
        engine.append_records(batch)
        result = engine.aggregate(q)
        assert len(result) == 11  # r1 plus the ten appended

"""Tests for view definitions and monotonicity (supersession) predicates."""

from __future__ import annotations

import pytest

from repro.core import (
    AggregateGraphView,
    GraphQuery,
    GraphView,
    Path,
    PathAggregationQuery,
    aggregate_benefit,
    graph_view_supersedes,
    path_occurs_in,
)


class TestGraphView:
    def test_basic(self):
        view = GraphView("v", [("A", "B"), ("B", "C")])
        assert len(view.elements) == 2

    def test_single_element_rejected(self):
        with pytest.raises(ValueError):
            GraphView("v", [("A", "B")])

    def test_usable_for_subset_queries_only(self):
        view = GraphView("v", [("A", "B"), ("B", "C")])
        superset = GraphQuery([("A", "B"), ("B", "C"), ("C", "D")])
        partial = GraphQuery([("A", "B"), ("X", "Y")])
        assert view.usable_for(superset)
        assert not view.usable_for(partial)

    def test_saving_is_size_minus_one(self):
        view = GraphView("v", [("A", "B"), ("B", "C"), ("C", "D")])
        q = GraphQuery([("A", "B"), ("B", "C"), ("C", "D"), ("D", "E")])
        assert view.saving(q) == 2
        assert view.saving(GraphQuery([("X", "Y")])) == 0

    def test_equality(self):
        assert GraphView("v", [("A", "B"), ("B", "C")]) == GraphView(
            "v", [("B", "C"), ("A", "B")]
        )


class TestGraphViewSupersession:
    AB, BC, CD = ("A", "B"), ("B", "C"), ("C", "D")

    def test_larger_view_supersedes_when_cooccurring(self):
        # Every query containing {AB} also contains {AB, BC}.
        workload = [GraphQuery([self.AB, self.BC, self.CD])]
        assert graph_view_supersedes({self.AB, self.BC}, {self.AB, self.CD}, workload) is False
        assert graph_view_supersedes(
            {self.AB, self.BC}, {self.AB}, workload
        )

    def test_no_supersession_when_query_separates(self):
        # One query has AB without BC, so {AB,BC} does not supersede {AB}.
        workload = [
            GraphQuery([self.AB, self.BC]),
            GraphQuery([self.AB, self.CD]),
        ]
        assert not graph_view_supersedes({self.AB, self.BC}, {self.AB}, workload)

    def test_requires_strict_subset(self):
        workload = [GraphQuery([self.AB, self.BC])]
        assert not graph_view_supersedes({self.AB}, {self.AB}, workload)
        assert not graph_view_supersedes({self.AB}, {self.AB, self.BC}, workload)

    def test_paper_claim_query_not_superseded_by_superquery(self):
        # Section 5.2: Gqi ⊂ Gqj does not imply the view Gqi is superseded
        # by Gqj — query Gqi itself separates them.
        small = GraphQuery([self.AB, self.BC])
        big = GraphQuery([self.AB, self.BC, self.CD])
        workload = [small, big]
        assert not graph_view_supersedes(big.elements, small.elements, workload)


class TestAggregateGraphView:
    def test_distributive_stores_itself(self):
        view = AggregateGraphView("av", Path.closed("A", "B", "C"), "sum")
        assert view.stored_functions() == ("sum",)
        assert view.column_names() == ("av:sum",)

    def test_algebraic_stores_sub_aggregates(self):
        view = AggregateGraphView("av", Path.closed("A", "B", "C"), "avg")
        assert view.stored_functions() == ("sum", "count")

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            AggregateGraphView("av", Path.closed("A", "B"), "median")

    def test_elements_include_measured_nodes(self):
        view = AggregateGraphView("av", Path.closed("A", "B"), "sum")
        assert view.elements({"B"}) == (("A", "B"), ("B", "B"))

    def test_usable_for_contiguous_occurrence(self):
        view = AggregateGraphView("av", Path.closed("E", "F", "G"), "sum")
        q = PathAggregationQuery(
            GraphQuery.from_node_chain("A", "C", "E", "F", "G"), "sum"
        )
        assert view.usable_for(q)

    def test_not_usable_for_disconnected_elements(self):
        view = AggregateGraphView("av", Path.closed("E", "F", "G"), "sum")
        q = PathAggregationQuery(GraphQuery.from_node_chain("E", "F"), "sum")
        assert not view.usable_for(q)


class TestPathOccursIn:
    def test_occurs(self):
        q = GraphQuery.from_node_chain("A", "B", "C", "D")
        assert path_occurs_in(Path.closed("B", "C", "D"), q)

    def test_does_not_occur_noncontiguously(self):
        # B and D are both in the query but B,D is not a query path.
        q = GraphQuery.from_node_chain("A", "B", "C", "D")
        assert not path_occurs_in(Path.closed("B", "D"), q)

    def test_diamond_branch(self):
        q = GraphQuery([("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")])
        assert path_occurs_in(Path.closed("A", "B", "D"), q)
        assert not path_occurs_in(Path.closed("B", "C"), q)


class TestAggregateBenefit:
    def test_benefit_grows_with_length(self):
        q = PathAggregationQuery(
            GraphQuery.from_node_chain("A", "B", "C", "D", "E"), "sum"
        )
        short = aggregate_benefit(Path.closed("A", "B", "C"), q)
        long = aggregate_benefit(Path.closed("A", "B", "C", "D"), q)
        assert long > short > 0

    def test_benefit_zero_when_unusable(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B"), "sum")
        assert aggregate_benefit(Path.closed("X", "Y", "Z"), q) == 0

    def test_monotonicity_property(self):
        # p1 ⊆ p2 ⊆ pq implies benefit(p1) <= benefit(p2)  (Section 5.4).
        q = PathAggregationQuery(
            GraphQuery.from_node_chain("A", "B", "C", "D", "E"), "sum"
        )
        p1 = Path.closed("B", "C")
        p2 = Path.closed("B", "C", "D")
        p3 = Path.closed("A", "B", "C", "D", "E")
        b1, b2, b3 = (aggregate_benefit(p, q) for p in (p1, p2, p3))
        assert b1 <= b2 <= b3

"""Smoke tests for the example scripts (the fast ones run end to end)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickstart:
    def test_runs_and_reproduces_table1(self):
        out = run_example("quickstart.py")
        # Table 1's r2 row: m2..m7 = 1 2 2 1 4 1, bitmaps 0 1 1 1 1 1 1.
        assert "r2  NULL     1     2   2   1     4     1   0   1   1   1   1   1   1" in out
        # The §3.4 example: SUM over (A,C,E,F) on record 2 is 7.
        assert "record r2, path [A,C,E,F]: 7" in out
        # The §5.1.3 aggregate view: mp1 = (NULL, 5, 4).
        assert "['NULL', '5', '4']" in out

    def test_view_rewrite_shown(self):
        out = run_example("quickstart.py")
        assert "WHERE bp_av1 = 1" in out


@pytest.mark.parametrize(
    "script",
    ["scm_delivery.py", "view_advisor.py", "adaptive_dashboard.py"],
)
class TestHeavierExamples:
    def test_exits_cleanly(self, script):
        out = run_example(script, timeout=300)
        assert out.strip()
        assert "error" not in out.lower() or "0 error" in out.lower()

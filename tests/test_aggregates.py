"""Tests for aggregate functions and partial-aggregate composition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AggregateFunction, get_function, register_function
from repro.core.aggregates import FUNCTIONS


def arrays(*rows):
    return [np.asarray(r, dtype=np.float64) for r in rows]


class TestBasicFunctions:
    def test_sum(self):
        out = get_function("sum")(arrays([1, 2], [3, 4]))
        assert out.tolist() == [4.0, 6.0]

    def test_sum_skips_nan(self):
        out = get_function("sum")(arrays([1, np.nan], [3, 4]))
        assert out.tolist() == [4.0, 4.0]

    def test_min_max(self):
        assert get_function("min")(arrays([1, 9], [3, 4])).tolist() == [1.0, 4.0]
        assert get_function("max")(arrays([1, 9], [3, 4])).tolist() == [3.0, 9.0]

    def test_count(self):
        out = get_function("count")(arrays([1, np.nan], [np.nan, np.nan]))
        assert out.tolist() == [1.0, 0.0]

    def test_avg(self):
        out = get_function("avg")(arrays([1, 2], [3, 6]))
        assert out.tolist() == [2.0, 4.0]

    def test_avg_all_null_is_nan(self):
        out = get_function("avg")(arrays([np.nan], [np.nan]))
        assert np.isnan(out[0])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            get_function("sum")([])

    def test_lookup_case_insensitive(self):
        assert get_function("SUM") is get_function("sum")

    def test_unknown_function(self):
        with pytest.raises(KeyError, match="unknown aggregate"):
            get_function("median")


class TestRegistry:
    def test_register_custom(self):
        fn = AggregateFunction("teststd", lambda a: np.nanstd(np.vstack(a), axis=0))
        register_function(fn)
        try:
            assert get_function("teststd") is fn
        finally:
            del FUNCTIONS["teststd"]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_function(AggregateFunction("sum", lambda a: a))

    def test_algebraic_flags(self):
        assert not get_function("sum").is_algebraic()
        assert get_function("avg").is_algebraic()
        assert get_function("avg").sub_aggregates == ("sum", "count")


class TestPartialComposition:
    """Pre-aggregated partials must merge to the same result as raw input
    — the property aggregate graph views rely on (Section 5.1.2)."""

    def test_sum_partials(self):
        fn = get_function("sum")
        raw = arrays([1, 2], [3, 4], [5, 6])
        direct = fn(raw)
        partial = fn(raw[:2])
        merged = fn.merge_partials([partial, fn.lift(raw[2])])
        assert merged.tolist() == direct.tolist()

    def test_count_partials_merge_with_sum(self):
        fn = get_function("count")
        raw = arrays([1, np.nan], [3, 4], [5, np.nan])
        direct = fn(raw)
        partial = fn(raw[:2])
        merged = fn.merge_partials([partial, fn.lift(raw[2])])
        assert merged.tolist() == direct.tolist()

    def test_count_lift_is_presence(self):
        fn = get_function("count")
        assert fn.lift(np.array([1.0, np.nan])).tolist() == [1.0, 0.0]

    def test_min_partials(self):
        fn = get_function("min")
        raw = arrays([5, 1], [2, 8], [7, 0])
        direct = fn(raw)
        merged = fn.merge_partials([fn(raw[:2]), fn.lift(raw[2])])
        assert merged.tolist() == direct.tolist()

    @given(
        st.lists(
            st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=3),
            min_size=2,
            max_size=6,
        ),
        st.sampled_from(["sum", "min", "max", "count"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_split_merges_to_direct(self, rows, name):
        fn = get_function(name)
        raw = arrays(*rows)
        direct = fn(raw)
        for cut in range(1, len(raw)):
            left = fn(raw[:cut])
            rights = [fn.lift(r) for r in raw[cut:]]
            merged = fn.merge_partials([left] + rights)
            assert np.allclose(merged, direct)

    @given(
        st.lists(
            st.lists(st.floats(min_value=-50, max_value=50), min_size=2, max_size=2),
            min_size=2,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_avg_from_sub_aggregates(self, rows):
        raw = arrays(*rows)
        avg = get_function("avg")
        direct = avg(raw)
        for cut in range(1, len(raw)):
            sub = {}
            for sub_name in avg.sub_aggregates:
                sub_fn = get_function(sub_name)
                partial = sub_fn(raw[:cut])
                lifted = [sub_fn.lift(r) for r in raw[cut:]]
                sub[sub_name] = sub_fn.merge_partials([partial] + lifted)
            assert np.allclose(avg.finalize(sub), direct)

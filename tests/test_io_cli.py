"""Tests for record interchange formats and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import GraphRecord
from repro.io import (
    read_csv_triplets,
    read_jsonl,
    write_csv_triplets,
    write_jsonl,
)

RECORDS = [
    GraphRecord("r1", {("A", "B"): 1.5, ("B", "B"): 2.0}, metadata={"kind": "fast"}),
    GraphRecord("r2", {("B", "C"): 3.25}),
]


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        assert write_jsonl(RECORDS, path) == 2
        back = list(read_jsonl(path))
        assert back == RECORDS
        assert back[0].metadata == {"kind": "fast"}

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "records.jsonl"
        write_jsonl(RECORDS, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_jsonl(path))) == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "r1", "measures": [["A","B",1]]}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            list(read_jsonl(path))

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"measures": []}\n')
        with pytest.raises(ValueError, match="missing field"):
            list(read_jsonl(path))

    def test_malformed_measure(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "r", "measures": [["A","B"]]}\n')
        with pytest.raises(ValueError, match="u, v, value"):
            list(read_jsonl(path))


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "records.csv"
        assert write_csv_triplets(RECORDS, path) == 2
        back = list(read_csv_triplets(path))
        assert [r.record_id for r in back] == ["r1", "r2"]
        assert back[0].measure(("A", "B")) == 1.5
        assert back[0].measure(("B", "B")) == 2.0

    def test_no_header(self, tmp_path):
        path = tmp_path / "records.csv"
        write_csv_triplets(RECORDS, path, header=False)
        back = list(read_csv_triplets(path))
        assert len(back) == 2

    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("r1,A,B\n")
        with pytest.raises(ValueError, match="4 columns"):
            list(read_csv_triplets(path))


class TestCli:
    def _database(self, tmp_path):
        source = tmp_path / "records.jsonl"
        write_jsonl(RECORDS, source)
        db = tmp_path / "db"
        assert main(["load", str(source), str(db)]) == 0
        return db

    def test_load_and_stats(self, tmp_path, capsys):
        db = self._database(tmp_path)
        capsys.readouterr()
        assert main(["stats", str(db)]) == 0
        out = capsys.readouterr().out
        assert "records:            2" in out
        assert "element columns:    3" in out

    def test_query(self, tmp_path, capsys):
        db = self._database(tmp_path)
        capsys.readouterr()
        assert main(["query", str(db), "{(A,B)}"]) == 0
        out = capsys.readouterr().out
        assert "1 matching records" in out
        assert "r1" in out

    def test_query_ids_only(self, tmp_path, capsys):
        db = self._database(tmp_path)
        capsys.readouterr()
        assert main(["query", str(db), "{(B,C)}", "--ids-only"]) == 0
        assert "r2" in capsys.readouterr().out

    def test_aggregate(self, tmp_path, capsys):
        db = self._database(tmp_path)
        capsys.readouterr()
        assert main(["aggregate", str(db), "SUM {(A,B), (B,B)}"]) == 0
        out = capsys.readouterr().out
        assert "r1: 3.5" in out

    def test_csv_load(self, tmp_path, capsys):
        source = tmp_path / "records.csv"
        write_csv_triplets(RECORDS, source)
        db = tmp_path / "db"
        assert main(["load", str(source), str(db)]) == 0
        capsys.readouterr()
        assert main(["query", str(db), "{(A,B)}", "--ids-only"]) == 0
        assert "r1" in capsys.readouterr().out

    def test_bad_query_is_error_not_traceback(self, tmp_path, capsys):
        db = self._database(tmp_path)
        assert main(["query", str(db), "A ->"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_database(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 2

    def test_demo(self, capsys):
        assert main(["demo", "--records", "50"]) == 0
        out = capsys.readouterr().out
        assert "demo corpus: 50 records" in out


class TestObservabilityCli:
    """``repro explain`` / ``repro metrics`` end-to-end on the bundled
    Figure 2 example dataset."""

    @pytest.fixture
    def fig2_db(self, tmp_path):
        import pathlib

        examples = pathlib.Path(__file__).parent.parent / "examples"
        db = tmp_path / "db"
        assert main(["load", str(examples / "figure2.jsonl"), str(db)]) == 0
        return db, examples / "figure2_queries.txt"

    def test_explain_text(self, fig2_db, capsys):
        db, _ = fig2_db
        capsys.readouterr()
        assert main(["explain", str(db), "A -> D -> E"]) == 0
        out = capsys.readouterr().out
        assert "GraphQuery |elements|=2" in out
        assert "conjunction order:" in out
        assert "SQL:" in out

    def test_explain_is_deterministic_across_runs(self, fig2_db, capsys):
        db, _ = fig2_db
        capsys.readouterr()
        assert main(["explain", str(db), "SUM A -> D -> E"]) == 0
        first = capsys.readouterr().out
        assert main(["explain", str(db), "SUM A -> D -> E"]) == 0
        assert capsys.readouterr().out == first

    def test_explain_json(self, fig2_db, capsys):
        import json

        db, _ = fig2_db
        capsys.readouterr()
        assert main(["explain", str(db), "A -> D -> E", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["type"] == "graph-query"
        assert payload["answerable"] is True

    def test_explain_analyze(self, fig2_db, capsys):
        db, _ = fig2_db
        capsys.readouterr()
        assert main(
            ["explain", str(db), "A -> D -> E", "--analyze", "--cache-mb", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "actual: 3 records" in out
        assert "rows_matched: 3" in out

    def test_metrics_with_workload(self, fig2_db, capsys):
        db, queries = fig2_db
        capsys.readouterr()
        assert main(
            [
                "metrics", str(db),
                "--queries", str(queries),
                "--jobs", "2",
                "--cache-mb", "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "exec.queries_served" in out
        assert "io.bitmap_columns_fetched" in out
        assert "cache.hits" in out

    def test_metrics_json_dump(self, fig2_db, capsys, tmp_path):
        import json

        db, queries = fig2_db
        dump = tmp_path / "metrics.json"
        capsys.readouterr()
        assert main(
            [
                "metrics", str(db),
                "--queries", str(queries),
                "--json",
                "--output", str(dump),
            ]
        ) == 0
        payload = json.loads(dump.read_text())
        assert payload["exec.queries_served"]["value"] == 5
        stdout_payload = json.loads(capsys.readouterr().out)
        assert set(stdout_payload) == set(payload)

    def test_metrics_without_workload(self, fig2_db, capsys):
        db, _ = fig2_db
        capsys.readouterr()
        assert main(["metrics", str(db)]) == 0
        assert "(no metrics recorded)" in capsys.readouterr().out


class TestCliFmt:
    WORKLOAD = (
        "# paper queries\n"
        "\n"
        "a->b ->   c\n"
        "{(D,D)}\n"
        "sum {(A,B), (B,C)}  # Q1\n"
    )
    CANONICAL = (
        "# paper queries\n"
        "\n"
        "a -> b -> c\n"
        "D!\n"
        "SUM A -> B -> C  # Q1\n"
    )

    def test_formats_in_place(self, tmp_path, capsys):
        path = tmp_path / "queries.txt"
        path.write_text(self.WORKLOAD)
        assert main(["fmt", str(path)]) == 0
        assert path.read_text() == self.CANONICAL
        assert f"formatted {path}" in capsys.readouterr().err

    def test_idempotent(self, tmp_path, capsys):
        path = tmp_path / "queries.txt"
        path.write_text(self.WORKLOAD)
        assert main(["fmt", str(path)]) == 0
        capsys.readouterr()
        assert main(["fmt", str(path)]) == 0
        assert path.read_text() == self.CANONICAL
        # second run is a no-op: nothing reformatted
        assert "formatted" not in capsys.readouterr().err

    def test_check_mode_reports_without_writing(self, tmp_path, capsys):
        path = tmp_path / "queries.txt"
        path.write_text(self.WORKLOAD)
        assert main(["fmt", "--check", str(path)]) == 1
        assert path.read_text() == self.WORKLOAD
        assert f"would reformat {path}" in capsys.readouterr().out
        path.write_text(self.CANONICAL)
        assert main(["fmt", "--check", str(path)]) == 0

    def test_stdout_mode(self, tmp_path, capsys):
        path = tmp_path / "queries.txt"
        path.write_text(self.WORKLOAD)
        capsys.readouterr()
        assert main(["fmt", "--stdout", str(path)]) == 0
        assert capsys.readouterr().out == self.CANONICAL
        assert path.read_text() == self.WORKLOAD

    def test_syntax_error_reports_file_and_line(self, tmp_path, capsys):
        path = tmp_path / "queries.txt"
        path.write_text("a -> b\na -> -> c\n")
        assert main(["fmt", str(path)]) == 2
        err = capsys.readouterr().err
        assert str(path) in err
        assert "line 2" in err

    def test_examples_file_is_already_canonical(self, capsys):
        from pathlib import Path as FsPath

        examples = FsPath(__file__).parent.parent / "examples" / "figure2_queries.txt"
        assert main(["fmt", "--check", str(examples)]) == 0

"""Tests for the workload-adaptive view advisor."""

from __future__ import annotations

import pytest

from repro.advisor import AdaptiveViewAdvisor
from repro.core import GraphAnalyticsEngine, GraphQuery, GraphRecord


def engine_with_data():
    engine = GraphAnalyticsEngine()
    engine.load_records(
        [
            GraphRecord("r1", {("A", "B"): 1.0, ("B", "C"): 2.0, ("C", "D"): 3.0}),
            GraphRecord("r2", {("A", "B"): 4.0, ("B", "C"): 5.0}),
            GraphRecord("r3", {("C", "D"): 6.0, ("D", "E"): 7.0}),
        ]
    )
    return engine


HOT = GraphQuery.from_node_chain("A", "B", "C")
COLD = GraphQuery.from_node_chain("C", "D", "E")


class TestConstruction:
    def test_validation(self):
        engine = engine_with_data()
        with pytest.raises(ValueError):
            AdaptiveViewAdvisor(engine, budget=-1)
        with pytest.raises(ValueError):
            AdaptiveViewAdvisor(engine, budget=1, window=0)

    def test_refresh_on_empty_window(self):
        advisor = AdaptiveViewAdvisor(engine_with_data(), budget=2)
        summary = advisor.refresh()
        assert summary == {"kept": [], "added": [], "dropped": []}


class TestAdaptation:
    def test_materializes_hot_query(self):
        engine = engine_with_data()
        advisor = AdaptiveViewAdvisor(engine, budget=2)
        for _ in range(5):
            advisor.execute(HOT)
        summary = advisor.refresh()
        assert summary["added"]
        assert HOT.elements in set(advisor.managed_views.values())
        # Subsequent executions use the new view.
        assert engine.plan_query(HOT).view_names

    def test_answers_unchanged_across_refreshes(self):
        engine = engine_with_data()
        advisor = AdaptiveViewAdvisor(engine, budget=2)
        expected = engine.query(HOT).record_ids
        for _ in range(3):
            advisor.execute(HOT)
            advisor.refresh()
        assert engine.query(HOT).record_ids == expected

    def test_drops_views_when_workload_shifts(self):
        engine = engine_with_data()
        advisor = AdaptiveViewAdvisor(engine, budget=1, window=4)
        for _ in range(4):
            advisor.observe(HOT)
        advisor.refresh()
        hot_views = set(advisor.managed_views.values())
        assert HOT.elements in hot_views
        # Workload shifts entirely to COLD; HOT ages out of the window.
        for _ in range(4):
            advisor.observe(COLD)
        summary = advisor.refresh()
        assert summary["dropped"]
        assert COLD.elements in set(advisor.managed_views.values())
        assert HOT.elements not in set(advisor.managed_views.values())

    def test_budget_respected(self):
        engine = engine_with_data()
        advisor = AdaptiveViewAdvisor(engine, budget=1)
        for q in (HOT, COLD, HOT, COLD):
            advisor.observe(q)
        advisor.refresh()
        assert len(advisor.managed_views) <= 1

    def test_auto_refresh_every_n(self):
        engine = engine_with_data()
        advisor = AdaptiveViewAdvisor(engine, budget=2, refresh_every=3)
        for _ in range(3):
            advisor.observe(HOT)
        assert advisor.refreshes == 1

    def test_unmanaged_views_preserved(self):
        engine = engine_with_data()
        engine.add_graph_view([("C", "D"), ("D", "E")], name="manual")
        advisor = AdaptiveViewAdvisor(engine, budget=1, window=4)
        for _ in range(4):
            advisor.observe(HOT)
        advisor.refresh()
        for _ in range(4):
            advisor.observe(COLD)
        advisor.refresh()  # forces drops of managed views
        assert "manual" in engine.graph_views

    def test_hysteresis_keeps_still_useful_views(self):
        engine = engine_with_data()
        advisor = AdaptiveViewAdvisor(engine, budget=2, window=6)
        for _ in range(6):
            advisor.observe(HOT)
        advisor.refresh()
        # HOT still appears occasionally: its view must survive.
        for q in (COLD, HOT, COLD, HOT, COLD, HOT):
            advisor.observe(q)
        summary = advisor.refresh()
        assert HOT.elements in set(advisor.managed_views.values())
        assert not summary["dropped"] or HOT.elements in set(
            advisor.managed_views.values()
        )

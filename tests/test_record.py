"""Tests for graph records and cycle flattening."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GraphRecord, flatten_walk
from repro.core.record import occurrence_name


class TestConstruction:
    def test_basic(self):
        record = GraphRecord("r1", {("A", "B"): 1.0, ("B", "B"): 2.0})
        assert record.record_id == "r1"
        assert len(record) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GraphRecord("r1", {})

    def test_non_tuple_element_rejected(self):
        with pytest.raises(TypeError):
            GraphRecord("r1", {"AB": 1.0})

    def test_metadata_stored(self):
        record = GraphRecord("r1", {("A", "B"): 1.0}, metadata={"order": "fast"})
        assert record.metadata["order"] == "fast"

    def test_equality(self):
        a = GraphRecord("r1", {("A", "B"): 1.0})
        b = GraphRecord("r1", {("A", "B"): 1.0})
        assert a == b
        assert a != GraphRecord("r2", {("A", "B"): 1.0})


class TestStructure:
    def test_nodes_and_edges(self):
        record = GraphRecord("r", {("A", "B"): 1.0, ("B", "C"): 2.0, ("B", "B"): 3.0})
        assert record.nodes() == {"A", "B", "C"}
        assert record.edges() == {("A", "B"), ("B", "C")}
        assert record.measured_nodes() == {"B"}

    def test_measure_access(self):
        record = GraphRecord("r", {("A", "B"): 1.5})
        assert record.measure(("A", "B")) == 1.5
        assert record.get_measure(("X", "Y")) is None
        with pytest.raises(KeyError):
            record.measure(("X", "Y"))

    def test_successors_predecessors(self):
        record = GraphRecord("r", {("A", "B"): 1.0, ("A", "C"): 2.0, ("B", "B"): 1.0})
        assert record.successors("A") == {"B", "C"}
        assert record.predecessors("B") == {"A"}

    def test_contains_subgraph(self):
        record = GraphRecord("r", {("A", "B"): 1.0, ("B", "C"): 2.0})
        assert record.contains_subgraph([("A", "B")])
        assert record.contains_subgraph([("A", "B"), ("B", "C")])
        assert not record.contains_subgraph([("A", "C")])

    def test_sources_and_terminals(self):
        record = GraphRecord("r", {("A", "B"): 1.0, ("B", "C"): 2.0})
        assert record.source_nodes() == {"A"}
        assert record.terminal_nodes() == {"C"}

    def test_self_edges_do_not_affect_sources(self):
        record = GraphRecord("r", {("A", "B"): 1.0, ("A", "A"): 5.0})
        assert record.source_nodes() == {"A"}
        assert record.terminal_nodes() == {"B"}


class TestDag:
    def test_path_is_dag(self):
        record = GraphRecord("r", {("A", "B"): 1.0, ("B", "C"): 1.0})
        assert record.is_dag()

    def test_cycle_detected(self):
        record = GraphRecord("r", {("A", "B"): 1.0, ("B", "A"): 1.0})
        assert not record.is_dag()

    def test_longer_cycle_detected(self):
        record = GraphRecord(
            "r", {("A", "B"): 1.0, ("B", "C"): 1.0, ("C", "A"): 1.0}
        )
        assert not record.is_dag()

    def test_diamond_is_dag(self):
        record = GraphRecord(
            "r",
            {("A", "B"): 1.0, ("A", "C"): 1.0, ("B", "D"): 1.0, ("C", "D"): 1.0},
        )
        assert record.is_dag()

    def test_self_edge_not_a_cycle(self):
        # Node measures are self-edges; they are not traversal cycles.
        record = GraphRecord("r", {("A", "A"): 1.0, ("A", "B"): 1.0})
        assert record.is_dag()


class TestFlattening:
    def test_paper_example(self):
        # A product shipped A, B, C, A, D, E: the revisit of A becomes A'.
        walk = flatten_walk(["A", "B", "C", "A", "D", "E"])
        assert walk == ["A", "B", "C", "A'", "D", "E"]

    def test_triple_visit(self):
        assert flatten_walk(["A", "A", "A"]) == ["A", "A'", "A''"]

    def test_occurrence_name(self):
        assert occurrence_name("D", 0) == "D"
        assert occurrence_name("D", 2) == "D''"

    def test_from_walk_flattens_to_dag(self):
        record = GraphRecord.from_walk(
            "r", ["A", "B", "A", "C"], edge_measures=[1.0, 2.0, 3.0]
        )
        assert record.is_dag()
        assert ("B", "A'") in record.elements()

    def test_from_walk_without_flatten_keeps_cycle(self):
        record = GraphRecord.from_walk(
            "r", ["A", "B", "A", "C"], edge_measures=[1.0, 2.0, 3.0], flatten=False
        )
        assert not record.is_dag()

    def test_from_walk_node_measures(self):
        record = GraphRecord.from_walk(
            "r", ["A", "B"], edge_measures=[1.0], node_measures=[0.5, 0.7]
        )
        assert record.measure(("A", "A")) == 0.5
        assert record.measure(("B", "B")) == 0.7

    def test_from_walk_wrong_measure_count(self):
        with pytest.raises(ValueError):
            GraphRecord.from_walk("r", ["A", "B", "C"], edge_measures=[1.0])

    @given(st.lists(st.sampled_from("ABCDE"), min_size=2, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_flattened_walks_always_produce_dags(self, nodes):
        record = GraphRecord.from_walk(
            "r", nodes, edge_measures=[1.0] * (len(nodes) - 1)
        )
        assert record.is_dag()

    @given(st.lists(st.sampled_from("ABC"), min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_flatten_walk_names_unique(self, nodes):
        assert len(set(flatten_walk(nodes))) == len(nodes)

"""Protocol fuzzing: the daemon survives anything a client can send.

Hypothesis drives malformed traffic at a live daemon — truncated bodies,
binary garbage, bad JSON, oversized payloads, unknown routes/methods/
fields, invalid tenant ids — and after *every* case asserts the
invariants that make the daemon safe to leave running:

* the response (when the connection survives long enough to carry one)
  is a structured JSON error with a stable ``code``;
* the daemon never crashes: a fresh request on a fresh connection still
  answers correctly;
* no state leaks: the admission gates' inflight counts and the
  ``serve.inflight`` gauge are back to zero once the case ends.

One daemon serves the whole module — leaked permits from an early case
would poison later ones, which is exactly the point.
"""

from __future__ import annotations

import json
import socket
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GraphAnalyticsEngine, GraphRecord
from repro.exec import QueryExecutor
from repro.obs import MetricsRegistry
from repro.resilience import AdmissionController
from repro.serve import ServeClient, ServeHTTPError, start_in_thread
from repro.serve.server import ServeConfig
from repro.serve.protocol import Limits
from repro.serve.tenants import TenantGate, TenantPolicy

FUZZ_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def daemon():
    engine = GraphAnalyticsEngine()
    engine.load_records(
        [
            GraphRecord(f"r{i}", {("a", "b"): float(i), ("b", "c"): 2.0})
            for i in range(12)
        ]
    )
    registry = MetricsRegistry()
    executor = QueryExecutor(engine, jobs=2, cache_mb=4, registry=registry)
    gate = TenantGate(
        shared=AdmissionController(max_inflight=8),
        policy=TenantPolicy(max_inflight=4, max_tenants=32),
    )
    config = ServeConfig(
        limits=Limits(max_body_bytes=64 << 10, header_timeout_s=1.0)
    )
    handle = start_in_thread(executor, registry=registry, gate=gate, config=config)
    try:
        yield handle, registry, gate
    finally:
        handle.stop()
        executor.close()


def _settles_to_zero(read, timeout: float = 2.0) -> float:
    """Poll a counter until it reads 0 (the response hits the client a
    hair before the handler's finally-block bookkeeping runs)."""
    deadline = time.monotonic() + timeout
    value = read()
    while value != 0 and time.monotonic() < deadline:
        time.sleep(0.005)
        value = read()
    return value


def assert_no_leaks(handle, registry, gate):
    """The invariant every fuzz case must restore: nothing inflight, and
    the daemon still answers a well-formed query."""
    assert _settles_to_zero(gate.inflight) == 0, "leaked admission permits"
    assert (
        _settles_to_zero(
            lambda: registry.gauge("serve.inflight").to_dict()["value"]
        )
        == 0
    ), "leaked serve.inflight gauge"
    with ServeClient(*handle.address) as client:
        result = client.query({"q": "a -> b"})
        assert len(result.record_ids) == 12


def send_and_collect(handle, data: bytes, timeout: float = 5.0) -> bytes:
    """Ship raw bytes, read whatever comes back until the server closes
    or goes quiet."""
    out = bytearray()
    with socket.create_connection(handle.address, timeout=timeout) as sock:
        sock.sendall(data)
        sock.settimeout(timeout)
        try:
            while True:
                part = sock.recv(4096)
                if not part:
                    break
                out += part
        except socket.timeout:
            pass
    return bytes(out)


def parse_error_bodies(raw: bytes) -> list[dict]:
    """Every JSON error object in a raw response byte stream (which may
    hold several back-to-back responses on one keep-alive connection)."""
    text = raw.decode("latin-1")
    decoder = json.JSONDecoder()
    errors = []
    pos = 0
    while True:
        pos = text.find('{"error"', pos)
        if pos < 0:
            return errors
        doc, end = decoder.raw_decode(text, pos)
        errors.append(doc["error"])
        pos = end


class TestMalformedFraming:
    @FUZZ_SETTINGS
    @given(st.binary(min_size=1, max_size=256))
    def test_binary_garbage_yields_structured_error(self, daemon, data):
        handle, registry, gate = daemon
        raw = send_and_collect(handle, data + b"\r\n\r\n")
        if raw:  # server may close without a body on hopeless framing
            assert b"HTTP/1.1 " in raw
            errors = parse_error_bodies(raw)
            if errors:
                assert all("code" in e and "message" in e for e in errors)
        assert_no_leaks(handle, registry, gate)

    @settings(
        max_examples=8,  # each example waits out the server's body timeout
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.integers(min_value=1, max_value=400))
    def test_truncated_body_yields_400(self, daemon, promised):
        """A content-length promising more bytes than arrive: the read
        times out server-side and answers 400/408, never hangs."""
        handle, registry, gate = daemon
        head = (
            f"POST /query HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {promised}\r\n\r\n"
        ).encode()
        raw = send_and_collect(handle, head + b"{", timeout=4.0)
        errors = parse_error_bodies(raw)
        assert errors, raw[:200]
        if promised == 1:
            # The lone "{" byte satisfies the promise; the request is
            # complete but its body is not JSON.
            assert errors[0]["code"] == "bad-json"
        else:
            assert errors[0]["code"] in ("bad-request", "timeout")
        assert_no_leaks(handle, registry, gate)

    def test_oversized_body_rejected_before_buffering(self, daemon):
        handle, registry, gate = daemon
        head = (
            "POST /query HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {100 << 20}\r\n\r\n"
        ).encode()
        raw = send_and_collect(handle, head)
        errors = parse_error_bodies(raw)
        assert errors and errors[0]["code"] == "payload-too-large"
        assert_no_leaks(handle, registry, gate)

    def test_oversized_request_line_rejected(self, daemon):
        handle, registry, gate = daemon
        raw = send_and_collect(
            handle, b"GET /" + b"a" * 20000 + b" HTTP/1.1\r\n\r\n"
        )
        errors = parse_error_bodies(raw)
        assert errors and errors[0]["code"] == "line-too-long"
        assert_no_leaks(handle, registry, gate)

    def test_mid_request_disconnect_leaks_nothing(self, daemon):
        handle, registry, gate = daemon
        with socket.create_connection(handle.address, timeout=5) as sock:
            sock.sendall(b"POST /query HTTP/1.1\r\nContent-Length: 50\r\n\r\n{")
            # vanish with 49 bytes still owed
        assert_no_leaks(handle, registry, gate)


class TestMalformedJson:
    @FUZZ_SETTINGS
    @given(
        st.text(max_size=200).filter(
            lambda s: not s.lstrip().startswith("{")
        )
    )
    def test_non_object_bodies(self, daemon, text):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            body = text.encode()
            response = client.request(
                "POST", "/query", None, headers={"Content-Length": "0"}
            )
            assert response.status == 400
            client.close()
            client.send_raw(
                (
                    f"POST /query HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            response = client.read_response()
            assert response.status == 400
            assert response.json()["error"]["code"] in ("bad-json", "bad-query")
        assert_no_leaks(handle, registry, gate)

    @FUZZ_SETTINGS
    @given(
        st.dictionaries(
            st.sampled_from(
                ["q", "elements", "function", "bogus", "timeout", "Timeout_MS"]
            ),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(),
                st.text(max_size=30),
                st.lists(st.integers(), max_size=3),
            ),
            max_size=4,
        )
    )
    def test_arbitrary_json_objects(self, daemon, payload):
        """Any JSON object either answers 200 (a valid query snuck in) or
        a structured 4xx — never a 500, never a hang."""
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            response = client.request("POST", "/query", payload)
            if response.status != 200:
                assert 400 <= response.status < 500
                error = response.json()["error"]
                assert error["code"] and error["exit_code"] == 2
        assert_no_leaks(handle, registry, gate)

    @FUZZ_SETTINGS
    @given(st.sampled_from(["bogus", "Timeout_MS", "records", "kind", "x"]))
    def test_unknown_fields_named_in_error(self, daemon, field):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            response = client.request("POST", "/query", {"q": "a -> b", field: 1})
            assert response.status == 400
            error = response.json()["error"]
            assert error["code"] == "unknown-field"
            assert field in error["message"]
        assert_no_leaks(handle, registry, gate)


class TestRoutesAndTenants:
    @FUZZ_SETTINGS
    @given(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_unknown_routes_404(self, daemon, name):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            response = client.request("POST", f"/{name}", {"q": "a -> b"})
            if f"/{name}" not in (
                "/query", "/aggregate", "/explain", "/append",
                "/materialize", "/metrics", "/healthz",
            ):
                assert response.status == 404
                assert response.json()["error"]["code"] == "not-found"
        assert_no_leaks(handle, registry, gate)

    def test_wrong_method_405_with_allow(self, daemon):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            response = client.request("GET", "/query")
            assert response.status == 405
            assert "POST" in response.headers.get("allow", "")
            response = client.request("POST", "/healthz", {})
            assert response.status == 405
        assert_no_leaks(handle, registry, gate)

    @FUZZ_SETTINGS
    @given(
        st.one_of(
            st.just(""),
            st.just("-leading-dash"),
            st.text(alphabet="/:# \t", min_size=1, max_size=8),
            st.text(min_size=65, max_size=80),
            st.integers(),
            st.booleans(),
        )
    )
    def test_invalid_tenant_ids(self, daemon, tenant):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            response = client.request(
                "POST", "/query", {"q": "a -> b", "tenant": tenant}
            )
            assert response.status == 400
            assert response.json()["error"]["code"] == "bad-tenant"
        assert_no_leaks(handle, registry, gate)

    def test_tenant_header_also_validated(self, daemon):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            response = client.request(
                "POST",
                "/query",
                {"q": "a -> b"},
                headers={"X-Repro-Tenant": "no spaces allowed"},
            )
            assert response.status == 400
            assert response.json()["error"]["code"] == "bad-tenant"
        assert_no_leaks(handle, registry, gate)

    @FUZZ_SETTINGS
    @given(
        st.one_of(
            st.just(-1), st.just(0), st.just(False), st.text(max_size=5),
            st.lists(st.integers(), max_size=2),
        )
    )
    def test_bad_timeouts(self, daemon, value):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            response = client.request(
                "POST", "/query", {"q": "a -> b", "timeout_ms": value}
            )
            assert response.status == 400
            assert response.json()["error"]["code"] == "bad-request"
        assert_no_leaks(handle, registry, gate)


class TestErrorCodeStability:
    """The error surface is API: codes and their exit-code mirrors."""

    def test_syntax_error_code(self, daemon):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            with pytest.raises(ServeHTTPError) as err:
                client.query({"q": "a"})
            assert err.value.status == 400
            assert err.value.code == "bad-query"
            assert err.value.exit_code == 2
        assert_no_leaks(handle, registry, gate)

    def test_timeout_code_mirrors_cli_exit_3(self, daemon):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            with pytest.raises(ServeHTTPError) as err:
                client.query({"q": "a -> b", "timeout_ms": 0.0001})
            assert err.value.status == 504
            assert err.value.code == "timeout"
            assert err.value.exit_code == 3
        assert_no_leaks(handle, registry, gate)

    def test_transfer_encoding_unsupported(self, daemon):
        handle, registry, gate = daemon
        raw = send_and_collect(
            handle,
            b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        )
        errors = parse_error_bodies(raw)
        assert errors and errors[0]["code"] == "unsupported"
        assert_no_leaks(handle, registry, gate)

    def test_bad_records_code(self, daemon):
        handle, registry, gate = daemon
        with ServeClient(*handle.address) as client:
            response = client.request(
                "POST", "/append", {"records": [{"id": "x"}]}
            )
            assert response.status == 400
            assert response.json()["error"]["code"] == "bad-records"
        assert_no_leaks(handle, registry, gate)

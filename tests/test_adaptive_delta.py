"""Hypothesis property suite: append-delta view maintenance is
bit-identical to a full rebuild.

The maintainer stages a view bitmap off-epoch, appends may land while it
is staged, and commit extends the staged prefix with
``view_delta_bitmap`` over only the tail rows.  Soundness rests on rows
being immutable and append-only — these properties drive random record
batches, random staging points, random append sizes, and every shard
geometry against the ground truth of a from-scratch build.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GraphAnalyticsEngine, GraphRecord

UNIVERSE = [
    ("A", "B"), ("B", "C"), ("C", "D"), ("D", "E"), ("A", "C"), ("B", "D"),
]


@st.composite
def record_batches(draw):
    """Two record batches (load, then append) over a small edge universe,
    plus a shard count and a view element set."""
    n_load = draw(st.integers(min_value=1, max_value=40))
    n_append = draw(st.integers(min_value=0, max_value=30))

    def records(count, tag):
        out = []
        for i in range(count):
            mask = draw(
                st.lists(
                    st.booleans(),
                    min_size=len(UNIVERSE),
                    max_size=len(UNIVERSE),
                )
            )
            edges = {
                edge: float(i + j)
                for j, (edge, keep) in enumerate(zip(UNIVERSE, mask))
                if keep
            }
            if not edges:  # records must carry at least one edge
                edges = {UNIVERSE[i % len(UNIVERSE)]: float(i)}
            out.append(GraphRecord(f"{tag}{i}", edges))
        return out

    load = records(n_load, "r")
    append = records(n_append, "x")
    shards = draw(st.integers(min_value=1, max_value=4))
    view = draw(
        st.sets(st.sampled_from(UNIVERSE), min_size=2, max_size=4).map(frozenset)
    )
    return load, append, shards, view


class TestAppendDeltaEqualsFullRebuild:
    @given(record_batches())
    @settings(max_examples=60, deadline=None)
    def test_staged_plus_delta_matches_full(self, batch):
        load, append, shards, view = batch
        engine = GraphAnalyticsEngine(shards=shards)
        engine.load_records(load)
        staged = engine.compute_view_bitmap(view)
        staged_rows = engine.n_records
        if append:
            engine.append_records(append)
        name = engine.materialize_incremental(
            view, staged=staged, staged_rows=staged_rows
        )
        committed = engine.relation.view_bitmap(name)

        # Ground truth: a fresh engine sees every record at load time.
        oracle = GraphAnalyticsEngine(shards=shards)
        oracle.load_records(load + append)
        full = oracle.compute_view_bitmap(view)
        assert committed.length == full.length == engine.n_records
        assert committed.to_indices().tolist() == full.to_indices().tolist()

    @given(record_batches())
    @settings(max_examples=40, deadline=None)
    def test_existing_view_extension_matches_full(self, batch):
        # append_records' incremental extension of an already-registered
        # view must agree with the delta path and the full rebuild.
        load, append, shards, view = batch
        engine = GraphAnalyticsEngine(shards=shards)
        engine.load_records(load)
        name = engine.add_graph_view(view)
        if append:
            engine.append_records(append)
        extended = engine.relation.view_bitmap(name)
        full = engine.compute_view_bitmap(view)
        assert extended.to_indices().tolist() == full.to_indices().tolist()

    @given(record_batches(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_delta_bitmap_is_suffix_of_full(self, batch, data):
        # view_delta_bitmap(elements, start) at an arbitrary start point —
        # including mid-shard and at shard boundaries — must equal the
        # corresponding slice of the full bitmap.
        load, append, shards, view = batch
        engine = GraphAnalyticsEngine(shards=shards)
        engine.load_records(load + append)
        n = engine.n_records
        start = data.draw(st.integers(min_value=0, max_value=n))
        delta = engine.view_delta_bitmap(view, start)
        full = engine.compute_view_bitmap(view)
        assert delta.length == n - start
        assert (
            delta.to_indices().tolist()
            == [i - start for i in full.to_indices().tolist() if i >= start]
        )

    def test_stage_before_multiple_appends_across_shard_boundary(self):
        # Deterministic shard-boundary case: the staged prefix ends inside
        # shard 0, the appends grow the last shard twice.
        engine = GraphAnalyticsEngine(shards=3)
        engine.load_records(
            [GraphRecord(f"r{i}", {("A", "B"): 1.0, ("B", "C"): 2.0}) for i in range(7)]
        )
        view = frozenset([("A", "B"), ("B", "C")])
        staged = engine.compute_view_bitmap(view)
        staged_rows = engine.n_records
        engine.append_records(
            [GraphRecord("x0", {("A", "B"): 1.0}), GraphRecord("x1", {("A", "B"): 1.0, ("B", "C"): 1.0})]
        )
        engine.append_records([GraphRecord("x2", {("B", "C"): 1.0})])
        name = engine.materialize_incremental(
            view, staged=staged, staged_rows=staged_rows
        )
        got = engine.relation.view_bitmap(name).to_indices().tolist()
        assert got == list(range(7)) + [8]

    def test_staged_row_mismatch_rejected(self):
        engine = GraphAnalyticsEngine()
        engine.load_records([GraphRecord("r0", {("A", "B"): 1.0, ("B", "C"): 1.0})])
        staged = engine.compute_view_bitmap([("A", "B"), ("B", "C")])
        import pytest

        with pytest.raises(ValueError):
            engine.materialize_incremental(
                [("A", "B"), ("B", "C")], staged=staged, staged_rows=0
            )
        with pytest.raises(ValueError):
            engine.view_delta_bitmap([("A", "B")], start=5)

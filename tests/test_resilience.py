"""Resilient-serving tests: deadlines, cancellation, admission, degraded mode.

Covers the governance layer end to end: the context primitives
(:class:`Deadline` / :class:`CancelToken` / :class:`QueryContext`), the
admission gate, the retry helper, the per-shard circuit breaker, the
resilience policy's supervised shard execution, and the integration
through :class:`QueryExecutor` / the engine facade / the CLI — including
the acceptance contracts: a corrupt shard yields a typed error by
default, ``partial_ok`` answers are exact on healthy shards with accurate
skipped record ranges, the breaker caps retry storms, a deadline of D
cancels within 2·D, and degraded merges never poison the cache.
"""

from __future__ import annotations

import time

import pytest

from repro import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    QueryExecutor,
)
from repro.core import PathAggregationQuery
from repro.errors import (
    AdmissionRejectedError,
    CircuitOpenError,
    QueryCancelledError,
    QueryTimeoutError,
    ReproError,
    ResilienceError,
    ShardExecutionError,
)
from repro.obs import MetricsRegistry
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    CancelToken,
    CircuitBreaker,
    Deadline,
    QueryContext,
    ResiliencePolicy,
    retry_with_backoff,
)
from tests import faultinject as fi

# -- fixtures ----------------------------------------------------------------

N_SHARDS = 4
PER_SHARD = 10
N_RECORDS = N_SHARDS * PER_SHARD


def _records(n: int = N_RECORDS) -> list[GraphRecord]:
    records = []
    for i in range(n):
        measures = {("A", "D"): 1.0 + i, ("D", "E"): 2.0}
        if i % 3 == 0:
            measures[("D", "F")] = 3.0
        records.append(GraphRecord(f"r{i:03d}", measures))
    return records


def _sharded_engine(**policy_kw) -> GraphAnalyticsEngine:
    engine = GraphAnalyticsEngine(shards=N_SHARDS)
    engine.load_records(_records())
    if policy_kw:
        engine.use_resilience(ResiliencePolicy(**policy_kw))
    return engine


QUERY = GraphQuery.from_node_chain("A", "D", "E")
AGG = PathAggregationQuery(GraphQuery.from_node_chain("A", "D", "E"), "sum")


def _no_sleep(_seconds: float) -> None:
    """Injectable sleep that never actually waits (keeps tests fast)."""


# -- context primitives ------------------------------------------------------


class TestDeadline:
    def test_zero_or_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0)
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_fresh_deadline_passes_check(self):
        deadline = Deadline.after(60.0)
        deadline.check()
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0

    def test_expired_deadline_raises_typed_error_with_budget(self):
        deadline = Deadline.after(1e-9)
        time.sleep(0.002)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(QueryTimeoutError) as exc_info:
            deadline.check()
        assert exc_info.value.budget == 1e-9
        assert isinstance(exc_info.value, ResilienceError)
        assert isinstance(exc_info.value, ReproError)


class TestCancelToken:
    def test_check_passes_until_cancelled(self):
        token = CancelToken()
        token.check()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        with pytest.raises(QueryCancelledError):
            token.check()

    def test_cancel_is_idempotent(self):
        token = CancelToken()
        token.cancel()
        token.cancel()
        assert token.cancelled


class TestQueryContext:
    def test_bare_context_checks_are_noops(self):
        ctx = QueryContext.start()
        ctx.check()
        assert ctx.deadline is None and ctx.token is None
        assert not ctx.degraded
        assert ctx.report() is None

    def test_zero_timeout_means_no_deadline(self):
        assert QueryContext.start(timeout=0).deadline is None

    def test_cancellation_wins_over_expired_deadline(self):
        token = CancelToken()
        token.cancel()
        ctx = QueryContext.start(timeout=1e-9, token=token)
        time.sleep(0.002)
        with pytest.raises(QueryCancelledError):
            ctx.check()

    def test_skip_ledger_sorted_report(self):
        ctx = QueryContext.start(partial_ok=True)
        ctx.record_skip(2, 20, 30, OSError("later"))
        ctx.record_skip(0, 0, 10, OSError("earlier"))
        assert ctx.degraded
        report = ctx.report()
        assert report.skipped_ranges() == [(0, 10), (20, 30)]
        assert report.n_records_skipped == 20
        assert "2 shard(s) skipped" in report.summary()


# -- circuit breaker ---------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_after=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_after=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_grants_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=0.0)
        breaker.record_failure()
        # reset_after=0: the cooldown is instantly over -> half-open.
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else refused

    def test_probe_success_closes_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=0.0)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        # reset_after=0 advances straight back to half-open on inspection,
        # but the probe slot was re-armed: exactly one attempt again.
        assert breaker.allow()
        assert not breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after=-1.0)


# -- admission control -------------------------------------------------------


class TestAdmissionController:
    def test_inflight_cap_rejects_with_retry_hint(self):
        gate = AdmissionController(max_inflight=1, max_wait_s=0.0)
        assert gate.try_admit()
        with pytest.raises(AdmissionRejectedError) as exc_info:
            with gate.admit():
                pass
        assert exc_info.value.retry_after > 0
        gate.release()
        with gate.admit():
            assert gate.stats.inflight == 1
        stats = gate.stats
        assert stats.admitted == 2 and stats.rejected == 1
        assert stats.inflight == 0

    def test_token_bucket_caps_burst(self):
        gate = AdmissionController(rate=1000.0, burst=2.0, max_wait_s=0.0)
        assert gate.try_admit()
        assert gate.try_admit()
        assert not gate.try_admit()  # bucket drained
        time.sleep(0.01)  # ~10 tokens refill at rate=1000/s
        assert gate.try_admit()
        for _ in range(3):
            gate.release()

    def test_bounded_wait_admits_when_gate_reopens(self):
        gate = AdmissionController(max_inflight=1, max_wait_s=5.0)
        assert gate.try_admit()

        import threading

        admitted_after = []

        def later_release():
            time.sleep(0.05)
            gate.release()

        thread = threading.Thread(target=later_release)
        thread.start()
        started = time.perf_counter()
        with gate.admit():
            admitted_after.append(time.perf_counter() - started)
        thread.join()
        assert 0.01 < admitted_after[0] < 4.0

    def test_byte_budget_rejects_but_never_starves_a_lone_query(self):
        gate = AdmissionController(max_bytes=100, max_wait_s=0.0)
        # A lone over-budget query must still run, else it never could.
        assert gate.try_admit(nbytes=1000)
        # But alongside anything it is held back.
        assert not gate.try_admit(nbytes=50)
        gate.release(nbytes=1000)
        assert gate.try_admit(nbytes=50)
        assert gate.try_admit(nbytes=50)
        assert not gate.try_admit(nbytes=50)
        gate.release(nbytes=50)
        gate.release(nbytes=50)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(rate=0)
        with pytest.raises(ValueError):
            AdmissionController(max_wait_s=-1)
        with pytest.raises(ValueError):
            AdmissionController(max_bytes=0)


class TestRetryWithBackoff:
    def test_retries_until_success_honoring_retry_after(self):
        pauses = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise AdmissionRejectedError("busy", retry_after=0.25)
            return "ok"

        result = retry_with_backoff(
            flaky, attempts=4, base_delay=0.01, sleep=pauses.append
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert all(p >= 0.25 for p in pauses)  # hint respected

    def test_exhausted_attempts_raise_last_error(self):
        def always_busy():
            raise AdmissionRejectedError("busy", retry_after=0.0)

        with pytest.raises(AdmissionRejectedError):
            retry_with_backoff(always_busy, attempts=2, sleep=_no_sleep)

    def test_non_matching_errors_propagate_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise KeyError("nope")

        with pytest.raises(KeyError):
            retry_with_backoff(boom, attempts=5, sleep=_no_sleep)
        assert calls["n"] == 1


# -- the policy's supervised shard execution (unit level) --------------------


class TestResiliencePolicy:
    def test_transient_failure_is_retried_to_success(self):
        policy = ResiliencePolicy(attempts=3, sleep=_no_sleep)
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("blip")
            return "bitmap"

        assert policy.run_shard(0, 0, 10, compute, None, generation=1) == "bitmap"
        assert calls["n"] == 3

    def test_persistent_failure_raises_typed_error_with_range(self):
        policy = ResiliencePolicy(attempts=2, breaker_threshold=10, sleep=_no_sleep)

        def compute():
            raise OSError("dead")

        with pytest.raises(ShardExecutionError) as exc_info:
            policy.run_shard(3, 30, 40, compute, None, generation=1)
        err = exc_info.value
        assert (err.shard, err.start, err.stop) == (3, 30, 40)
        assert "[30:40)" in str(err)

    def test_partial_ok_records_skip_and_returns_none(self):
        policy = ResiliencePolicy(attempts=1, sleep=_no_sleep)
        ctx = QueryContext.start(partial_ok=True)

        def compute():
            raise OSError("dead")

        assert policy.run_shard(1, 10, 20, compute, ctx, generation=1) is None
        assert ctx.degraded
        assert ctx.report().skipped_ranges() == [(10, 20)]

    def test_deadline_and_cancellation_are_never_retried(self):
        policy = ResiliencePolicy(attempts=5, sleep=_no_sleep)
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            raise QueryTimeoutError("deadline", budget=0.1)

        with pytest.raises(QueryTimeoutError):
            policy.run_shard(0, 0, 10, compute, None, generation=1)
        assert calls["n"] == 1  # no retry, no breaker charge
        assert policy.breaker_states()[0] == CLOSED

    def test_breaker_opens_and_refuses_instantly(self):
        policy = ResiliencePolicy(
            attempts=1, breaker_threshold=2, breaker_reset_after=60.0, sleep=_no_sleep
        )
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            raise OSError("dead")

        for _ in range(2):
            with pytest.raises(ShardExecutionError):
                policy.run_shard(0, 0, 10, compute, None, generation=1)
        assert policy.breaker_states()[0] == OPEN
        with pytest.raises(CircuitOpenError):
            policy.run_shard(0, 0, 10, compute, None, generation=1)
        assert calls["n"] == 2  # the open breaker never ran compute again

    def test_mid_retry_breaker_opening_stops_the_retry_loop(self):
        # attempts=5 but threshold=2: the loop must stop at the second
        # failure because the breaker opened underneath it.
        policy = ResiliencePolicy(
            attempts=5, breaker_threshold=2, breaker_reset_after=60.0, sleep=_no_sleep
        )
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            raise OSError("dead")

        with pytest.raises(ShardExecutionError):
            policy.run_shard(0, 0, 10, compute, None, generation=1)
        assert calls["n"] == 2

    def test_generation_change_discards_the_breaker(self):
        policy = ResiliencePolicy(
            attempts=1, breaker_threshold=1, breaker_reset_after=60.0, sleep=_no_sleep
        )

        def compute_dead():
            raise OSError("dead")

        with pytest.raises(ShardExecutionError):
            policy.run_shard(0, 0, 10, compute_dead, None, generation=1)
        assert policy.breaker_states()[0] == OPEN
        # Same shard, new generation (the engine mutated): fresh breaker.
        assert policy.run_shard(0, 0, 10, lambda: "ok", None, generation=2) == "ok"
        assert policy.breaker_states()[0] == CLOSED

    def test_backoff_sleeps_are_capped_by_remaining_deadline(self):
        pauses = []
        policy = ResiliencePolicy(
            attempts=3, backoff_base=10.0, backoff_max=10.0,
            breaker_threshold=10, sleep=pauses.append,
        )
        ctx = QueryContext.start(timeout=0.5)

        def compute():
            raise OSError("blip")

        with pytest.raises(ShardExecutionError):
            policy.run_shard(0, 0, 10, compute, ctx, generation=1)
        assert pauses and all(p <= 0.5 for p in pauses)


# -- engine + executor integration with injected shard faults ----------------


class TestDegradedExecution:
    def test_corrupt_shard_fails_query_with_typed_error_by_default(self):
        engine = _sharded_engine(attempts=2, sleep=_no_sleep)
        fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine) as executor:
            with pytest.raises(ShardExecutionError) as exc_info:
                executor.run_one(QUERY)
        err = exc_info.value
        assert err.shard == 1
        assert (err.start, err.stop) == (PER_SHARD, 2 * PER_SHARD)

    def test_engine_without_policy_wraps_first_failure(self):
        engine = _sharded_engine()  # no policy installed
        fi.install_faulty_shard(engine, shard=2, fail_times=None)
        with pytest.raises(ShardExecutionError) as exc_info:
            engine.query(QUERY)
        assert exc_info.value.shard == 2

    def test_partial_ok_is_exact_on_healthy_shards(self):
        engine = _sharded_engine(attempts=1, sleep=_no_sleep)
        oracle = [f"r{i:03d}" for i in range(N_RECORDS)
                  if not PER_SHARD <= i < 2 * PER_SHARD]
        proxy = fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine) as executor:
            result = executor.run_one(QUERY, partial_ok=True)
        assert result.record_ids == oracle
        assert result.degraded is not None
        assert result.degraded.skipped_ranges() == [(PER_SHARD, 2 * PER_SHARD)]
        assert result.degraded.n_records_skipped == PER_SHARD
        assert proxy.failures > 0

    def test_partial_ok_aggregation_reports_skipped_range(self):
        engine = _sharded_engine(attempts=1, sleep=_no_sleep)
        fi.install_faulty_shard(engine, shard=3, fail_times=None)
        with QueryExecutor(engine) as executor:
            healthy = executor.run_one(AGG, partial_ok=True)
        assert healthy.degraded.skipped_ranges() == [(3 * PER_SHARD, N_RECORDS)]
        assert all(not rid.startswith("r03") for rid in healthy.record_ids)

    def test_transient_fault_is_absorbed_by_retries(self):
        registry = MetricsRegistry()
        engine = _sharded_engine(attempts=3, sleep=_no_sleep)
        engine.use_metrics(registry)
        proxy = fi.install_faulty_shard(engine, shard=0, fail_times=2)
        with QueryExecutor(engine) as executor:
            result = executor.run_one(QUERY)
        assert len(result) == N_RECORDS  # complete answer, no degradation
        assert result.degraded is None
        assert proxy.failures == 2
        assert registry.counter("resilience.shard_retries").value >= 2

    def test_breaker_caps_attempts_across_queries(self):
        engine = _sharded_engine(
            attempts=1, breaker_threshold=2, breaker_reset_after=60.0,
            sleep=_no_sleep,
        )
        proxy = fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine) as executor:
            for _ in range(5):
                with pytest.raises(ShardExecutionError):
                    executor.run_one(QUERY)
        # Two real attempts opened the breaker; the other three queries
        # were refused without touching the shard.
        assert proxy.failures == 2
        assert engine.resilience.breaker_states()[1] == OPEN

    def test_mutation_resets_the_breaker_for_a_repaired_shard(self):
        engine = _sharded_engine(
            attempts=1, breaker_threshold=1, breaker_reset_after=3600.0,
            sleep=_no_sleep,
        )
        proxy = fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine) as executor:
            with pytest.raises(ShardExecutionError):
                executor.run_one(QUERY)
            assert engine.resilience.breaker_states()[1] == OPEN
            proxy.heal()
            executor.append_records(
                [GraphRecord("r-new", {("A", "D"): 1.0, ("D", "E"): 2.0})]
            )
            # The append bumped the generation: fresh breaker, live shard.
            result = executor.run_one(QUERY)
        assert len(result) == N_RECORDS + 1

    def test_degraded_merge_is_never_cached(self):
        engine = _sharded_engine(attempts=1, breaker_threshold=100, sleep=_no_sleep)
        proxy = fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine, cache_mb=8) as executor:
            degraded = executor.run_one(QUERY, partial_ok=True)
            assert degraded.degraded is not None
            proxy.heal()
            # Same query, same epoch: a cached degraded merge would now
            # resurface the partial answer. It must not.
            full = executor.run_one(QUERY, partial_ok=True)
        assert full.degraded is None
        assert len(full) == N_RECORDS
        assert len(degraded) == N_RECORDS - PER_SHARD

    def test_healthy_merge_is_cached_and_reused(self):
        engine = _sharded_engine()
        with QueryExecutor(engine, cache_mb=8) as executor:
            first = executor.run_one(QUERY, partial_ok=True)
            second = executor.run_one(QUERY, partial_ok=True)
        assert first.record_ids == second.record_ids
        assert engine.stats.cache_hits > 0


class TestDeadlinesAndCancellation:
    def test_deadline_cancels_within_twice_the_budget(self):
        engine = _sharded_engine()

        class SlowShard:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                attr = getattr(self._inner, name)
                if name == "bitmap" and callable(attr):
                    def slow(*args, **kwargs):
                        time.sleep(0.02)
                        return attr(*args, **kwargs)
                    return slow
                return attr

        table = engine.relation
        for i in range(len(table.shards)):
            table.shards[i] = SlowShard(table.shards[i])
        budget = 0.05
        with QueryExecutor(engine) as executor:
            started = time.perf_counter()
            with pytest.raises(QueryTimeoutError):
                executor.run_one(QUERY, timeout=budget)
            elapsed = time.perf_counter() - started
        # Acceptance bound: deadline D honoured within 2·D (one operator
        # step of slack; each injected step is 0.02s < D).
        assert elapsed < 2 * budget

    def test_cancel_token_stops_an_inflight_batch(self):
        engine = _sharded_engine()
        token = CancelToken()
        token.cancel()
        with QueryExecutor(engine) as executor:
            results = executor.run_batch(
                [QUERY] * 4, return_errors=True, cancel=token
            )
        assert all(isinstance(r, QueryCancelledError) for r in results)

    def test_timeout_metrics_are_published(self):
        registry = MetricsRegistry()
        engine = _sharded_engine()
        with QueryExecutor(engine, registry=registry) as executor:
            with pytest.raises(QueryTimeoutError):
                executor.run_one(QUERY, timeout=1e-9)
        assert registry.counter("resilience.timeouts").value == 1


class TestBatchErrorIsolation:
    def test_one_bad_slot_does_not_poison_the_batch(self):
        engine = _sharded_engine(attempts=1, sleep=_no_sleep)
        fi.install_faulty_shard(engine, shard=1, fail_times=None)
        bad = QUERY  # touches every shard, including the dead one
        safe = GraphQuery.from_node_chain("A", "D")  # also touches it...
        with QueryExecutor(engine) as executor:
            results = executor.run_batch(
                [bad, safe], return_errors=True, partial_ok=None
            )
        # Both hit the dead shard -> both fail, but each failure stays in
        # its own slot as a typed error object.
        assert all(isinstance(r, ShardExecutionError) for r in results)

    def test_mixed_results_align_with_submission_order(self):
        engine = _sharded_engine(attempts=1, breaker_threshold=100, sleep=_no_sleep)
        fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine) as executor:
            strict = executor.run_batch([QUERY], return_errors=True)[0]
            degraded = executor.run_batch(
                [QUERY], return_errors=True, partial_ok=True
            )[0]
        assert isinstance(strict, ShardExecutionError)
        assert degraded.degraded is not None

    def test_default_mode_raises_first_error_after_finishing_batch(self):
        engine = _sharded_engine(attempts=1, sleep=_no_sleep)
        fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine) as executor:
            with pytest.raises(ShardExecutionError):
                executor.run_batch([QUERY, QUERY])

    def test_parallel_batch_isolates_errors_too(self):
        engine = _sharded_engine(attempts=1, breaker_threshold=100, sleep=_no_sleep)
        fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine, jobs=4) as executor:
            results = executor.run_batch([QUERY] * 8, return_errors=True)
        assert all(isinstance(r, ShardExecutionError) for r in results)

    def test_serve_streams_errors_inline(self):
        engine = _sharded_engine(attempts=1, breaker_threshold=100, sleep=_no_sleep)
        fi.install_faulty_shard(engine, shard=1, fail_times=2)  # transientish
        with QueryExecutor(engine) as executor:
            streamed = list(
                executor.serve([QUERY] * 3, batch_size=2, return_errors=True)
            )
        assert len(streamed) == 3


class TestExecutorAdmission:
    def test_rejection_is_typed_counted_and_engine_untouched(self):
        registry = MetricsRegistry()
        engine = _sharded_engine()
        gate = AdmissionController(max_inflight=1, max_wait_s=0.0)
        assert gate.try_admit()  # hold the only slot from outside
        with QueryExecutor(engine, registry=registry, admission=gate) as executor:
            with pytest.raises(AdmissionRejectedError):
                executor.run_one(QUERY)
        gate.release()
        assert registry.counter("resilience.admission_rejected").value == 1
        assert registry.counter("exec.queries_served").value == 0

    def test_admitted_queries_flow_normally(self):
        engine = _sharded_engine()
        gate = AdmissionController(max_inflight=2, max_wait_s=1.0)
        with QueryExecutor(engine, admission=gate) as executor:
            results = executor.run_batch([QUERY] * 4, return_errors=True)
        assert all(len(r) == N_RECORDS for r in results)
        assert gate.stats.admitted == 4 and gate.stats.inflight == 0

    def test_retry_with_backoff_recovers_a_rejection(self):
        engine = _sharded_engine()
        gate = AdmissionController(max_inflight=1, max_wait_s=0.0)
        assert gate.try_admit()
        with QueryExecutor(engine, admission=gate) as executor:
            attempts = {"n": 0}

            def guarded():
                attempts["n"] += 1
                if attempts["n"] == 1:
                    try:
                        return executor.run_one(QUERY)
                    finally:
                        gate.release()  # the outside holder departs
                return executor.run_one(QUERY)

            result = retry_with_backoff(guarded, attempts=3, sleep=_no_sleep)
        assert len(result) == N_RECORDS


class TestExecutorDefaults:
    def test_default_timeout_applies_when_call_says_nothing(self):
        engine = _sharded_engine()
        with QueryExecutor(engine, default_timeout=1e-9) as executor:
            with pytest.raises(QueryTimeoutError):
                executor.run_one(QUERY)
            # Per-call override wins over the default.
            assert len(executor.run_one(QUERY, timeout=30.0)) == N_RECORDS

    def test_default_partial_ok_applies(self):
        engine = _sharded_engine(attempts=1, sleep=_no_sleep)
        fi.install_faulty_shard(engine, shard=1, fail_times=None)
        with QueryExecutor(engine, partial_ok=True) as executor:
            result = executor.run_one(QUERY)
        assert result.degraded is not None

    def test_executor_installs_a_default_policy(self):
        engine = _sharded_engine()
        assert engine.resilience is None
        with QueryExecutor(engine):
            assert engine.resilience is not None

    def test_executor_keeps_a_preinstalled_policy(self):
        engine = _sharded_engine(attempts=7, sleep=_no_sleep)
        policy = engine.resilience
        with QueryExecutor(engine):
            assert engine.resilience is policy


# -- CLI surfacing -----------------------------------------------------------


class TestCLIResilience:
    @pytest.fixture()
    def db(self, tmp_path):
        engine = GraphAnalyticsEngine(shards=2)
        engine.load_records(_records(20))
        path = tmp_path / "db"
        engine.save(path)
        return str(path)

    def test_timeout_flag_maps_to_exit_code_3(self, db, capsys):
        from repro.cli import main

        code = main(["query", db, "A -> D -> E", "--timeout", "1e-9"])
        assert code == 3
        assert "timed out" in capsys.readouterr().err

    def test_resilience_flags_accepted_on_healthy_db(self, db, capsys):
        from repro.cli import main

        code = main([
            "query", db, "A -> D -> E",
            "--timeout", "30", "--max-inflight", "4", "--partial-ok",
            "--limit", "2",
        ])
        assert code == 0
        assert "matching records" in capsys.readouterr().out

    def test_batch_renders_per_query_errors(self, db, tmp_path, capsys):
        from repro.cli import main

        workload = tmp_path / "queries.txt"
        workload.write_text("A -> D -> E\nA -> D\n")
        code = main(["batch", db, str(workload), "--timeout", "1e-9"])
        captured = capsys.readouterr()
        assert code == 3
        assert captured.out.count("ERROR") == 2
        assert "2 failed" in captured.err

"""Tests for the master relation: loading, fetching, views, partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnstore import Bitmap, IOStatsCollector, MasterRelation, MeasureColumn


def make_relation(**kwargs) -> MasterRelation:
    relation = MasterRelation(**kwargs)
    relation.append_row({0: 1.0, 1: 2.0})
    relation.append_row({1: 3.0, 2: 4.0})
    relation.append_row({0: 5.0, 2: 6.0})
    return relation


class TestLoading:
    def test_append_rows_count(self):
        relation = make_relation()
        assert relation.n_records == 3
        assert relation.n_element_columns == 3

    def test_empty_row_rejected(self):
        with pytest.raises(ValueError):
            MasterRelation().append_row({})

    def test_negative_edge_id_rejected(self):
        with pytest.raises(ValueError):
            MasterRelation().append_row({-1: 1.0})

    def test_bitmap_reflects_presence(self):
        relation = make_relation()
        assert relation.bitmap(0).to_indices().tolist() == [0, 2]
        assert relation.bitmap(1).to_indices().tolist() == [0, 1]

    def test_measures_full_column(self):
        relation = make_relation()
        values = relation.measures(0)
        assert values[0] == 1.0 and np.isnan(values[1]) and values[2] == 5.0

    def test_measures_at_rows(self):
        relation = make_relation()
        assert relation.measures(2, np.array([1, 2])).tolist() == [4.0, 6.0]

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            make_relation().bitmap(99)

    def test_has_element(self):
        relation = make_relation()
        assert relation.has_element(0)
        assert not relation.has_element(99)

    def test_sparse_bulk_load_equivalent_to_rows(self):
        row_wise = make_relation()
        bulk = MasterRelation()
        bulk.set_record_count(3)
        bulk.load_sparse_column(0, np.array([0, 2]), np.array([1.0, 5.0]))
        bulk.load_sparse_column(1, np.array([0, 1]), np.array([2.0, 3.0]))
        bulk.load_sparse_column(2, np.array([1, 2]), np.array([4.0, 6.0]))
        for edge_id in (0, 1, 2):
            assert row_wise.bitmap(edge_id) == bulk.bitmap(edge_id)
            a, b = row_wise.measures(edge_id), bulk.measures(edge_id)
            assert np.array_equal(np.nan_to_num(a), np.nan_to_num(b))

    def test_sparse_load_out_of_range_row(self):
        relation = MasterRelation()
        relation.set_record_count(2)
        with pytest.raises(IndexError):
            relation.load_sparse_column(0, np.array([5]), np.array([1.0]))

    def test_cannot_shrink(self):
        relation = make_relation()
        with pytest.raises(ValueError):
            relation.set_record_count(1)

    def test_stale_view_detected_after_append(self):
        relation = make_relation()
        relation.add_graph_view("v", Bitmap.zeros(3))
        relation.append_row({0: 1.0})
        with pytest.raises(RuntimeError, match="stale"):
            relation.view_bitmap("v")
        relation.extend_graph_view("v", [True])
        assert relation.view_bitmap("v").to_indices().tolist() == [3]

    def test_stale_aggregate_view_detected(self):
        relation = make_relation()
        relation.add_aggregate_view("a:sum", MeasureColumn.from_optionals([1.0, None, 2.0]))
        relation.append_row({0: 1.0})
        with pytest.raises(RuntimeError, match="stale"):
            relation.aggregate_view_bitmap("a:sum")
        relation.extend_aggregate_view("a:sum", [5.0])
        assert relation.aggregate_view_measures("a:sum")[3] == 5.0


class TestPartitioning:
    def test_partition_of(self):
        relation = MasterRelation(partition_width=10)
        assert relation.partition_of(0) == 0
        assert relation.partition_of(9) == 0
        assert relation.partition_of(10) == 1

    def test_n_partitions(self):
        relation = MasterRelation(partition_width=10)
        relation.append_row({0: 1.0, 25: 2.0})
        assert relation.n_partitions == 3  # ids 0..25 span partitions 0,1,2

    def test_partitions_for(self):
        relation = MasterRelation(partition_width=10)
        assert relation.partitions_for([1, 5, 11, 25]) == {0, 1, 2}

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            MasterRelation(partition_width=0)

    def test_partition_join_counts(self):
        collector = IOStatsCollector()
        relation = MasterRelation(partition_width=1, collector=collector)
        relation.append_row({0: 1.0, 1: 2.0, 2: 3.0})
        relation.simulate_partition_join([0, 1, 2], np.array([0]))
        assert collector.stats.partitions_joined == 3

    def test_single_partition_no_join(self):
        collector = IOStatsCollector()
        relation = MasterRelation(partition_width=100, collector=collector)
        relation.append_row({0: 1.0, 1: 2.0})
        relation.simulate_partition_join([0, 1], np.array([0]))
        assert collector.stats.partitions_joined == 0


class TestViews:
    def test_add_and_fetch_graph_view(self):
        relation = make_relation()
        bitmap = Bitmap.from_indices(3, [0])
        relation.add_graph_view("gv1", bitmap)
        assert relation.view_bitmap("gv1") == bitmap
        assert relation.graph_view_names() == ["gv1"]

    def test_graph_view_wrong_length(self):
        relation = make_relation()
        with pytest.raises(ValueError):
            relation.add_graph_view("gv1", Bitmap.zeros(2))

    def test_duplicate_graph_view(self):
        relation = make_relation()
        relation.add_graph_view("gv1", Bitmap.zeros(3))
        with pytest.raises(ValueError):
            relation.add_graph_view("gv1", Bitmap.zeros(3))

    def test_aggregate_view_roundtrip(self):
        relation = make_relation()
        column = MeasureColumn.from_optionals([None, 7.0, 9.0])
        relation.add_aggregate_view("av1:sum", column)
        assert relation.aggregate_view_bitmap("av1:sum").to_indices().tolist() == [1, 2]
        values = relation.aggregate_view_measures("av1:sum", np.array([1, 2]))
        assert values.tolist() == [7.0, 9.0]

    def test_aggregate_view_wrong_length(self):
        relation = make_relation()
        with pytest.raises(ValueError):
            relation.add_aggregate_view("av1:sum", MeasureColumn.nulls(5))

    def test_drop_views(self):
        relation = make_relation()
        relation.add_graph_view("gv1", Bitmap.zeros(3))
        relation.add_aggregate_view("av1:sum", MeasureColumn.nulls(3))
        relation.drop_views()
        assert relation.graph_view_names() == []
        assert relation.aggregate_view_names() == []


class TestStatsAccounting:
    def test_bitmap_fetch_counted(self):
        relation = make_relation()
        relation.collector.reset()
        relation.bitmap(0)
        relation.bitmap(1)
        assert relation.collector.stats.bitmap_columns_fetched == 2

    def test_measure_fetch_counted_with_values(self):
        relation = make_relation()
        relation.collector.reset()
        relation.measures(0, np.array([0, 2]))
        stats = relation.collector.stats
        assert stats.measure_columns_fetched == 1
        assert stats.measure_values_fetched == 2

    def test_view_fetch_counted_separately(self):
        relation = make_relation()
        relation.add_graph_view("gv1", Bitmap.zeros(3))
        relation.collector.reset()
        relation.view_bitmap("gv1")
        stats = relation.collector.stats
        assert stats.view_bitmaps_fetched == 1
        assert stats.bitmap_columns_fetched == 0

    def test_total_columns(self):
        relation = make_relation()
        relation.collector.reset()
        relation.bitmap(0)
        relation.measures(1)
        assert relation.collector.stats.total_columns_fetched() == 2


class TestFootprint:
    def test_base_size_positive(self):
        assert make_relation().base_size_bytes() > 0

    def test_dense_at_least_sparse(self):
        relation = make_relation()
        assert relation.base_size_bytes("dense") >= relation.base_size_bytes("sparse")

    def test_dense_model_density_independent(self):
        sparse_rel = MasterRelation()
        sparse_rel.set_record_count(50)
        dense_rel = MasterRelation()
        dense_rel.set_record_count(50)
        for edge_id in range(10):
            # sparse: 5 records have each edge; dense: all 50 do.
            sparse_rel.load_sparse_column(
                edge_id, np.arange(5), np.ones(5)
            )
            dense_rel.load_sparse_column(
                edge_id, np.arange(50), np.ones(50)
            )
        assert sparse_rel.base_size_bytes("dense") == dense_rel.base_size_bytes("dense")
        assert sparse_rel.base_size_bytes("sparse") < dense_rel.base_size_bytes("sparse")

    def test_views_add_size(self):
        relation = make_relation()
        before = relation.disk_size_bytes()
        relation.add_graph_view("gv1", Bitmap.zeros(3))
        assert relation.disk_size_bytes() > before

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_relation().base_size_bytes("bogus")
